"""Developer/Advertiser-style dashboard queries (paper Sec. II-D).

Run with:  python examples/interactive_dashboard.py

A reporting backend over the sharded row store: every query is
restricted to a single advertiser, so the engine pushes the point
predicate down to one shard (Sec. IV-C2) and can serve index
nested-loop joins against the campaign dimension (Sec. IV-C1). Prints
per-query latencies and the shard-level access counters showing that
only matching shards were ever read.
"""

from repro.cluster import ClusterConfig, SimCluster
from repro.connectors.shardedsql import ShardedSqlConnector
from repro.workload.datasets import setup_developer_analytics_dataset

ADVERTISER = 42

DASHBOARD_PANELS = {
    "spend by day": (
        f"SELECT day, sum(spend) FROM ad_metrics "
        f"WHERE advertiser = {ADVERTISER} GROUP BY day ORDER BY day LIMIT 14"
    ),
    "event breakdown": (
        f"SELECT event_type, count(*), sum(impressions) FROM ad_metrics "
        f"WHERE advertiser = {ADVERTISER} GROUP BY event_type ORDER BY 2 DESC"
    ),
    "top campaigns": (
        f"SELECT c.name, sum(m.spend) FROM ad_metrics m "
        f"JOIN campaigns c ON m.campaign = c.campaign "
        f"WHERE m.advertiser = {ADVERTISER} GROUP BY c.name ORDER BY 2 DESC LIMIT 5"
    ),
    "running spend": (
        f"SELECT day, sum(sum(spend)) OVER (ORDER BY day) FROM ad_metrics "
        f"WHERE advertiser = {ADVERTISER} GROUP BY day ORDER BY day LIMIT 7"
    ),
}


def main() -> None:
    cluster = SimCluster(
        ClusterConfig(
            worker_count=4, default_catalog="shardedsql", default_schema="default"
        )
    )
    sharded = ShardedSqlConnector(shard_count=16)
    cluster.register_catalog("shardedsql", sharded)
    print("loading advertiser reporting dataset (16 shards)...")
    setup_developer_analytics_dataset(sharded, advertisers=300, rows=30_000)

    table = sharded.table(sharded.metadata.get_table_handle("default", "ad_metrics"))
    scans_before = [shard.scans for shard in table.shards]

    print(f"\ndashboard for advertiser {ADVERTISER}:")
    for panel, sql in DASHBOARD_PANELS.items():
        handle = cluster.run_query(sql, drain=True)
        rows = handle.rows()
        print(f"\n  [{panel}] {handle.wall_time_ms:.1f} sim-ms, {len(rows)} rows")
        for row in rows[:5]:
            print("   ", row)

    touched = [
        shard_id
        for shard_id, shard in enumerate(table.shards)
        if shard.scans > scans_before[shard_id] or shard.point_queries > 0
    ]
    print(
        f"\nshard pruning: the advertiser's data lives in 1 of {len(table.shards)} "
        f"shards; shards touched by the dashboard: {touched}"
    )
    print(f"index lookups served: {sharded.index_lookups}")


if __name__ == "__main__":
    main()
