"""Federated query: one SQL statement spanning four data sources.

Run with:  python examples/federated_join.py

The paper's headline ("SQL on everything"): a single cluster queries
"multiple systems ... even within a single query" (Sec. I, VIII). This
example registers four connectors — the TPC-H generator, a Hive-style
warehouse, a sharded row store, and a Kafka-like stream — and joins
across all of them in one statement.
"""

from repro.client import LocalEngine
from repro.connectors.hive import HiveConnector
from repro.connectors.shardedsql import ShardedSqlConnector
from repro.connectors.stream import StreamConnector
from repro.connectors.tpch import TpchConnector
from repro.types import BIGINT, DOUBLE, VARCHAR


def main() -> None:
    engine = LocalEngine(catalog="tpch", schema="tiny")
    tpch = TpchConnector(scale_factor=0.002)
    hive = HiveConnector()
    sharded = ShardedSqlConnector(shard_count=4)
    stream = StreamConnector(partitions_per_topic=2)
    engine.register_catalog("tpch", tpch)
    engine.register_catalog("hive", hive)
    engine.register_catalog("shardedsql", sharded)
    engine.register_catalog("stream", stream)

    # Warehouse: denormalized order facts in Hive (written by the engine).
    engine.execute(
        "CREATE TABLE hive.default.order_facts AS "
        "SELECT orderkey, custkey, totalprice, orderstatus FROM tpch.tiny.orders"
    )

    # Operational store: customer tier assignments in the sharded store.
    engine.execute(
        "CREATE TABLE shardedsql.default.customer_tiers "
        "WITH (shard_by = 'custkey') AS "
        "SELECT custkey, CASE WHEN acctbal > 500 THEN 'gold' ELSE 'standard' END tier "
        "FROM tpch.tiny.customer"
    )

    # Stream: live page-view events.
    stream.create_topic("pageviews", [("custkey", BIGINT), ("url", VARCHAR)])
    for i in range(500):
        stream.produce("pageviews", timestamp=i * 1000, values=(i % 300, f"/product/{i % 7}"))

    # One query spanning the warehouse, the operational store, the stream,
    # and the generator-backed dimension table.
    sql = """
        SELECT t.tier,
               n.name AS nation,
               count(DISTINCT f.orderkey) AS orders,
               sum(f.totalprice) AS revenue,
               count(v.url) AS recent_pageviews
        FROM hive.default.order_facts f
        JOIN shardedsql.default.customer_tiers t ON f.custkey = t.custkey
        JOIN tpch.tiny.customer c ON f.custkey = c.custkey
        JOIN tpch.tiny.nation n ON c.nationkey = n.nationkey
        LEFT JOIN stream.default.pageviews v ON f.custkey = v.custkey
        WHERE f.orderstatus <> 'P'
        GROUP BY t.tier, n.name
        ORDER BY revenue DESC
        LIMIT 10
    """
    print("-- top (tier, nation) segments across 4 data sources")
    result = engine.execute(sql)
    print(" | ".join(result.column_names))
    for row in result:
        print(row)

    print("\n-- the optimizer pushed the status predicate into the Hive layout:")
    explain = engine.execute("EXPLAIN " + sql).rows[0][0]
    print("\n".join(line for line in explain.splitlines() if "TableScan" in line))


if __name__ == "__main__":
    main()
