"""A/B test analysis on co-located Raptor tables (paper Sec. II-C).

Run with:  python examples/ab_testing.py

The A/B Testing deployment computes results on the fly by joining large
user/enrollment/event tables. The tables are bucketed on user id in the
Raptor connector, so the optimizer plans *co-located joins* that elide
the shuffle entirely (Sec. IV-C3) — this example prints the distributed
plan to show it, then slices one experiment by country and variant at
interactive latency.
"""

from repro.cluster import ClusterConfig, SimCluster
from repro.connectors.raptor import RaptorConnector
from repro.workload.datasets import setup_ab_testing_dataset

EXPERIMENT = 7

ANALYSIS = f"""
    SELECT en.variant,
           u.country,
           count(*) AS events,
           approx_distinct(e.userid) AS users,
           avg(e.value) AS mean_value
    FROM events e
    JOIN enrollments en ON e.userid = en.userid
    JOIN users u ON e.userid = u.userid
    WHERE en.experiment = {EXPERIMENT}
      AND e.event_type = 'conversion'
    GROUP BY 1, 2
    ORDER BY 1, 2
"""


def main() -> None:
    workers = 4
    cluster = SimCluster(
        ClusterConfig(
            worker_count=workers, default_catalog="raptor", default_schema="default"
        )
    )
    raptor = RaptorConnector(hosts=[f"worker-{i}" for i in range(workers)])
    cluster.register_catalog("raptor", raptor)
    print("loading A/B testing dataset (bucketed on userid)...")
    setup_ab_testing_dataset(raptor, users=6_000, events=30_000, bucket_count=8)

    handle = cluster.run_query(ANALYSIS)
    print(f"\nexperiment {EXPERIMENT} — conversion by variant and country "
          f"({handle.wall_time_ms:.1f} sim-ms):\n")
    print(f"{'variant':>7} {'country':>8} {'events':>7} {'users':>6} {'mean':>8}")
    for variant, country, events, users, mean in handle.rows():
        print(f"{variant:>7} {country:>8} {events:>7} {users:>6} {mean:>8.2f}")

    # Show that the big three-way join ran co-located: a single data
    # processing stage, no repartitioning shuffle.
    from repro.planner import nodes as plan

    joins = [
        node.distribution.value
        for fragment in handle.fragmented.fragments.values()
        for node in plan.walk_plan(fragment.root)
        if isinstance(node, plan.JoinNode)
    ]
    print(f"\njoin distributions: {joins}")
    print(f"stages: {len(handle.fragmented.fragments)}")
    print(f"network bytes shuffled: {cluster.network_bytes:,} "
          "(co-located joins move no join input over the network)")


if __name__ == "__main__":
    main()
