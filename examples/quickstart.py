"""Quickstart: an embedded engine over in-memory tables.

Run with:  python examples/quickstart.py

Creates a LocalEngine (parse -> analyze -> plan -> optimize -> execute,
all in process), registers the in-memory connector, loads a small table,
and runs a few queries — including EXPLAIN output showing the optimized
logical plan.
"""

from repro.client import LocalEngine
from repro.connectors.memory import MemoryConnector
from repro.types import BIGINT, DOUBLE, VARCHAR


def main() -> None:
    engine = LocalEngine(catalog="memory", schema="default")
    memory = MemoryConnector()
    engine.register_catalog("memory", memory)

    memory.create_table_with_data(
        "memory", "default", "employees",
        [("id", BIGINT), ("name", VARCHAR), ("dept", VARCHAR), ("salary", DOUBLE)],
        [
            (1, "alice", "eng", 120.0),
            (2, "bob", "eng", 110.0),
            (3, "carol", "sales", 95.0),
            (4, "dave", "sales", 105.0),
            (5, "erin", "ops", 90.0),
        ],
    )

    print("-- all rows")
    for row in engine.execute("SELECT * FROM employees ORDER BY id"):
        print(row)

    print("\n-- aggregation with HAVING")
    result = engine.execute(
        "SELECT dept, count(*) n, avg(salary) avg_salary "
        "FROM employees GROUP BY dept HAVING count(*) > 1 ORDER BY avg_salary DESC"
    )
    for row in result:
        print(row)

    print("\n-- window function: salary rank within department")
    for row in engine.execute(
        "SELECT name, dept, rank() OVER (PARTITION BY dept ORDER BY salary DESC) r "
        "FROM employees ORDER BY dept, r"
    ):
        print(row)

    print("\n-- higher-order functions on arrays (paper Sec. IV-A)")
    print(engine.execute(
        "SELECT transform(sequence(1, 5), x -> x * x), "
        "reduce(sequence(1, 5), 0, (s, x) -> s + x, s -> s)"
    ).rows[0])

    print("\n-- CREATE TABLE AS + INSERT")
    engine.execute(
        "CREATE TABLE well_paid AS SELECT name, salary FROM employees WHERE salary > 100"
    )
    engine.execute("INSERT INTO well_paid SELECT 'frank', 150.0")
    print(engine.execute("SELECT count(*) FROM well_paid").scalar(), "rows in well_paid")

    print("\n-- EXPLAIN (optimized logical plan)")
    print(engine.execute(
        "EXPLAIN SELECT dept, sum(salary) FROM employees WHERE salary > 90 GROUP BY dept"
    ).rows[0][0])


if __name__ == "__main__":
    main()
