"""Batch ETL on the simulated cluster (paper Sec. II-B).

Run with:  python examples/batch_etl.py

Runs a Batch-ETL-style job chain on an 8-worker simulated cluster with
*phased* stage scheduling (Sec. IV-D1 — the memory-efficient policy the
paper pairs with batch workloads): build a daily revenue rollup, derive
a customer summary from it, and write both back to the warehouse.
Prints the per-stage breakdown and cluster counters the paper's
"effortless instrumentation" section (VII) insists on.
"""

from repro.cluster import ClusterConfig, SimCluster
from repro.connectors.hive import HiveConnector
from repro.workload.datasets import setup_warehouse_dataset


def main() -> None:
    cluster = SimCluster(
        ClusterConfig(
            worker_count=8,
            default_catalog="hive",
            default_schema="default",
            phased_execution=True,  # ETL default: phased (Sec. IV-D1)
        )
    )
    hive = HiveConnector()
    cluster.register_catalog("hive", hive)
    print("loading warehouse...")
    setup_warehouse_dataset(hive, scale_factor=0.01)

    jobs = [
        # Stage 1: denormalize and aggregate order/lineitem facts.
        (
            "daily_revenue",
            "CREATE TABLE daily_revenue AS "
            "SELECT o.orderdate, o.orderpriority, "
            "       sum(l.extendedprice * (1 - l.discount)) revenue, "
            "       count(*) line_items "
            "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
            "GROUP BY o.orderdate, o.orderpriority",
        ),
        # Stage 2: customer-level summary with a window function.
        (
            "customer_summary",
            "CREATE TABLE customer_summary AS "
            "SELECT custkey, total, "
            "       rank() OVER (ORDER BY total DESC) revenue_rank "
            "FROM (SELECT custkey, sum(totalprice) total FROM orders GROUP BY custkey)",
        ),
        # Stage 3: incremental append of high-value recent orders.
        (
            "append",
            "INSERT INTO customer_summary "
            "SELECT custkey, totalprice, 0 FROM orders "
            "WHERE totalprice > 400000 AND orderstatus = 'O'",
        ),
    ]
    for name, sql in jobs:
        handle = cluster.run_query(sql, phased=True)
        rows_written = handle.rows()[0][0]
        print(
            f"job {name:<18} wrote {rows_written:>6} rows | "
            f"wall {handle.wall_time_ms:8.1f} sim-ms | cpu {handle.total_cpu_ms:8.1f} sim-ms | "
            f"stages {len(handle.stages)}"
        )

    top = cluster.run_query(
        "SELECT custkey, total FROM customer_summary WHERE revenue_rank <= 5 ORDER BY total DESC"
    )
    print("\ntop customers by revenue:")
    for row in top.rows():
        print(" ", row)

    print("\ncluster counters:")
    print(f"  network bytes shuffled : {cluster.network_bytes:,}")
    print(f"  dfs files              : {len(hive.dfs.list_files('/warehouse'))}")
    print(f"  dfs bytes              : {hive.dfs.total_bytes():,}")
    print(f"  avg cpu utilization    : {cluster.average_cpu_utilization():.0%}")
    for name, worker in sorted(cluster.workers.items()):
        print(
            f"  {name}: quanta={worker.stats.quanta} "
            f"cpu={worker.stats.busy_ms:,.0f} sim-ms tasks={worker.stats.tasks_finished}"
        )


if __name__ == "__main__":
    main()
