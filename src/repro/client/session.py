"""Single-process engine facade.

:class:`LocalEngine` runs the full pipeline — parse, analyze, plan,
optimize, execute — inside one process. It is the engine the examples
and tests use directly; the distributed story (coordinator, workers,
scheduling) lives in :mod:`repro.server` and :mod:`repro.cluster` and
shares every layer below planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.metadata import Metadata
from repro.connectors.api import Connector
from repro.errors import NotSupportedError
from repro.exec.local import execute_plan
from repro.planner.nodes import format_plan
from repro.planner.planner import LogicalPlanner, SessionContext
from repro.sql import ast, parse_statement
from repro.types import Type, VARCHAR, BIGINT


@dataclass
class QueryResult:
    column_names: list[str]
    column_types: list[Type]
    rows: list[tuple]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self):
        """The single value of a one-row, one-column result."""
        assert len(self.rows) == 1 and len(self.rows[0]) == 1, "not a scalar result"
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]


class LocalEngine:
    """An embedded engine instance with a connector registry."""

    def __init__(
        self,
        catalog: str = "memory",
        schema: str = "default",
        optimize: bool = True,
        interpreted: bool = False,
        optimizer_config=None,
    ):
        self.metadata = Metadata()
        self.default_catalog = catalog
        self.default_schema = schema
        self.optimize = optimize
        # Row-at-a-time interpreted expression evaluation (reference mode
        # for differential fuzzing) instead of the compiled path.
        self.interpreted = interpreted
        # Optional OptimizerConfig override (rule knobs, guards,
        # thresholds); None = defaults.
        self.optimizer_config = optimizer_config
        # RuleTrace of the most recent plan() call (rewrite-rule
        # firings / cost-guard skips), for tests and EXPLAIN.
        self.last_rule_trace = None

    # -- catalog management ------------------------------------------------

    def register_catalog(self, name: str, connector: Connector) -> None:
        self.metadata.register_catalog(name, connector)

    # -- query execution -----------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        statement = parse_statement(sql)
        if isinstance(statement, ast.Explain):
            return self._explain(statement)
        if isinstance(statement, ast.ShowTables):
            return self._show_tables(statement)
        if isinstance(statement, ast.ShowColumns):
            return self._show_columns(statement)
        if isinstance(statement, ast.ShowCatalogs):
            return QueryResult(
                ["Catalog"], [VARCHAR], [(c,) for c in self.metadata.catalogs()]
            )
        if isinstance(statement, ast.ShowSchemas):
            catalog = statement.catalog or self.default_catalog
            schemas = self.metadata.connector(catalog).metadata.list_schemas()
            return QueryResult(["Schema"], [VARCHAR], [(s,) for s in schemas])
        if isinstance(statement, ast.ShowFunctions):
            from repro.functions import FUNCTIONS

            names = sorted(
                set(FUNCTIONS.scalar_names())
                | set(FUNCTIONS._aggregates)
                | set(FUNCTIONS._windows)
            )
            kinds = [
                (
                    name,
                    "aggregate"
                    if FUNCTIONS.is_aggregate(name)
                    else ("window" if FUNCTIONS.is_window(name) else "scalar"),
                )
                for name in names
            ]
            return QueryResult(["Function", "Kind"], [VARCHAR, VARCHAR], kinds)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement)
        plan = self.plan(statement)
        result = execute_plan(self.metadata, plan, interpreted=self.interpreted)
        return QueryResult(result.column_names, result.column_types, result.rows())

    def plan(self, statement: ast.Statement, optimize: Optional[bool] = None):
        from repro.planner.rules import RuleTrace

        trace = RuleTrace()
        planner = LogicalPlanner(
            self.metadata,
            SessionContext(self.default_catalog, self.default_schema),
            optimizer_config=self.optimizer_config,
            trace=trace,
        )
        plan = planner.plan_statement(statement)
        if optimize if optimize is not None else self.optimize:
            from repro.optimizer import optimize_plan

            plan = optimize_plan(
                plan,
                self.metadata,
                planner.symbols,
                config=self.optimizer_config,
                trace=trace,
            )
        self.last_rule_trace = trace
        return plan

    # -- auxiliary statements ----------------------------------------------------

    def _explain(self, statement: ast.Explain) -> QueryResult:
        plan = self.plan(statement.statement)
        if statement.analyze:
            text = self._explain_analyze(plan)
        elif statement.explain_type == "DISTRIBUTED":
            from repro.planner.fragmenter import fragment_plan, format_fragmented_plan

            fragmented = fragment_plan(plan)
            text = format_fragmented_plan(fragmented)
        else:
            text = format_plan(plan.root)
        # Rewrite-rule header (docs/OPTIMIZER.md): which rules shaped
        # this plan and which were skipped by their cost guards.
        if self.last_rule_trace is not None:
            text = self.last_rule_trace.summary() + "\n" + text
        return QueryResult(["Query Plan"], [VARCHAR], [(text,)])

    def _explain_analyze(self, plan) -> str:
        """Execute the query and report per-operator statistics — the
        operator-level instrumentation of paper Sec. VII ("we collect and
        store operator level statistics ... for every query")."""
        import time

        from repro.exec.driver import run_drivers_to_completion
        from repro.exec.local import LocalExecutionPlanner

        local = LocalExecutionPlanner(self.metadata)
        drivers, collector = local.plan(plan.root)
        start = time.perf_counter()
        run_drivers_to_completion(drivers)
        elapsed_ms = (time.perf_counter() - start) * 1000
        lines = [f"Query executed in {elapsed_ms:.1f} ms (wall)"]
        total_rows = sum(page.row_count for page in collector.pages)
        lines.append(f"Output rows: {total_rows}")
        def stat_line(operator, indent: str) -> str:
            return (
                f"{indent}{operator.name:<20} in: {operator.input_rows:>8} rows"
                f" / {operator.input_bytes:>10} B   out: {operator.output_rows:>8} rows"
                f" / {operator.output_bytes:>10} B"
            )

        for i, driver in enumerate(drivers):
            lines.append(f"Pipeline {i} (cpu {driver.cpu_time_ms:.1f} ms):")
            for operator in driver.operators:
                lines.append(stat_line(operator, "  "))
                # A fused pipeline (repro.exec.pipeline) reports the
                # operators it absorbed, indented beneath it.
                embedded = getattr(operator, "embedded_operators", None)
                if embedded is not None:
                    for inner in embedded():
                        lines.append(stat_line(inner, "    "))
        return "\n".join(lines)

    def _show_tables(self, statement: ast.ShowTables) -> QueryResult:
        catalog = self.default_catalog
        schema: Optional[str] = self.default_schema
        if statement.schema is not None:
            parts = statement.schema.parts
            if len(parts) == 1:
                schema = parts[0]
            else:
                catalog, schema = parts[0], parts[1]
        connector = self.metadata.connector(catalog)
        tables = connector.metadata.list_tables(schema)
        return QueryResult(["Table"], [VARCHAR], [(t,) for t in tables])

    def _show_columns(self, statement: ast.ShowColumns) -> QueryResult:
        planner = LogicalPlanner(
            self.metadata, SessionContext(self.default_catalog, self.default_schema)
        )
        handle = planner._resolve_table_name(statement.table)
        if handle is None:
            from repro.errors import TableNotFoundError

            raise TableNotFoundError(f"Table not found: {statement.table}")
        metadata = self.metadata.table_metadata(handle)
        rows = [(c.name, str(c.type)) for c in metadata.columns]
        return QueryResult(["Column", "Type"], [VARCHAR, VARCHAR], rows)

    def _drop_table(self, statement: ast.DropTable) -> QueryResult:
        planner = LogicalPlanner(
            self.metadata, SessionContext(self.default_catalog, self.default_schema)
        )
        handle = planner._resolve_table_name(statement.name)
        if handle is None:
            if statement.if_exists:
                return QueryResult(["result"], [BIGINT], [(0,)])
            from repro.errors import TableNotFoundError

            raise TableNotFoundError(f"Table not found: {statement.name}")
        self.metadata.drop_table(handle)
        return QueryResult(["result"], [BIGINT], [(1,)])
