"""Client API: sessions and query results."""

from repro.client.session import LocalEngine, QueryResult

__all__ = ["LocalEngine", "QueryResult"]
