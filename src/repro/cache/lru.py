"""A small counting LRU used by every cache level.

Entry-bounded (metadata/plan caches) or byte-bounded via a caller-owned
``charge``/``release`` pair (result/stripe caches, which account their
bytes against the worker memory manager)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional


class LruCache:
    """LRU map with hit/miss/eviction counters.

    ``max_entries`` bounds the entry count; ``max_weight`` bounds the sum
    of per-entry weights. ``on_evict(key, value, weight)`` fires for every
    eviction and explicit invalidation so byte-budgeted callers can
    release memory-manager reservations.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_weight: Optional[float] = None,
        on_evict: Optional[Callable[[object, object, float], None]] = None,
    ):
        self._entries: OrderedDict[object, tuple[object, float]] = OrderedDict()
        self.max_entries = max_entries
        self.max_weight = max_weight
        self.on_evict = on_evict
        self.weight = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: object):
        """Counting lookup: returns the value or None, updating recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def peek(self, key: object):
        """Non-counting, recency-neutral lookup (EXPLAIN introspection)."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: object, value: object, weight: float = 1.0) -> None:
        if key in self._entries:
            self._evict_one(key, invalidation=True)
        self._entries[key] = (value, weight)
        self.weight += weight
        self._shrink()

    def invalidate(self, key: object) -> bool:
        if key not in self._entries:
            return False
        self._evict_one(key, invalidation=True)
        return True

    def invalidate_if(self, predicate: Callable[[object, object], bool]) -> int:
        """Drop every entry where ``predicate(key, value)`` holds."""
        stale = [k for k, (v, _) in self._entries.items() if predicate(k, v)]
        for key in stale:
            self._evict_one(key, invalidation=True)
        return len(stale)

    def clear(self) -> int:
        count = len(self._entries)
        while self._entries:
            self._evict_one(next(iter(self._entries)), invalidation=True)
        return count

    def evict_lru(self) -> bool:
        """Evict the single least-recently-used entry, if any."""
        if not self._entries:
            return False
        self._evict_one(next(iter(self._entries)), invalidation=False)
        return True

    def _shrink(self) -> None:
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._evict_one(next(iter(self._entries)), invalidation=False)
        while (
            self.max_weight is not None
            and self.weight > self.max_weight
            and len(self._entries) > 1
        ):
            self._evict_one(next(iter(self._entries)), invalidation=False)

    def _evict_one(self, key: object, invalidation: bool) -> None:
        value, weight = self._entries.pop(key)
        self.weight -= weight
        if invalidation:
            self.invalidations += 1
        else:
            self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(key, value, weight)
