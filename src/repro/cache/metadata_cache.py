"""Coordinator metadata cache (tier 1 of the caching tier).

``CachingMetadata`` is a drop-in replacement for the catalog
:class:`~repro.catalog.metadata.Metadata` router. Every cached entry is
keyed on the referenced table's :class:`MetadataVersions` counter, so a
DDL or committed INSERT — which bumps the counter inside the connector —
invalidates by *key rotation*: the next lookup simply misses and falls
through to the connector. Stale entries age out of the LRU.

Write-path methods (create/drop/insert) are never cached; they delegate
to the base router, whose connectors bump their own version counters.
"""

from __future__ import annotations

from typing import Sequence

from repro.catalog.metadata import Metadata, TableHandle
from repro.catalog.schema import TableMetadata, TableStatistics
from repro.connectors.api import ConnectorTableLayout
from repro.connectors.predicate import TupleDomain

from repro.cache.lru import LruCache


class CachingMetadata(Metadata):
    """Versioned LRU over the four read-path Metadata API calls."""

    def __init__(self, max_entries: int = 4096):
        super().__init__()
        self.cache = LruCache(max_entries=max_entries)

    # -- version plumbing --------------------------------------------------

    def _table_version(self, catalog: str, schema: str, table: str) -> int:
        return self.connector(catalog).metadata.versions.table_version(schema, table)

    def _handle_version(self, handle: TableHandle) -> int:
        name = handle.name
        return self._table_version(name.catalog, name.schema, name.table)

    # -- cached read path --------------------------------------------------

    def resolve_table(self, catalog: str, schema: str, table: str) -> TableHandle | None:
        # Force the CatalogNotFoundError path before consulting the cache.
        self.connector(catalog)
        key = ("resolve", catalog, schema, table, self._table_version(catalog, schema, table))
        hit = self.cache.get(key)
        if hit is not None:
            return hit[0]
        # Misses (including "table does not exist") are cached too: the
        # version bump on CREATE TABLE rotates the key, so negative
        # entries can never mask a newly-created table.
        resolved = Metadata.resolve_table(self, catalog, schema, table)
        self.cache.put(key, (resolved,))
        return resolved

    def table_metadata(self, handle: TableHandle) -> TableMetadata:
        key = ("metadata", handle.name, self._handle_version(handle))
        hit = self.cache.get(key)
        if hit is not None:
            return hit[0]
        result = Metadata.table_metadata(self, handle)
        self.cache.put(key, (result,))
        return result

    def table_statistics(self, handle: TableHandle) -> TableStatistics:
        key = ("statistics", handle.name, self._handle_version(handle))
        hit = self.cache.get(key)
        if hit is not None:
            return hit[0]
        result = Metadata.table_statistics(self, handle)
        self.cache.put(key, (result,))
        return result

    def table_layouts(
        self, handle: TableHandle, constraint: TupleDomain, desired_columns: Sequence[str]
    ) -> list[ConnectorTableLayout]:
        key = (
            "layouts",
            handle.name,
            self._handle_version(handle),
            repr(constraint),
            tuple(desired_columns),
        )
        hit = self.cache.get(key)
        if hit is not None:
            return list(hit[0])
        result = Metadata.table_layouts(self, handle, constraint, desired_columns)
        self.cache.put(key, (list(result),))
        return result
