"""Coordinator plan + result caches (tier 3 of the caching tier).

Both are validated — not purged — by the connectors' monotonic
:class:`~repro.connectors.api.MetadataVersions` counters:

- The **plan cache** keys on ``(catalog, schema, formatted SQL)`` (the
  formatter normalizes whitespace) and stores the optimized fragmented
  plan together with the versions of every referenced table at plan
  time. A lookup only hits while those versions are still current, so a
  plan never outlives a DDL/INSERT on anything it reads.
- The **result cache** keys on ``(plan fingerprint, table versions)``.
  The fingerprint is alias- and symbol-name-insensitive (see
  ``planner/fingerprint.py``); the versions ride in the key, so a bump
  rotates the key and stale pages become unreachable, ageing out of the
  LRU. Entries are filled only when the versions did not move while the
  query ran — a mid-flight INSERT simply skips the fill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.lru import LruCache


@dataclass
class CachedPlan:
    """An optimized plan plus everything needed to validate and reuse it."""

    fragmented: object  # planner.fragmenter.FragmentedPlan
    #: ((catalog, schema, table) -> version) snapshot at plan time
    table_versions: tuple
    fingerprint: str
    result_cacheable: bool
    planning_info: dict = field(default_factory=dict)


class PlanCache:
    """Versioned LRU of formatted-SQL -> CachedPlan."""

    def __init__(self, max_entries: int = 256):
        self.cache = LruCache(max_entries=max_entries)

    def get(self, key: tuple, current_versions) -> CachedPlan | None:
        """Counting lookup; a version mismatch counts as a miss and drops
        the stale entry."""
        entry = self.cache.get(key)
        if entry is None:
            return None
        if entry.table_versions != current_versions(entry.table_versions):
            self.cache.invalidate(key)
            # get() above counted a hit for the stale entry; reclassify.
            self.cache.hits -= 1
            self.cache.misses += 1
            return None
        return entry

    def put(self, key: tuple, entry: CachedPlan) -> None:
        self.cache.put(key, entry)

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses


class ResultCache:
    """Byte-bounded LRU of (fingerprint, table versions) -> result pages."""

    def __init__(self, capacity_bytes: int = 16 << 20):
        self.cache = LruCache(max_weight=capacity_bytes)
        self.fills = 0
        self.skipped_fills = 0

    @staticmethod
    def _weight(pages) -> int:
        return max(1, sum(page.size_bytes() for page in pages))

    def get(self, fingerprint: str, versions: tuple):
        return self.cache.get((fingerprint, versions))

    def peek(self, fingerprint: str, versions: tuple):
        return self.cache.peek((fingerprint, versions))

    def fill(self, fingerprint: str, versions_at_start: tuple, current_versions: tuple, pages) -> bool:
        """Store ``pages`` unless a referenced table moved mid-query, in
        which case the snapshot is ambiguous and caching it would be the
        classic staleness bug this tier's tests hunt for."""
        if versions_at_start != current_versions:
            self.skipped_fills += 1
            return False
        self.cache.put((fingerprint, versions_at_start), list(pages), self._weight(pages))
        self.fills += 1
        return True

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses

    @property
    def used_bytes(self) -> int:
        return int(self.cache.weight)
