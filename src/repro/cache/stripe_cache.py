"""Worker stripe/footer cache (tier 2 of the caching tier).

One per worker, byte-budgeted against the worker's MemoryPool under a
pseudo query id so cache pressure is visible to — and bounded by — the
same memory manager that admits queries. The cache is *content-agnostic*
by design: connectors never reuse a split cache key for different bytes
(Hive file paths and Raptor shard ids come from global counters), so a
hit only shortens the simulated split-open latency and can never change
the bytes a scan produces. That is what keeps cached and uncached runs
bit-exact by construction.
"""

from __future__ import annotations

from repro.cache.lru import LruCache

#: pseudo query id under which cached stripe bytes are reserved
POOL_OWNER = "cache:stripe"


class StripeCache:
    """LRU of (connector, split_cache_key) -> cached stripe bytes."""

    def __init__(self, capacity_bytes: int, memory_pool=None, hit_latency_factor: float = 0.25):
        self.capacity_bytes = capacity_bytes
        self.memory_pool = memory_pool
        self.hit_latency_factor = hit_latency_factor
        self.entries = LruCache(on_evict=self._release)

    # -- memory accounting -------------------------------------------------

    def _release(self, key, value, weight) -> None:
        if self.memory_pool is not None and weight:
            self.memory_pool.free(POOL_OWNER, int(weight))

    def _admit(self, weight: int) -> bool:
        """Reserve ``weight`` bytes, evicting LRU entries to make room.

        Never evicts below a single entry's worth and refuses entries
        larger than the whole cache."""
        if weight > self.capacity_bytes:
            return False
        while self.entries.weight + weight > self.capacity_bytes:
            if not self.entries.evict_lru():
                break
        if self.memory_pool is None:
            return True
        while not self.memory_pool.try_reserve(POOL_OWNER, weight):
            if not self.entries.evict_lru():
                return False
        return True

    # -- read path ---------------------------------------------------------

    def record_access(self, key: object, weight: int) -> bool:
        """Look up ``key``; on a miss, admit it with ``weight`` bytes.

        Returns True on a hit (the stripe was already resident)."""
        if self.entries.get(key) is not None:
            return True
        if self._admit(max(1, int(weight))):
            self.entries.put(key, True, max(1, int(weight)))
        return False

    def holds(self, key: object) -> bool:
        """Recency-neutral membership probe (affinity scheduling)."""
        return self.entries.peek(key) is not None

    def clear(self) -> None:
        """Drop everything and release reservations (worker crash)."""
        self.entries.clear()

    # -- stats -------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.entries.hits

    @property
    def misses(self) -> int:
        return self.entries.misses

    @property
    def used_bytes(self) -> int:
        return int(self.entries.weight)
