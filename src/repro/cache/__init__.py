"""Hot-traffic caching tier (metadata, stripe, plan/result caches).

Three levels, all invalidated by the same monotonic per-table version
counters (:class:`repro.connectors.api.MetadataVersions`):

1. coordinator metadata cache — ``metadata_cache.CachingMetadata``
2. worker stripe/footer cache — ``stripe_cache.StripeCache`` (+
   affinity-aware split scheduling in ``cluster/query.py``)
3. plan + result cache — ``plan_result.PlanCache`` / ``ResultCache``

See docs/CACHING.md for the invalidation protocol and the coherence
test battery that proves it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lru import LruCache
from repro.cache.metadata_cache import CachingMetadata
from repro.cache.plan_result import CachedPlan, PlanCache, ResultCache
from repro.cache.stripe_cache import StripeCache


@dataclass
class CacheConfig:
    """Per-cluster cache tier configuration (ClusterConfig.cache).

    Defaults keep behaviour identical to an uncached cluster: the
    metadata and plan caches are on but cost-free (``metadata_latency_ms``
    defaults to 0, and planning itself takes no simulated time), while
    the result and stripe caches — the levels that change simulated
    timings — are opt-in.
    """

    # tier 1: coordinator metadata cache
    metadata_cache_enabled: bool = True
    metadata_cache_entries: int = 4096
    #: simulated per-connector-call latency charged at query startup;
    #: models the metastore round-trips the cache exists to avoid
    metadata_latency_ms: float = 0.0

    # tier 3: plan + result cache
    plan_cache_enabled: bool = True
    plan_cache_entries: int = 256
    result_cache_enabled: bool = False
    result_cache_bytes: int = 16 << 20

    # tier 2: worker stripe cache + affinity scheduling
    stripe_cache_enabled: bool = False
    stripe_cache_bytes: int = 8 << 20
    #: fraction of a split's read latency still paid on a stripe-cache hit
    stripe_hit_latency_factor: float = 0.25
    affinity_scheduling_enabled: bool = True
    #: max queue-depth gap vs the shortest queue before affinity yields
    affinity_queue_slack: int = 8

    @staticmethod
    def disabled() -> "CacheConfig":
        return CacheConfig(
            metadata_cache_enabled=False,
            plan_cache_enabled=False,
            result_cache_enabled=False,
            stripe_cache_enabled=False,
            affinity_scheduling_enabled=False,
        )

    @staticmethod
    def full(metadata_latency_ms: float = 0.0) -> "CacheConfig":
        """Every level on (the configuration the coherence battery runs)."""
        return CacheConfig(
            metadata_latency_ms=metadata_latency_ms,
            result_cache_enabled=True,
            stripe_cache_enabled=True,
        )


__all__ = [
    "CacheConfig",
    "CachedPlan",
    "CachingMetadata",
    "LruCache",
    "PlanCache",
    "ResultCache",
    "StripeCache",
]
