"""Logical/physical plan nodes (paper Sec. IV-B3, Fig. 2/3).

One node class serves both the logical plan and (after optimization and
fragmentation) the physical plan; physical-only nodes such as
:class:`ExchangeNode` are introduced by the optimizer, mirroring how the
paper's optimizer transforms the logical plan "into a more physical
structure".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from repro.catalog.metadata import TableHandle
from repro.connectors.api import ConnectorTableLayout
from repro.connectors.predicate import TupleDomain
from repro.functions.registry import AggregateFunction, WindowFunction
from repro.planner.expressions import RowExpression, Variable
from repro.planner.symbols import Symbol

_ids = itertools.count()


def _next_id() -> int:
    return next(_ids)


@dataclass
class PlanNode:
    """Base plan node. ``sources`` are inputs; ``output_symbols`` is the
    ordered schema this node produces."""

    id: int = field(default_factory=_next_id, init=False)

    @property
    def sources(self) -> list["PlanNode"]:
        raise NotImplementedError

    @property
    def output_symbols(self) -> list[Symbol]:
        raise NotImplementedError

    def replace_sources(self, sources: list["PlanNode"]) -> "PlanNode":
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__.removesuffix("Node")


@dataclass
class TableScanNode(PlanNode):
    table: TableHandle
    # Output symbol -> connector column name.
    assignments: dict[Symbol, str]
    outputs: list[Symbol]
    # Constraint pushed into the connector (enforced + unenforced split
    # happens during layout selection, Sec. IV-C2).
    constraint: TupleDomain = field(default_factory=TupleDomain.all)
    layout: Optional[ConnectorTableLayout] = None
    # Runtime dynamic filters this scan consumes: filter id -> connector
    # column name, plus how long the scheduler may defer split fetches
    # waiting for the build side (0 = never wait). Annotated by the
    # optimizer's plan_dynamic_filters pass.
    dynamic_filters: dict[str, str] = field(default_factory=dict)
    dynamic_filter_wait_ms: float = 0.0

    @property
    def sources(self) -> list[PlanNode]:
        return []

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.outputs

    def replace_sources(self, sources: list[PlanNode]) -> "TableScanNode":
        assert not sources
        return self


@dataclass
class ValuesNode(PlanNode):
    outputs: list[Symbol]
    rows: list[list[RowExpression]]

    @property
    def sources(self) -> list[PlanNode]:
        return []

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.outputs

    def replace_sources(self, sources: list[PlanNode]) -> "ValuesNode":
        assert not sources
        return self


@dataclass
class FilterNode(PlanNode):
    source: PlanNode
    predicate: RowExpression

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "FilterNode":
        return replace(self, source=sources[0])


@dataclass
class ProjectNode(PlanNode):
    source: PlanNode
    # Ordered output symbol -> defining expression.
    assignments: dict[Symbol, RowExpression]

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return list(self.assignments)

    def replace_sources(self, sources: list[PlanNode]) -> "ProjectNode":
        return replace(self, source=sources[0])

    def is_identity(self) -> bool:
        if list(self.assignments) != self.source.output_symbols:
            return False
        return all(
            isinstance(expr, Variable) and expr.name == symbol.name
            for symbol, expr in self.assignments.items()
        )


class AggregationStep(str, Enum):
    SINGLE = "SINGLE"
    PARTIAL = "PARTIAL"
    FINAL = "FINAL"


@dataclass(frozen=True)
class AggregationCall:
    function_name: str
    function: AggregateFunction
    arguments: tuple[RowExpression, ...]
    distinct: bool = False
    filter: Optional[RowExpression] = None


@dataclass
class AggregationNode(PlanNode):
    source: PlanNode
    group_by: list[Symbol]
    # Output symbol -> aggregate call.
    aggregations: dict[Symbol, AggregationCall]
    step: AggregationStep = AggregationStep.SINGLE

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.group_by + list(self.aggregations)

    def replace_sources(self, sources: list[PlanNode]) -> "AggregationNode":
        return replace(self, source=sources[0])

    @property
    def is_global(self) -> bool:
        return not self.group_by


class JoinType(str, Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    CROSS = "CROSS"


class JoinDistribution(str, Enum):
    """How join inputs are distributed (paper Sec. IV-C, cost-based
    join strategy selection)."""

    AUTOMATIC = "AUTOMATIC"
    PARTITIONED = "PARTITIONED"  # both sides shuffled on join keys
    REPLICATED = "REPLICATED"    # build side broadcast to all nodes
    COLOCATED = "COLOCATED"      # layouts already co-partitioned; no shuffle
    INDEX = "INDEX"              # index nested-loop against connector index


@dataclass(frozen=True)
class EquiJoinClause:
    left: Symbol
    right: Symbol


@dataclass
class JoinNode(PlanNode):
    join_type: JoinType
    left: PlanNode
    right: PlanNode
    criteria: list[EquiJoinClause]
    filter: Optional[RowExpression] = None
    distribution: JoinDistribution = JoinDistribution.AUTOMATIC
    # Runtime dynamic filters this join's build side produces:
    # filter id -> index into ``criteria`` (the clause whose right/build
    # key is summarized). Annotated by plan_dynamic_filters.
    dynamic_filter_ids: dict[str, int] = field(default_factory=dict)

    @property
    def sources(self) -> list[PlanNode]:
        return [self.left, self.right]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.left.output_symbols + self.right.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "JoinNode":
        return replace(self, left=sources[0], right=sources[1])


@dataclass
class SemiJoinNode(PlanNode):
    """value IN (subquery) / decorrelated EXISTS: emits source rows plus
    a boolean match symbol. Multi-key form supports decorrelated
    subqueries whose correlation adds extra equality keys."""

    source: PlanNode
    filtering_source: PlanNode
    source_keys: list[Symbol]
    filtering_keys: list[Symbol]
    output: Symbol  # boolean
    # filter id -> index into ``filtering_keys`` (see JoinNode).
    dynamic_filter_ids: dict[str, int] = field(default_factory=dict)
    # NULL-as-value matching (NULL = NULL, output strictly TRUE/FALSE)
    # instead of the ANSI three-valued IN semantics; backs the
    # INTERSECT/EXCEPT semi-join short-circuit, whose distinct-based
    # comparison treats NULLs as equal.
    null_aware: bool = False

    @property
    def source_key(self) -> Symbol:
        return self.source_keys[0]

    @property
    def filtering_key(self) -> Symbol:
        return self.filtering_keys[0]

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source, self.filtering_source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols + [self.output]

    def replace_sources(self, sources: list[PlanNode]) -> "SemiJoinNode":
        return replace(self, source=sources[0], filtering_source=sources[1])


@dataclass
class IndexJoinNode(PlanNode):
    """Index nested-loop join against a connector index (Sec. IV-C1)."""

    probe: PlanNode
    index_table: TableHandle
    # probe symbol -> index key column name
    key_mapping: list[tuple[Symbol, str]]
    # output symbols appended from the index side -> column names
    index_outputs: dict[Symbol, str]
    join_type: JoinType = JoinType.INNER

    @property
    def sources(self) -> list[PlanNode]:
        return [self.probe]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.probe.output_symbols + list(self.index_outputs)

    def replace_sources(self, sources: list[PlanNode]) -> "IndexJoinNode":
        return replace(self, probe=sources[0])


@dataclass(frozen=True)
class Ordering:
    symbol: Symbol
    ascending: bool = True
    nulls_first: bool = False


@dataclass
class SortNode(PlanNode):
    source: PlanNode
    order_by: list[Ordering]
    is_partial: bool = False

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "SortNode":
        return replace(self, source=sources[0])


@dataclass
class TopNNode(PlanNode):
    source: PlanNode
    count: int
    order_by: list[Ordering]
    is_partial: bool = False

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "TopNNode":
        return replace(self, source=sources[0])


@dataclass
class LimitNode(PlanNode):
    source: PlanNode
    count: int
    is_partial: bool = False

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "LimitNode":
        return replace(self, source=sources[0])


@dataclass
class DistinctNode(PlanNode):
    """SELECT DISTINCT over all output symbols."""

    source: PlanNode

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "DistinctNode":
        return replace(self, source=sources[0])


@dataclass(frozen=True)
class WindowCall:
    function_name: str
    # Exactly one of window_function / aggregate_function is set.
    window_function: Optional[WindowFunction]
    aggregate_function: Optional[AggregateFunction]
    arguments: tuple[RowExpression, ...]


@dataclass
class WindowNode(PlanNode):
    source: PlanNode
    partition_by: list[Symbol]
    order_by: list[Ordering]
    # Output symbol -> window call.
    functions: dict[Symbol, WindowCall]
    frame: object = None  # ast.WindowFrame | None

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols + list(self.functions)

    def replace_sources(self, sources: list[PlanNode]) -> "WindowNode":
        return replace(self, source=sources[0])


@dataclass
class UnionNode(PlanNode):
    sources_: list[PlanNode]
    outputs: list[Symbol]
    # For each source: mapping from output symbol -> source symbol.
    symbol_mapping: list[dict[Symbol, Symbol]]

    @property
    def sources(self) -> list[PlanNode]:
        return self.sources_

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.outputs

    def replace_sources(self, sources: list[PlanNode]) -> "UnionNode":
        return replace(self, sources_=sources)


@dataclass
class SampleNode(PlanNode):
    """TABLESAMPLE: keeps ~fraction of input rows (BERNOULLI samples
    per row, SYSTEM per page/split)."""

    source: PlanNode
    fraction: float  # 0.0 - 1.0
    method: str = "BERNOULLI"

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "SampleNode":
        return replace(self, source=sources[0])


@dataclass
class SetOperationNode(PlanNode):
    """INTERSECT / EXCEPT with set (distinct) semantics."""

    kind: str  # "INTERSECT" | "EXCEPT"
    sources_: list[PlanNode]
    outputs: list[Symbol]
    symbol_mapping: list[dict[Symbol, Symbol]]

    @property
    def sources(self) -> list[PlanNode]:
        return self.sources_

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.outputs

    def replace_sources(self, sources: list[PlanNode]) -> "SetOperationNode":
        return replace(self, sources_=sources)


@dataclass
class UnnestNode(PlanNode):
    source: PlanNode
    replicate_symbols: list[Symbol]
    # unnest source symbol -> list of produced element symbols
    unnest_symbols: list[tuple[Symbol, list[Symbol]]]
    ordinality_symbol: Optional[Symbol] = None

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        out = list(self.replicate_symbols)
        for _, produced in self.unnest_symbols:
            out.extend(produced)
        if self.ordinality_symbol is not None:
            out.append(self.ordinality_symbol)
        return out

    def replace_sources(self, sources: list[PlanNode]) -> "UnnestNode":
        return replace(self, source=sources[0])


@dataclass
class EnforceSingleRowNode(PlanNode):
    """Scalar subquery guard: errors if the source returns > 1 row."""

    source: PlanNode

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "EnforceSingleRowNode":
        return replace(self, source=sources[0])


class ExchangeScope(str, Enum):
    LOCAL = "LOCAL"    # between pipelines on one node (Sec. IV-C4)
    REMOTE = "REMOTE"  # between stages, i.e. a shuffle (Sec. IV-E2)


class ExchangeKind(str, Enum):
    GATHER = "GATHER"          # N partitions -> 1
    REPARTITION = "REPARTITION"  # hash partition on keys
    REPLICATE = "REPLICATE"    # broadcast to all partitions
    ROUND_ROBIN = "ROUND_ROBIN"


@dataclass
class ExchangeNode(PlanNode):
    source: PlanNode
    scope: ExchangeScope
    kind: ExchangeKind
    partition_keys: list[Symbol] = field(default_factory=list)
    # Keep output sorted when gathering from sorted partials.
    ordering: list[Ordering] = field(default_factory=list)

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.source.output_symbols

    def replace_sources(self, sources: list[PlanNode]) -> "ExchangeNode":
        return replace(self, source=sources[0])


@dataclass
class RemoteSourceNode(PlanNode):
    """Reads the output of another plan fragment over the shuffle
    (inserted by the fragmenter when cutting at remote exchanges)."""

    fragment_ids: list[int]
    outputs: list[Symbol]
    # When set, streams are merged preserving this ordering (merging
    # gather over sorted partials).
    ordering: list[Ordering] = field(default_factory=list)

    @property
    def sources(self) -> list[PlanNode]:
        return []

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.outputs

    def replace_sources(self, sources: list[PlanNode]) -> "RemoteSourceNode":
        assert not sources
        return self


@dataclass
class TableWriterNode(PlanNode):
    """Writes its input through the Data Sink API; outputs (row count,
    connector commit fragment) — the fragment column flows through the
    gather so TableFinish can commit from another stage."""

    source: PlanNode
    target: TableHandle
    insert_handle: object
    column_names: list[str]
    rows_symbol: Symbol
    fragment_symbol: Symbol = None  # type: ignore[assignment]

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        if self.fragment_symbol is None:
            return [self.rows_symbol]
        return [self.rows_symbol, self.fragment_symbol]

    def replace_sources(self, sources: list[PlanNode]) -> "TableWriterNode":
        return replace(self, source=sources[0])


@dataclass
class TableFinishNode(PlanNode):
    source: PlanNode
    target: TableHandle
    insert_handle: object
    rows_symbol: Symbol

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return [self.rows_symbol]

    def replace_sources(self, sources: list[PlanNode]) -> "TableFinishNode":
        return replace(self, source=sources[0])


@dataclass
class OutputNode(PlanNode):
    source: PlanNode
    column_names: list[str]
    outputs: list[Symbol]

    @property
    def sources(self) -> list[PlanNode]:
        return [self.source]

    @property
    def output_symbols(self) -> list[Symbol]:
        return self.outputs

    def replace_sources(self, sources: list[PlanNode]) -> "OutputNode":
        return replace(self, source=sources[0])


# --------------------------------------------------------------------------
# Generic traversal
# --------------------------------------------------------------------------


def walk_plan(node: PlanNode):
    """Pre-order traversal of a plan tree."""
    yield node
    for source in node.sources:
        yield from walk_plan(source)


def rewrite_plan(node: PlanNode, fn) -> PlanNode:
    """Bottom-up rewrite; ``fn(node)`` returns a replacement or None."""
    new_sources = [rewrite_plan(s, fn) for s in node.sources]
    if new_sources != node.sources:
        node = node.replace_sources(new_sources)
    replacement = fn(node)
    return replacement if replacement is not None else node


def format_plan(node: PlanNode, indent: int = 0) -> str:
    """Human-readable plan tree (EXPLAIN output)."""
    from repro.planner.expressions import RowExpression

    pad = "  " * indent
    details = ""
    if isinstance(node, TableScanNode):
        details = f" table={node.table.name}"
        if node.layout is not None and node.layout.partitioning:
            details += f" partitioned_on={list(node.layout.partitioning.columns)}"
        if not node.constraint.is_all():
            details += f" constraint={node.constraint}"
        if node.dynamic_filters:
            awaited = ", ".join(
                f"{fid}({column})" for fid, column in sorted(node.dynamic_filters.items())
            )
            details += (
                f" dynamic_filters=[{awaited}] wait={node.dynamic_filter_wait_ms:g}ms"
            )
    elif isinstance(node, FilterNode):
        details = f" predicate={node.predicate}"
    elif isinstance(node, ProjectNode):
        shown = ", ".join(f"{s.name}:={e}" for s, e in list(node.assignments.items())[:6])
        details = f" [{shown}]"
    elif isinstance(node, AggregationNode):
        keys = ", ".join(s.name for s in node.group_by)
        aggs = ", ".join(
            f"{s.name}:={c.function_name}" for s, c in node.aggregations.items()
        )
        details = f" step={node.step.value} keys=[{keys}] aggs=[{aggs}]"
    elif isinstance(node, JoinNode):
        clauses = ", ".join(f"{c.left.name}={c.right.name}" for c in node.criteria)
        details = f" type={node.join_type.value} dist={node.distribution.value} on=[{clauses}]"
        if node.dynamic_filter_ids:
            details += f" df=[{', '.join(sorted(node.dynamic_filter_ids))}]"
    elif isinstance(node, ExchangeNode):
        keys = ", ".join(s.name for s in node.partition_keys)
        details = f" scope={node.scope.value} kind={node.kind.value} keys=[{keys}]"
    elif isinstance(node, (LimitNode, TopNNode)):
        details = f" count={node.count}" + (" partial" if node.is_partial else "")
    elif isinstance(node, SortNode):
        keys = ", ".join(
            o.symbol.name + ("" if o.ascending else " desc") for o in node.order_by
        )
        details = f" by=[{keys}]"
    elif isinstance(node, OutputNode):
        details = f" columns={node.column_names}"
    lines = [f"{pad}- {node.name}{details}"]
    for source in node.sources:
        lines.append(format_plan(source, indent + 1))
    return "\n".join(lines)
