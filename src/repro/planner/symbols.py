"""Plan symbols: uniquely named, typed columns flowing between plan nodes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import Type


@dataclass(frozen=True)
class Symbol:
    """A named column in the plan. Names are unique within one plan."""

    name: str
    type: Type

    def __str__(self) -> str:
        return f"{self.name}:{self.type}"


class SymbolAllocator:
    """Allocates unique symbols, preserving readable base names."""

    def __init__(self):
        self._counters: dict[str, int] = {}

    def new_symbol(self, base: str, type_: Type) -> Symbol:
        base = _sanitize(base)
        count = self._counters.get(base, 0)
        self._counters[base] = count + 1
        name = base if count == 0 else f"{base}_{count}"
        return Symbol(name, type_)


def _sanitize(base: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in base.lower())
    return cleaned or "expr"
