"""Typed expression IR ("row expressions").

The analyzer lowers AST expressions into this IR: every node carries its
type, function calls are resolved to concrete implementations, and
control-flow constructs (AND/OR/IF/COALESCE/CASE...) become
:class:`SpecialForm` nodes the compiler knows how to short-circuit.
This mirrors Presto's RowExpression layer, which is what its bytecode
generator consumes (paper Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.functions.registry import ScalarFunction
from repro.planner.symbols import Symbol
from repro.types import BOOLEAN, Type


@dataclass(frozen=True)
class RowExpression:
    """Base class; every expression knows its result type."""

    type: Type


@dataclass(frozen=True)
class Constant(RowExpression):
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return "null" if self.value is None else str(self.value)


@dataclass(frozen=True)
class Variable(RowExpression):
    """Reference to a plan symbol (or lambda parameter) by name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def to_symbol(self) -> Symbol:
        return Symbol(self.name, self.type)


@dataclass(frozen=True)
class InputReference(RowExpression):
    """Positional channel reference; produced when plans are lowered to
    physical operators (symbol -> channel mapping)."""

    channel: int

    def __str__(self) -> str:
        return f"#{self.channel}"


@dataclass(frozen=True)
class Call(RowExpression):
    """A resolved scalar function call."""

    name: str
    function: ScalarFunction
    arguments: tuple[RowExpression, ...]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.name}({args})"


# Special forms understood by the compiler (short-circuit / null-aware).
AND = "AND"
OR = "OR"
NOT = "NOT"
IF = "IF"
COALESCE = "COALESCE"
NULLIF = "NULLIF"
IS_NULL = "IS_NULL"
IN = "IN"
BETWEEN = "BETWEEN"
CASE = "CASE"          # args: [operand?, cond1, val1, cond2, val2, ..., default]
SEARCHED_CASE = "SEARCHED_CASE"
CAST = "CAST"
TRY_CAST = "TRY_CAST"
LIKE = "LIKE"          # args: [value, pattern, escape?] with constant pattern fast-path
COMPARISON = "COMPARISON"  # op stashed in `form_data`
ARITHMETIC = "ARITHMETIC"
NEGATE = "NEGATE"
DEREFERENCE = "DEREFERENCE"  # row field access; form_data = field index
SUBSCRIPT = "SUBSCRIPT"
ROW_CONSTRUCTOR = "ROW_CONSTRUCTOR"
ARRAY_CONSTRUCTOR = "ARRAY_CONSTRUCTOR"
IS_DISTINCT_FROM = "IS_DISTINCT_FROM"


@dataclass(frozen=True)
class SpecialForm(RowExpression):
    form: str
    arguments: tuple[RowExpression, ...]
    # Extra static payload, e.g. the comparison operator or field index.
    form_data: object = None

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        data = f"[{self.form_data}]" if self.form_data is not None else ""
        return f"{self.form}{data}({args})"


@dataclass(frozen=True)
class LambdaExpression(RowExpression):
    parameters: tuple[str, ...]
    body: RowExpression

    def __str__(self) -> str:
        return f"({', '.join(self.parameters)}) -> {self.body}"


# --------------------------------------------------------------------------
# Traversal / rewriting utilities
# --------------------------------------------------------------------------


def expression_children(expr: RowExpression) -> tuple[RowExpression, ...]:
    if isinstance(expr, Call):
        return expr.arguments
    if isinstance(expr, SpecialForm):
        return expr.arguments
    if isinstance(expr, LambdaExpression):
        return (expr.body,)
    return ()


def walk_expression(expr: RowExpression) -> Iterator[RowExpression]:
    """Pre-order traversal of an expression tree."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(expression_children(node))


def referenced_variables(expr: RowExpression) -> set[str]:
    """Free variable names in ``expr`` (lambda parameters are bound)."""
    result: set[str] = set()
    _collect_variables(expr, frozenset(), result)
    return result


def _collect_variables(expr: RowExpression, bound: frozenset, result: set) -> None:
    if isinstance(expr, Variable):
        if expr.name not in bound:
            result.add(expr.name)
        return
    if isinstance(expr, LambdaExpression):
        _collect_variables(expr.body, bound | set(expr.parameters), result)
        return
    for child in expression_children(expr):
        _collect_variables(child, bound, result)


def rewrite_expression(
    expr: RowExpression, fn: Callable[[RowExpression], RowExpression | None]
) -> RowExpression:
    """Bottom-up rewrite: ``fn`` may return a replacement or None to keep."""
    if isinstance(expr, Call):
        new_args = tuple(rewrite_expression(a, fn) for a in expr.arguments)
        expr = Call(expr.type, expr.name, expr.function, new_args)
    elif isinstance(expr, SpecialForm):
        new_args = tuple(rewrite_expression(a, fn) for a in expr.arguments)
        expr = SpecialForm(expr.type, expr.form, new_args, expr.form_data)
    elif isinstance(expr, LambdaExpression):
        expr = LambdaExpression(
            expr.type, expr.parameters, rewrite_expression(expr.body, fn)
        )
    replacement = fn(expr)
    return replacement if replacement is not None else expr


def replace_variables(
    expr: RowExpression, mapping: dict[str, RowExpression]
) -> RowExpression:
    """Substitute variables by name (used by inlining / pushdown rules)."""

    def rewrite(node: RowExpression) -> RowExpression | None:
        if isinstance(node, Variable) and node.name in mapping:
            return mapping[node.name]
        return None

    return rewrite_expression(expr, rewrite)


# --------------------------------------------------------------------------
# Conjunct helpers (used heavily by predicate pushdown)
# --------------------------------------------------------------------------


def extract_conjuncts(expr: RowExpression | None) -> list[RowExpression]:
    if expr is None:
        return []
    if isinstance(expr, SpecialForm) and expr.form == AND:
        result: list[RowExpression] = []
        for arg in expr.arguments:
            result.extend(extract_conjuncts(arg))
        return result
    return [expr]


def combine_conjuncts(conjuncts: Iterable[RowExpression]) -> RowExpression | None:
    terms = [c for c in conjuncts if not _is_true(c)]
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return SpecialForm(BOOLEAN, AND, tuple(terms))


def _is_true(expr: RowExpression) -> bool:
    return isinstance(expr, Constant) and expr.value is True


def true_literal() -> Constant:
    return Constant(BOOLEAN, True)


def false_literal() -> Constant:
    return Constant(BOOLEAN, False)
