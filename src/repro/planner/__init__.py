"""Logical planning: typed expression IR, plan nodes, and the planner.

The logical planner (paper Sec. IV-B3) turns the analyzed syntax tree
into an intermediate representation encoded as a tree of plan nodes;
nodes are purely logical until the optimizer and fragmenter make
execution decisions.
"""

from repro.planner.symbols import Symbol, SymbolAllocator

__all__ = ["Symbol", "SymbolAllocator", "LogicalPlanner", "Plan"]


def __getattr__(name):
    # Imported lazily: planner.planner depends on the analyzer, which
    # depends on plan symbols from this package.
    if name in ("LogicalPlanner", "Plan"):
        from repro.planner import planner

        return getattr(planner, name)
    raise AttributeError(name)
