"""The logical planner: analyzed AST -> plan-node tree (paper Sec. IV-B3).

Planning follows Presto's structure: relations are planned bottom-up
into (plan node, scope) pairs; query specifications layer filter,
aggregation, window, projection, distinct, sort, and limit nodes on
top; subqueries in expressions are planned into semi-joins or
cross-joins with single-row enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analyzer.expression import ExpressionAnalyzer, SubqueryPlanner
from repro.analyzer.scope import Field, Scope
from repro.catalog.metadata import Metadata, TableHandle
from repro.errors import (
    NotSupportedError,
    SemanticError,
    TableNotFoundError,
    TypeError_,
)
from repro.functions import FUNCTIONS, FunctionRegistry
from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.symbols import Symbol, SymbolAllocator
from repro.sql import ast
from repro.types import (
    BIGINT,
    BOOLEAN,
    UNKNOWN,
    VARCHAR,
    ArrayType,
    MapType,
    RowType,
    Type,
    common_super_type,
)


@dataclass
class Plan:
    """The planner's result: a rooted plan plus output metadata."""

    root: plan.PlanNode
    column_names: list[str]
    column_types: list[Type]


@dataclass
class RelationPlan:
    node: plan.PlanNode
    scope: Scope


@dataclass(frozen=True)
class SessionContext:
    """Name-resolution defaults for a query."""

    catalog: str
    schema: str


class LogicalPlanner:
    def __init__(
        self,
        metadata: Metadata,
        session: SessionContext,
        registry: FunctionRegistry = FUNCTIONS,
        optimizer_config=None,
        trace=None,
    ):
        self.metadata = metadata
        self.session = session
        self.registry = registry
        self.symbols = SymbolAllocator()
        self._ctes: dict[str, ast.WithQuery] = {}
        # Set while planning a (potentially correlated) subquery: outer
        # references resolve against this scope and are captured for
        # decorrelation.
        self._subquery_outer_scope: Scope | None = None
        # Rewrite-rule plumbing: plan-phase rules (decorrelation) check
        # their OptimizerConfig knobs and record into the same RuleTrace
        # the optimizer's rewrite engine uses (repro.planner.rules).
        if optimizer_config is None:
            from repro.optimizer.context import OptimizerConfig

            optimizer_config = OptimizerConfig()
        self.optimizer_config = optimizer_config
        if trace is None:
            from repro.planner.rules import RuleTrace

            trace = RuleTrace()
        self.trace = trace
        self._outer_row_estimate_cache: dict[int, float | None] = {}

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def plan_statement(self, statement: ast.Statement) -> Plan:
        if isinstance(statement, ast.Query):
            return self._plan_root_query(statement)
        if isinstance(statement, ast.Insert):
            return self._plan_insert(statement)
        if isinstance(statement, ast.CreateTableAsSelect):
            return self._plan_ctas(statement)
        raise NotSupportedError(f"Cannot plan statement: {type(statement).__name__}")

    def _plan_root_query(self, query: ast.Query) -> Plan:
        relation = self.plan_query(query)
        visible = [f for f in relation.scope.fields]
        names = [f.name or f"_col{i}" for i, f in enumerate(visible)]
        symbols = [f.symbol for f in visible]
        root = plan.OutputNode(relation.node, names, symbols)
        return Plan(root, names, [s.type for s in symbols])

    def _plan_insert(self, statement: ast.Insert) -> Plan:
        handle = self._resolve_table_name(statement.target)
        if handle is None:
            raise TableNotFoundError(f"Table not found: {statement.target}")
        table_meta = self.metadata.table_metadata(handle)
        query_plan = self.plan_query(statement.query)
        target_columns = (
            list(statement.columns)
            if statement.columns
            else [c.name for c in table_meta.columns]
        )
        query_fields = query_plan.scope.fields
        if len(query_fields) != len(target_columns):
            raise SemanticError(
                f"INSERT has {len(query_fields)} expressions but {len(target_columns)} target columns"
            )
        # Build a projection producing every table column in order, coercing
        # query outputs and filling unmentioned columns with NULL.
        by_target = dict(zip(target_columns, query_fields))
        assignments: dict[Symbol, ir.RowExpression] = {}
        column_names: list[str] = []
        for column in table_meta.columns:
            column_names.append(column.name)
            out = self.symbols.new_symbol(column.name, column.type)
            source = by_target.get(column.name)
            if source is None:
                assignments[out] = ir.Constant(column.type, None)
            else:
                expr: ir.RowExpression = ir.Variable(source.type, source.symbol.name)
                if source.type != column.type:
                    expr = ir.SpecialForm(column.type, ir.CAST, (expr,), column.type)
                assignments[out] = expr
        project = plan.ProjectNode(query_plan.node, assignments)
        insert_handle = self.metadata.begin_insert(handle)
        rows_symbol = self.symbols.new_symbol("rows", BIGINT)
        from repro.types import VARBINARY

        fragment_symbol = self.symbols.new_symbol("fragment", VARBINARY)
        writer = plan.TableWriterNode(
            project, handle, insert_handle, column_names, rows_symbol, fragment_symbol
        )
        finish_symbol = self.symbols.new_symbol("rows", BIGINT)
        finish = plan.TableFinishNode(writer, handle, insert_handle, finish_symbol)
        root = plan.OutputNode(finish, ["rows"], [finish_symbol])
        return Plan(root, ["rows"], [BIGINT])

    def _plan_ctas(self, statement: ast.CreateTableAsSelect) -> Plan:
        from repro.catalog import Column, QualifiedTableName, TableMetadata

        query_plan = self.plan_query(statement.query)
        catalog, schema, table = self._qualify(statement.name)
        fields = query_plan.scope.fields
        columns = []
        for i, field in enumerate(fields):
            name = field.name or f"_col{i}"
            columns.append(Column(name, field.symbol.type))
        properties = {}
        for key, value_expr in statement.properties:
            analyzer = ExpressionAnalyzer(Scope.empty(), self.registry)
            value = analyzer.analyze(value_expr)
            try:
                from repro.exec.interpreter import evaluate

                properties[key] = evaluate(value, {})
            except Exception:
                raise SemanticError(f"Table property {key} must be a constant")
        table_metadata = TableMetadata(
            QualifiedTableName(catalog, schema, table), tuple(columns), properties
        )
        handle = self.metadata.create_table(catalog, table_metadata)
        insert_handle = self.metadata.begin_insert(handle)
        rows_symbol = self.symbols.new_symbol("rows", BIGINT)
        from repro.types import VARBINARY

        fragment_symbol = self.symbols.new_symbol("fragment", VARBINARY)
        writer = plan.TableWriterNode(
            query_plan.node, handle, insert_handle, [c.name for c in columns],
            rows_symbol, fragment_symbol,
        )
        finish_symbol = self.symbols.new_symbol("rows", BIGINT)
        finish = plan.TableFinishNode(writer, handle, insert_handle, finish_symbol)
        root = plan.OutputNode(finish, ["rows"], [finish_symbol])
        return Plan(root, ["rows"], [BIGINT])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def plan_query(
        self, query: ast.Query, outer_scope: Scope | None = None
    ) -> RelationPlan:
        saved_ctes = dict(self._ctes)
        saved_outer = self._subquery_outer_scope
        self._subquery_outer_scope = outer_scope
        try:
            if query.with_ is not None:
                for with_query in query.with_.queries:
                    self._ctes[with_query.name.lower()] = with_query
            relation = self._plan_query_body(query.body)
            if query.order_by:
                relation = self._plan_order_limit_over(relation, query.order_by, query.limit)
            elif query.limit is not None:
                relation = RelationPlan(
                    plan.LimitNode(relation.node, query.limit), relation.scope
                )
            return relation
        finally:
            self._ctes = saved_ctes
            self._subquery_outer_scope = saved_outer

    def _plan_query_body(self, body: ast.QueryBody) -> RelationPlan:
        if isinstance(body, ast.QuerySpecification):
            return self._plan_query_specification(body)
        if isinstance(body, ast.SetOperation):
            return self._plan_set_operation(body)
        if isinstance(body, ast.TableSubqueryBody):
            return self.plan_query(body.query)
        if isinstance(body, ast.ValuesBody):
            return self._plan_values(body.rows)
        raise NotSupportedError(f"Unsupported query body: {type(body).__name__}")

    def _plan_values(self, rows: tuple[tuple[ast.Expression, ...], ...]) -> RelationPlan:
        analyzer = ExpressionAnalyzer(Scope.empty(), self.registry)
        analyzed_rows = [[analyzer.analyze(e) for e in row] for row in rows]
        width = len(analyzed_rows[0])
        for row in analyzed_rows:
            if len(row) != width:
                raise SemanticError("VALUES rows must all have the same arity")
        column_types: list[Type] = []
        for i in range(width):
            col_type: Type = UNKNOWN
            for row in analyzed_rows:
                merged = common_super_type(col_type, row[i].type)
                if merged is None:
                    raise TypeError_("VALUES column has incompatible types")
                col_type = merged
            if col_type == UNKNOWN:
                col_type = VARCHAR
            column_types.append(col_type)
        coerced = [
            [analyzer.coerce(row[i], column_types[i]) for i in range(width)]
            for row in analyzed_rows
        ]
        symbols = [
            self.symbols.new_symbol(f"col{i}", column_types[i]) for i in range(width)
        ]
        node = plan.ValuesNode(symbols, coerced)
        fields = [
            Field(f"_col{i}", s.type, s, None) for i, s in enumerate(symbols)
        ]
        return RelationPlan(node, Scope(fields))

    def _plan_set_operation(self, body: ast.SetOperation) -> RelationPlan:
        left = self._plan_query_body(body.left)
        right = self._plan_query_body(body.right)
        if len(left.scope.fields) != len(right.scope.fields):
            raise SemanticError("Set operation inputs have different column counts")
        # Unify column types.
        outputs: list[Symbol] = []
        mappings: list[dict[Symbol, Symbol]] = [{}, {}]
        sides = [left, right]
        coerced_sides: list[RelationPlan] = []
        merged_types: list[Type] = []
        for i in range(len(left.scope.fields)):
            lt = left.scope.fields[i].type
            rt = right.scope.fields[i].type
            merged = common_super_type(lt, rt)
            if merged is None:
                raise TypeError_(
                    f"Set operation column {i + 1}: {lt} is incompatible with {rt}"
                )
            merged_types.append(merged)
        for side in sides:
            needs_cast = any(
                side.scope.fields[i].type != merged_types[i]
                for i in range(len(merged_types))
            )
            if needs_cast:
                assignments: dict[Symbol, ir.RowExpression] = {}
                new_fields = []
                for i, field in enumerate(side.scope.fields):
                    out = self.symbols.new_symbol(field.name or f"col{i}", merged_types[i])
                    expr: ir.RowExpression = ir.Variable(field.type, field.symbol.name)
                    if field.type != merged_types[i]:
                        expr = ir.SpecialForm(
                            merged_types[i], ir.CAST, (expr,), merged_types[i]
                        )
                    assignments[out] = expr
                    new_fields.append(Field(field.name, merged_types[i], out, field.qualifier))
                side = RelationPlan(
                    plan.ProjectNode(side.node, assignments), Scope(new_fields)
                )
            coerced_sides.append(side)
        left, right = coerced_sides
        for i, field in enumerate(left.scope.fields):
            out = self.symbols.new_symbol(field.name or f"col{i}", merged_types[i])
            outputs.append(out)
            mappings[0][out] = left.scope.fields[i].symbol
            mappings[1][out] = right.scope.fields[i].symbol
        if body.kind is ast.SetOpKind.UNION:
            node: plan.PlanNode = plan.UnionNode([left.node, right.node], outputs, mappings)
            if body.distinct:
                node = plan.DistinctNode(node)
        else:
            node = plan.SetOperationNode(
                body.kind.value, [left.node, right.node], outputs, mappings
            )
        fields = [
            Field(left.scope.fields[i].name, outputs[i].type, outputs[i], None)
            for i in range(len(outputs))
        ]
        return RelationPlan(node, Scope(fields))

    # ------------------------------------------------------------------
    # Query specification (SELECT ... FROM ... WHERE ...)
    # ------------------------------------------------------------------

    def _plan_query_specification(self, spec: ast.QuerySpecification) -> RelationPlan:
        if spec.from_ is not None:
            relation = self.plan_relation(spec.from_)
        else:
            # SELECT without FROM: single empty row.
            node = plan.ValuesNode([], [[]])
            relation = RelationPlan(node, Scope([]))
        if self._subquery_outer_scope is not None:
            # Correlated subquery: expose the outer scope for capture. It
            # applies to this (top) specification only; the capture scope
            # is consumed so nested subqueries resolve normally.
            outer = self._subquery_outer_scope
            self._subquery_outer_scope = None
            relation = RelationPlan(
                relation.node,
                Scope(relation.scope.fields, parent=outer.parent, captures=outer.captures),
            )

        builder = _QueryBuilder(self, relation)

        if spec.where is not None:
            builder.filter(spec.where)

        aggregates = self._collect_aggregates(spec)
        group_exprs = self._group_expressions(spec)
        grouping_sets = (
            spec.group_by.grouping_sets if spec.group_by is not None else None
        )
        if grouping_sets is not None and len(grouping_sets) > 1:
            builder.aggregate_grouping_sets(
                group_exprs, [list(s) for s in grouping_sets], aggregates, spec
            )
        elif aggregates or group_exprs:
            if grouping_sets is not None:
                group_exprs = list(grouping_sets[0])
            builder.aggregate(group_exprs, aggregates, spec)
        if spec.having is not None:
            if not (aggregates or group_exprs):
                raise SemanticError("HAVING requires GROUP BY or aggregates")
            builder.having(spec.having)

        window_calls = self._collect_windows(spec)
        if window_calls:
            builder.window(window_calls)

        output_fields = builder.project_select(spec)

        if spec.select.distinct:
            builder.relation = RelationPlan(
                plan.DistinctNode(builder.relation.node), builder.relation.scope
            )

        if spec.order_by:
            builder.sort(spec.order_by, output_fields)
        if spec.limit is not None:
            builder.relation = RelationPlan(
                plan.LimitNode(builder.relation.node, spec.limit), builder.relation.scope
            )
        # Final pruning projection to exactly the select outputs.
        builder.prune(output_fields)
        return builder.relation

    def _plan_order_limit_over(
        self, relation: RelationPlan, order_by: tuple[ast.SortItem, ...], limit: int | None
    ) -> RelationPlan:
        """ORDER BY/LIMIT applied over a set-operation result."""
        orderings = []
        for item in order_by:
            key = item.key
            if isinstance(key, ast.LongLiteral):
                index = key.value - 1
                if not 0 <= index < len(relation.scope.fields):
                    raise SemanticError(f"ORDER BY position {key.value} out of range")
                symbol = relation.scope.fields[index].symbol
            elif isinstance(key, ast.Identifier):
                symbol = relation.scope.resolve(key.name).symbol
            else:
                raise NotSupportedError(
                    "ORDER BY over set operations supports columns and ordinals only"
                )
            orderings.append(
                plan.Ordering(symbol, item.ascending, bool(item.nulls_first))
            )
        node: plan.PlanNode = plan.SortNode(relation.node, orderings)
        if limit is not None:
            node = plan.LimitNode(node, limit)
        return RelationPlan(node, relation.scope)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def plan_relation(self, relation: ast.Relation) -> RelationPlan:
        if isinstance(relation, ast.Table):
            return self._plan_table(relation)
        if isinstance(relation, ast.AliasedRelation):
            return self._plan_aliased(relation)
        if isinstance(relation, ast.SubqueryRelation):
            return self.plan_query(relation.query)
        if isinstance(relation, ast.Join):
            return self._plan_join(relation)
        if isinstance(relation, ast.Values):
            return self._plan_values(relation.rows)
        if isinstance(relation, ast.Unnest):
            # Standalone UNNEST over constants: unnest over a single row.
            single = RelationPlan(plan.ValuesNode([], [[]]), Scope([]))
            return self._plan_unnest(single, relation, alias=None, column_aliases=())
        if isinstance(relation, ast.SampledRelation):
            inner = self.plan_relation(relation.relation)
            analyzer = ExpressionAnalyzer(Scope.empty(), self.registry)
            percentage = analyzer.analyze(relation.percentage)
            if not isinstance(percentage, ir.Constant) or percentage.value is None:
                raise SemanticError("TABLESAMPLE percentage must be a constant")
            fraction = float(percentage.value) / 100.0
            if not 0.0 <= fraction <= 1.0:
                raise SemanticError("TABLESAMPLE percentage must be between 0 and 100")
            node = plan.SampleNode(inner.node, fraction, relation.method)
            return RelationPlan(node, inner.scope)
        raise NotSupportedError(f"Unsupported relation: {type(relation).__name__}")

    def _plan_table(self, table: ast.Table) -> RelationPlan:
        if len(table.name.parts) == 1:
            cte = self._ctes.get(table.name.parts[0].lower())
            if cte is not None:
                # Plan the CTE fresh per reference (Presto inlines CTEs).
                saved = self._ctes
                self._ctes = {
                    k: v for k, v in saved.items() if k != table.name.parts[0].lower()
                }
                try:
                    planned = self.plan_query(cte.query)
                finally:
                    self._ctes = saved
                fields = planned.scope.fields
                if cte.column_names:
                    if len(cte.column_names) != len(fields):
                        raise SemanticError(
                            f"CTE {cte.name} declares {len(cte.column_names)} columns "
                            f"but query produces {len(fields)}"
                        )
                    fields = [
                        Field(name, f.type, f.symbol, cte.name)
                        for name, f in zip(cte.column_names, fields)
                    ]
                else:
                    fields = [
                        Field(f.name, f.type, f.symbol, cte.name) for f in fields
                    ]
                return RelationPlan(planned.node, Scope(fields))
        handle = self._resolve_table_name(table.name)
        if handle is None:
            raise TableNotFoundError(f"Table not found: {table.name}")
        metadata = self.metadata.table_metadata(handle)
        assignments: dict[Symbol, str] = {}
        outputs: list[Symbol] = []
        fields: list[Field] = []
        for column in metadata.columns:
            symbol = self.symbols.new_symbol(column.name, column.type)
            assignments[symbol] = column.name
            outputs.append(symbol)
            if not column.hidden:
                fields.append(Field(column.name, column.type, symbol, handle.name.table))
        node = plan.TableScanNode(handle, assignments, outputs)
        return RelationPlan(node, Scope(fields))

    def _plan_aliased(self, aliased: ast.AliasedRelation) -> RelationPlan:
        if isinstance(aliased.relation, ast.Unnest):
            single = RelationPlan(plan.ValuesNode([], [[]]), Scope([]))
            return self._plan_unnest(
                single, aliased.relation, aliased.alias, aliased.column_names
            )
        inner = self.plan_relation(aliased.relation)
        fields = inner.scope.fields
        if aliased.column_names:
            if len(aliased.column_names) != len(fields):
                raise SemanticError(
                    f"Alias {aliased.alias} declares {len(aliased.column_names)} columns "
                    f"but relation produces {len(fields)}"
                )
            fields = [
                Field(name, f.type, f.symbol, aliased.alias)
                for name, f in zip(aliased.column_names, fields)
            ]
        else:
            fields = [Field(f.name, f.type, f.symbol, aliased.alias) for f in fields]
        return RelationPlan(inner.node, Scope(fields))

    def _plan_join(self, join: ast.Join) -> RelationPlan:
        left = self.plan_relation(join.left)
        # UNNEST on the right side is correlated with the left relation.
        right_relation = join.right
        alias, column_aliases = None, ()
        if isinstance(right_relation, ast.AliasedRelation) and isinstance(
            right_relation.relation, ast.Unnest
        ):
            alias = right_relation.alias
            column_aliases = right_relation.column_names
            right_relation = right_relation.relation
        if isinstance(right_relation, ast.Unnest):
            if join.join_type not in (
                ast.JoinType.CROSS,
                ast.JoinType.IMPLICIT,
                ast.JoinType.INNER,
            ):
                raise NotSupportedError("UNNEST only supports CROSS/INNER JOIN")
            return self._plan_unnest(left, right_relation, alias, column_aliases)

        right = self.plan_relation(join.right)
        combined_scope = Scope(left.scope.fields + right.scope.fields)

        if join.join_type in (ast.JoinType.CROSS, ast.JoinType.IMPLICIT):
            node = plan.JoinNode(plan.JoinType.CROSS, left.node, right.node, [])
            return RelationPlan(node, combined_scope)

        join_type = plan.JoinType(join.join_type.value)
        criteria: list[plan.EquiJoinClause] = []
        residual: Optional[ir.RowExpression] = None
        output_fields = left.scope.fields + right.scope.fields
        left_node, right_node = left.node, right.node

        if isinstance(join.criteria, ast.JoinUsing):
            for column in join.criteria.columns:
                left_field = left.scope.resolve(column)
                right_field = right.scope.resolve(column)
                criteria.append(
                    plan.EquiJoinClause(left_field.symbol, right_field.symbol)
                )
            # ANSI: USING columns become unambiguous; hide the right copies.
            using = {c.lower() for c in join.criteria.columns}
            output_fields = left.scope.fields + [
                Field(None, f.type, f.symbol, f.qualifier)
                if (f.name or "").lower() in using
                else f
                for f in right.scope.fields
            ]
        elif isinstance(join.criteria, ast.JoinOn):
            analyzer = ExpressionAnalyzer(combined_scope, self.registry)
            condition = analyzer.analyze_as(join.criteria.expression, BOOLEAN)
            left_names = {f.symbol.name for f in left.scope.fields}
            right_names = {f.symbol.name for f in right.scope.fields}
            residual_conjuncts: list[ir.RowExpression] = []
            extra_left: dict[Symbol, ir.RowExpression] = {}
            extra_right: dict[Symbol, ir.RowExpression] = {}
            for conjunct in ir.extract_conjuncts(condition):
                clause = self._as_equi_clause(
                    conjunct, left_names, right_names, extra_left, extra_right
                )
                if clause is not None:
                    criteria.append(clause)
                else:
                    residual_conjuncts.append(conjunct)
            if extra_left:
                left_node = _append_projection(left_node, extra_left)
            if extra_right:
                right_node = _append_projection(right_node, extra_right)
            residual = ir.combine_conjuncts(residual_conjuncts)
            if residual is not None and not criteria and join_type is plan.JoinType.INNER:
                # Inner join with only a residual: cross join + filter.
                node = plan.JoinNode(plan.JoinType.CROSS, left_node, right_node, [])
                filtered = plan.FilterNode(node, residual)
                return RelationPlan(filtered, Scope(output_fields))
        else:
            raise SemanticError("JOIN requires ON or USING")

        node = plan.JoinNode(join_type, left_node, right_node, criteria, residual)
        return RelationPlan(node, Scope(output_fields))

    def _as_equi_clause(
        self,
        conjunct: ir.RowExpression,
        left_names: set[str],
        right_names: set[str],
        extra_left: dict[Symbol, ir.RowExpression],
        extra_right: dict[Symbol, ir.RowExpression],
    ) -> Optional[plan.EquiJoinClause]:
        """Turn ``expr_left = expr_right`` into an equi-join clause,
        projecting non-trivial key expressions onto the inputs."""
        if not (
            isinstance(conjunct, ir.SpecialForm)
            and conjunct.form == ir.COMPARISON
            and conjunct.form_data == "="
        ):
            return None
        first, second = conjunct.arguments
        first_vars = ir.referenced_variables(first)
        second_vars = ir.referenced_variables(second)
        if first_vars <= left_names and second_vars <= right_names:
            left_expr, right_expr = first, second
        elif first_vars <= right_names and second_vars <= left_names:
            left_expr, right_expr = second, first
        else:
            return None

        def materialize(expr: ir.RowExpression, extras: dict) -> Symbol:
            if isinstance(expr, ir.Variable):
                return expr.to_symbol()
            symbol = self.symbols.new_symbol("join_key", expr.type)
            extras[symbol] = expr
            return symbol

        return plan.EquiJoinClause(
            materialize(left_expr, extra_left), materialize(right_expr, extra_right)
        )

    def _plan_unnest(
        self,
        left: RelationPlan,
        unnest: ast.Unnest,
        alias: str | None,
        column_aliases: tuple[str, ...],
    ) -> RelationPlan:
        analyzer = ExpressionAnalyzer(left.scope, self.registry)
        source_node = left.node
        unnest_symbols: list[tuple[Symbol, list[Symbol]]] = []
        produced_fields: list[Field] = []
        extra_assignments: dict[Symbol, ir.RowExpression] = {}
        alias_iter = iter(column_aliases)
        for expression in unnest.expressions:
            analyzed = analyzer.analyze(expression)
            if isinstance(analyzed, ir.Variable):
                source_symbol = analyzed.to_symbol()
            else:
                source_symbol = self.symbols.new_symbol("unnest_src", analyzed.type)
                extra_assignments[source_symbol] = analyzed
            if isinstance(analyzed.type, ArrayType):
                element = analyzed.type.element
                if isinstance(element, RowType):
                    out_symbols = []
                    for index, (fname, ftype) in enumerate(element.fields):
                        name = next(alias_iter, fname or f"field{index}")
                        symbol = self.symbols.new_symbol(name or "field", ftype)
                        out_symbols.append(symbol)
                        produced_fields.append(Field(name, ftype, symbol, alias))
                    unnest_symbols.append((source_symbol, out_symbols))
                else:
                    name = next(alias_iter, None)
                    symbol = self.symbols.new_symbol(name or "unnest", element)
                    unnest_symbols.append((source_symbol, [symbol]))
                    produced_fields.append(Field(name, element, symbol, alias))
            elif isinstance(analyzed.type, MapType):
                key_name = next(alias_iter, "key")
                value_name = next(alias_iter, "value")
                key_symbol = self.symbols.new_symbol(key_name or "key", analyzed.type.key)
                value_symbol = self.symbols.new_symbol(
                    value_name or "value", analyzed.type.value
                )
                unnest_symbols.append((source_symbol, [key_symbol, value_symbol]))
                produced_fields.append(Field(key_name, analyzed.type.key, key_symbol, alias))
                produced_fields.append(
                    Field(value_name, analyzed.type.value, value_symbol, alias)
                )
            else:
                raise TypeError_(f"Cannot UNNEST type {analyzed.type}")
        if extra_assignments:
            source_node = _append_projection(source_node, extra_assignments)
        ordinality_symbol = None
        if unnest.with_ordinality:
            name = next(alias_iter, "ordinality")
            ordinality_symbol = self.symbols.new_symbol(name or "ordinality", BIGINT)
            produced_fields.append(Field(name, BIGINT, ordinality_symbol, alias))
        replicate = [f.symbol for f in left.scope.fields]
        node = plan.UnnestNode(
            source_node, replicate, unnest_symbols, ordinality_symbol
        )
        return RelationPlan(node, Scope(left.scope.fields + produced_fields))

    # ------------------------------------------------------------------
    # Aggregate / window collection
    # ------------------------------------------------------------------

    def _collect_aggregates(self, spec: ast.QuerySpecification) -> list[ast.FunctionCall]:
        found: list[ast.FunctionCall] = []
        seen: set[ast.FunctionCall] = set()

        def visit(node: ast.Node, inside_aggregate: bool) -> None:
            if isinstance(node, ast.FunctionCall):
                name = node.name.suffix.lower()
                if node.window is None and self.registry.is_aggregate(name):
                    if inside_aggregate:
                        raise SemanticError("Nested aggregate functions are not allowed")
                    if node not in seen:
                        seen.add(node)
                        found.append(node)
                    inside_aggregate = True
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                return  # subquery bodies have their own aggregation context
            for child in ast.children(node):
                visit(child, inside_aggregate)

        for item in spec.select.items:
            if isinstance(item, ast.SingleColumn):
                visit(item.expression, False)
        if spec.having is not None:
            visit(spec.having, False)
        for sort_item in spec.order_by:
            visit(sort_item.key, False)
        if spec.where is not None:
            before = len(found)
            visit(spec.where, False)
            if len(found) > before:
                raise SemanticError("Aggregate functions are not allowed in WHERE")
        return found

    def _group_expressions(self, spec: ast.QuerySpecification) -> list[ast.Expression]:
        if spec.group_by is None:
            return []
        select_items = spec.select.items
        result: list[ast.Expression] = []
        for expr in spec.group_by.expressions:
            if isinstance(expr, ast.LongLiteral):
                index = expr.value - 1
                if not 0 <= index < len(select_items):
                    raise SemanticError(f"GROUP BY position {expr.value} out of range")
                item = select_items[index]
                if not isinstance(item, ast.SingleColumn):
                    raise SemanticError("GROUP BY ordinal cannot reference *")
                result.append(item.expression)
            else:
                result.append(expr)
        return result

    def _collect_windows(self, spec: ast.QuerySpecification) -> list[ast.FunctionCall]:
        found: list[ast.FunctionCall] = []
        seen: set[ast.FunctionCall] = set()

        def visit(node: ast.Node) -> None:
            if isinstance(node, ast.FunctionCall) and node.window is not None:
                if node not in seen:
                    seen.add(node)
                    found.append(node)
                return
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                return
            for child in ast.children(node):
                visit(child)

        for item in spec.select.items:
            if isinstance(item, ast.SingleColumn):
                visit(item.expression)
        for sort_item in spec.order_by:
            visit(sort_item.key)
        return found

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _qualify(self, name: ast.QualifiedName) -> tuple[str, str, str]:
        parts = name.parts
        if len(parts) == 1:
            return self.session.catalog, self.session.schema, parts[0]
        if len(parts) == 2:
            return self.session.catalog, parts[0], parts[1]
        if len(parts) == 3:
            return parts[0], parts[1], parts[2]
        raise SemanticError(f"Too many name parts: {name}")

    def _resolve_table_name(self, name: ast.QualifiedName) -> TableHandle | None:
        catalog, schema, table = self._qualify(name)
        return self.metadata.resolve_table(catalog, schema, table)


def _append_projection(
    node: plan.PlanNode, extras: dict[Symbol, ir.RowExpression]
) -> plan.ProjectNode:
    """Identity-extend ``node`` with additional computed columns."""
    assignments: dict[Symbol, ir.RowExpression] = {
        s: ir.Variable(s.type, s.name) for s in node.output_symbols
    }
    assignments.update(extras)
    return plan.ProjectNode(node, assignments)


class _QueryBuilder(SubqueryPlanner):
    """Stateful helper that layers plan nodes for one QuerySpecification."""

    def __init__(self, planner: LogicalPlanner, relation: RelationPlan):
        self.planner = planner
        self.relation = relation
        # AST expression -> variable carrying its already-computed value.
        self.translations: dict[ast.Expression, ir.Variable] = {}

    # -- analyzer construction ---------------------------------------------

    def _analyzer(self) -> ExpressionAnalyzer:
        return ExpressionAnalyzer(
            self.relation.scope,
            self.planner.registry,
            self.translations,
            subquery_planner=self,
        )

    # -- WHERE ----------------------------------------------------------------

    def filter(self, where: ast.Expression) -> None:
        predicate = self._analyzer().analyze_as(where, BOOLEAN)
        self.relation = RelationPlan(
            plan.FilterNode(self.relation.node, predicate), self.relation.scope
        )

    # -- GROUP BY / aggregates ---------------------------------------------------

    def aggregate(
        self,
        group_exprs: list[ast.Expression],
        aggregates: list[ast.FunctionCall],
        spec: ast.QuerySpecification,
    ) -> None:
        analyzer = self._analyzer()
        # Pre-projection: grouping keys and aggregate arguments as symbols.
        pre_assignments: dict[Symbol, ir.RowExpression] = {
            s: ir.Variable(s.type, s.name) for s in self.relation.node.output_symbols
        }
        group_symbols: list[Symbol] = []
        group_translation: dict[ast.Expression, ir.Variable] = {}
        for expr in group_exprs:
            analyzed = analyzer.analyze(expr)
            if isinstance(analyzed, ir.Variable):
                symbol = analyzed.to_symbol()
            else:
                symbol = self.planner.symbols.new_symbol("group", analyzed.type)
                pre_assignments[symbol] = analyzed
            if symbol not in group_symbols:
                group_symbols.append(symbol)
            group_translation[expr] = ir.Variable(symbol.type, symbol.name)

        agg_calls: dict[Symbol, plan.AggregationCall] = {}
        agg_translation: dict[ast.Expression, ir.Variable] = {}
        for call in aggregates:
            name = call.name.suffix.lower()
            arg_symbols: list[ir.RowExpression] = []
            arg_types: list[Type] = []
            for arg in call.arguments:
                analyzed = analyzer.analyze(arg)
                if isinstance(analyzed, ir.Variable):
                    symbol = analyzed.to_symbol()
                else:
                    symbol = self.planner.symbols.new_symbol(f"{name}_arg", analyzed.type)
                    pre_assignments[symbol] = analyzed
                arg_symbols.append(ir.Variable(symbol.type, symbol.name))
                arg_types.append(symbol.type)
            function, bindings = self.planner.registry.resolve_aggregate(name, arg_types)
            # Coerce arguments to the declared types.
            from repro.functions.signature import substitute

            coerced_args: list[ir.RowExpression] = []
            for i, arg_expr in enumerate(arg_symbols):
                declared = substitute(function.signature.expected_type(i), bindings)
                if declared not in (UNKNOWN, arg_expr.type):
                    cast_symbol = self.planner.symbols.new_symbol(
                        f"{name}_cast", declared
                    )
                    pre_assignments[cast_symbol] = ir.SpecialForm(
                        declared, ir.CAST, (arg_expr,), declared
                    )
                    arg_expr = ir.Variable(declared, cast_symbol.name)
                coerced_args.append(arg_expr)
            filter_expr = None
            if call.filter is not None:
                analyzed_filter = analyzer.analyze_as(call.filter, BOOLEAN)
                if isinstance(analyzed_filter, ir.Variable):
                    filter_expr = analyzed_filter
                else:
                    filter_symbol = self.planner.symbols.new_symbol("agg_filter", BOOLEAN)
                    pre_assignments[filter_symbol] = analyzed_filter
                    filter_expr = ir.Variable(BOOLEAN, filter_symbol.name)
            return_type = substitute(function.signature.return_type, bindings)
            out_symbol = self.planner.symbols.new_symbol(name, return_type)
            agg_calls[out_symbol] = plan.AggregationCall(
                name, function, tuple(coerced_args), call.distinct, filter_expr
            )
            agg_translation[call] = ir.Variable(return_type, out_symbol.name)

        pre_project = plan.ProjectNode(self.relation.node, pre_assignments)
        agg_node = plan.AggregationNode(pre_project, group_symbols, agg_calls)
        # New scope: grouping keys keep their original field names.
        fields: list[Field] = []
        symbol_to_field = {
            f.symbol.name: f for f in self.relation.scope.fields
        }
        for symbol in group_symbols:
            original = symbol_to_field.get(symbol.name)
            if original is not None:
                fields.append(original)
            else:
                fields.append(Field(None, symbol.type, symbol, None))
        for symbol in agg_calls:
            fields.append(Field(None, symbol.type, symbol, None))
        self.relation = RelationPlan(agg_node, Scope(fields))
        self.translations = {**group_translation, **agg_translation}

    def aggregate_grouping_sets(
        self,
        all_group_exprs: list[ast.Expression],
        sets: list[list[ast.Expression]],
        aggregates: list[ast.FunctionCall],
        spec: ast.QuerySpecification,
    ) -> None:
        """GROUPING SETS / ROLLUP / CUBE: one aggregation per grouping
        set over the shared source, combined with UNION ALL; keys absent
        from a set surface as NULL (the standard expansion)."""
        base = self.relation
        branch_relations: list[RelationPlan] = []
        branch_translations: list[dict] = []
        for subset in sets:
            branch = _QueryBuilder(
                self.planner, RelationPlan(base.node, base.scope)
            )
            branch.translations = dict(self.translations)
            branch.aggregate(list(subset), aggregates, spec)
            branch_relations.append(branch.relation)
            branch_translations.append(branch.translations)

        def branch_type(key):
            for translations in branch_translations:
                if key in translations:
                    return translations[key].type
            raise SemanticError("grouping expression missing from all branches")

        union_outputs: list[Symbol] = []
        for expr in all_group_exprs:
            union_outputs.append(
                self.planner.symbols.new_symbol("gset", branch_type(expr))
            )
        for call in aggregates:
            union_outputs.append(
                self.planner.symbols.new_symbol(
                    call.name.suffix.lower(), branch_type(call)
                )
            )
        sources: list[plan.PlanNode] = []
        mappings: list[dict[Symbol, Symbol]] = []
        for subset, relation, translations in zip(
            sets, branch_relations, branch_translations
        ):
            assignments: dict[Symbol, ir.RowExpression] = {}
            branch_symbols: list[Symbol] = []
            for i, expr in enumerate(all_group_exprs):
                target_type = union_outputs[i].type
                if expr in subset:
                    value: ir.RowExpression = translations[expr]
                else:
                    value = ir.Constant(target_type, None)
                symbol = self.planner.symbols.new_symbol("gset_b", target_type)
                assignments[symbol] = value
                branch_symbols.append(symbol)
            for j, call in enumerate(aggregates):
                target = union_outputs[len(all_group_exprs) + j]
                symbol = self.planner.symbols.new_symbol("gset_agg", target.type)
                assignments[symbol] = translations[call]
                branch_symbols.append(symbol)
            sources.append(plan.ProjectNode(relation.node, assignments))
            mappings.append(dict(zip(union_outputs, branch_symbols)))
        union = plan.UnionNode(sources, union_outputs, mappings)
        fields = [Field(None, s.type, s, None) for s in union_outputs]
        self.relation = RelationPlan(union, Scope(fields))
        self.translations = {}
        for i, expr in enumerate(all_group_exprs):
            self.translations[expr] = ir.Variable(
                union_outputs[i].type, union_outputs[i].name
            )
        for j, call in enumerate(aggregates):
            out = union_outputs[len(all_group_exprs) + j]
            self.translations[call] = ir.Variable(out.type, out.name)

    def having(self, having: ast.Expression) -> None:
        predicate = self._analyzer().analyze_as(having, BOOLEAN)
        self.relation = RelationPlan(
            plan.FilterNode(self.relation.node, predicate), self.relation.scope
        )

    # -- window functions -----------------------------------------------------------

    def window(self, calls: list[ast.FunctionCall]) -> None:
        # Group calls by window specification.
        by_spec: dict[ast.WindowSpec, list[ast.FunctionCall]] = {}
        for call in calls:
            assert call.window is not None
            by_spec.setdefault(call.window, []).append(call)
        for spec, spec_calls in by_spec.items():
            self._plan_window_group(spec, spec_calls)

    def _plan_window_group(
        self, spec: ast.WindowSpec, calls: list[ast.FunctionCall]
    ) -> None:
        analyzer = self._analyzer()
        pre_assignments: dict[Symbol, ir.RowExpression] = {
            s: ir.Variable(s.type, s.name) for s in self.relation.node.output_symbols
        }

        def to_symbol(expr: ast.Expression, base: str) -> Symbol:
            analyzed = analyzer.analyze(expr)
            if isinstance(analyzed, ir.Variable):
                return analyzed.to_symbol()
            symbol = self.planner.symbols.new_symbol(base, analyzed.type)
            pre_assignments[symbol] = analyzed
            return symbol

        partition_symbols = [to_symbol(e, "partition") for e in spec.partition_by]
        orderings = [
            plan.Ordering(
                to_symbol(item.key, "order"),
                item.ascending,
                bool(item.nulls_first),
            )
            for item in spec.order_by
        ]
        functions: dict[Symbol, plan.WindowCall] = {}
        for call in calls:
            name = call.name.suffix.lower()
            arg_exprs: list[ir.RowExpression] = []
            arg_types: list[Type] = []
            for arg in call.arguments:
                analyzed = analyzer.analyze(arg)
                if isinstance(analyzed, ir.Variable):
                    symbol = analyzed.to_symbol()
                else:
                    symbol = self.planner.symbols.new_symbol("w_arg", analyzed.type)
                    pre_assignments[symbol] = analyzed
                arg_exprs.append(ir.Variable(symbol.type, symbol.name))
                arg_types.append(symbol.type)
            registry = self.planner.registry
            from repro.functions.signature import substitute

            if registry.is_window(name):
                function, bindings = registry.resolve_window(name, arg_types)
                return_type = substitute(function.signature.return_type, bindings)
                window_call = plan.WindowCall(name, function, None, tuple(arg_exprs))
            elif registry.is_aggregate(name):
                agg, bindings = registry.resolve_aggregate(name, arg_types)
                return_type = substitute(agg.signature.return_type, bindings)
                window_call = plan.WindowCall(name, None, agg, tuple(arg_exprs))
            else:
                raise SemanticError(f"{name} is not a window function")
            out_symbol = self.planner.symbols.new_symbol(name, return_type)
            functions[out_symbol] = window_call
            self.translations[call] = ir.Variable(return_type, out_symbol.name)

        source = plan.ProjectNode(self.relation.node, pre_assignments)
        node = plan.WindowNode(source, partition_symbols, orderings, functions, spec.frame)
        extra_fields = [Field(None, s.type, s, None) for s in functions]
        self.relation = RelationPlan(
            node, Scope(self.relation.scope.fields + extra_fields)
        )

    # -- SELECT projection ---------------------------------------------------------

    def project_select(self, spec: ast.QuerySpecification) -> list[Field]:
        analyzer = self._analyzer()
        output_fields: list[Field] = []
        computed: dict[Symbol, ir.RowExpression] = {}
        for item in spec.select.items:
            if isinstance(item, ast.AllColumns):
                fields = self.relation.scope.fields
                if item.prefix is not None:
                    qualifier = item.prefix.parts[-1]
                    fields = self.relation.scope.fields_for_qualifier(qualifier)
                    if not fields:
                        raise SemanticError(f"Relation '{qualifier}' not found for *")
                for field in fields:
                    if field.name is None:
                        continue
                    output_fields.append(
                        Field(field.name, field.type, field.symbol, field.qualifier)
                    )
            else:
                assert isinstance(item, ast.SingleColumn)
                analyzed = analyzer.analyze(item.expression)
                alias = item.alias or _derive_name(item.expression)
                if isinstance(analyzed, ir.Variable):
                    symbol = analyzed.to_symbol()
                else:
                    symbol = self.planner.symbols.new_symbol(alias or "expr", analyzed.type)
                    computed[symbol] = analyzed
                output_fields.append(Field(alias, analyzed.type, symbol, None))
        if spec.select.distinct:
            # DISTINCT prunes to exactly the outputs; ORDER BY may only
            # reference select outputs afterwards (ANSI).
            assignments: dict[Symbol, ir.RowExpression] = {}
            for field in output_fields:
                assignments[field.symbol] = computed.get(
                    field.symbol, ir.Variable(field.symbol.type, field.symbol.name)
                )
            node: plan.PlanNode = plan.ProjectNode(self.relation.node, assignments)
            self._input_scope_for_sort = Scope([])
        else:
            # Keep inputs flowing so ORDER BY can reference unselected columns.
            node = _append_projection(self.relation.node, computed)
            self._input_scope_for_sort = self.relation.scope
        self.relation = RelationPlan(node, Scope(output_fields))
        return output_fields

    # -- ORDER BY -------------------------------------------------------------------

    def sort(self, order_by: tuple[ast.SortItem, ...], output_fields: list[Field]) -> None:
        # Resolution order per ANSI: ordinal -> select alias -> input column
        # -> arbitrary expression over the inputs.
        orderings: list[plan.Ordering] = []
        extra: dict[Symbol, ir.RowExpression] = {}
        output_scope = Scope(output_fields)
        input_scope = self._input_scope_for_sort
        combined_scope = Scope(input_scope.fields)
        for item in order_by:
            key = item.key
            symbol: Symbol
            if isinstance(key, ast.LongLiteral):
                index = key.value - 1
                if not 0 <= index < len(output_fields):
                    raise SemanticError(f"ORDER BY position {key.value} out of range")
                symbol = output_fields[index].symbol
            else:
                analyzed = None
                if isinstance(key, ast.Identifier) and output_scope.has_field(key.name):
                    analyzed = ExpressionAnalyzer(
                        output_scope, self.planner.registry, self.translations
                    ).analyze(key)
                else:
                    analyzed = ExpressionAnalyzer(
                        combined_scope,
                        self.planner.registry,
                        self.translations,
                        subquery_planner=self,
                    ).analyze(key)
                if isinstance(analyzed, ir.Variable):
                    symbol = analyzed.to_symbol()
                else:
                    symbol = self.planner.symbols.new_symbol("sort_key", analyzed.type)
                    extra[symbol] = analyzed
            nulls_first = (
                item.nulls_first
                if item.nulls_first is not None
                else not item.ascending  # ANSI default: NULLS LAST for ASC
            )
            orderings.append(plan.Ordering(symbol, item.ascending, nulls_first))
        node = self.relation.node
        if extra:
            node = _append_projection(node, extra)
        node = plan.SortNode(node, orderings)
        self.relation = RelationPlan(node, self.relation.scope)

    def prune(self, output_fields: list[Field]) -> None:
        needed = [f.symbol for f in output_fields]
        current = self.relation.node.output_symbols
        if current != needed:
            assignments = {s: ir.Variable(s.type, s.name) for s in needed}
            node: plan.PlanNode = plan.ProjectNode(self.relation.node, assignments)
        else:
            node = self.relation.node
        self.relation = RelationPlan(node, Scope(output_fields))

    # -- SubqueryPlanner interface ---------------------------------------------------

    def plan_scalar_subquery(self, node: ast.ScalarSubquery, scope: Scope) -> ir.RowExpression:
        sub, captures = self._plan_subquery_with_capture(node.query, scope)
        if len(sub.scope.fields) != 1:
            raise SemanticError("Scalar subquery must return exactly one column")
        out = sub.scope.fields[0].symbol
        if not captures:
            enforced = plan.EnforceSingleRowNode(sub.node)
            joined = plan.JoinNode(
                plan.JoinType.CROSS, self.relation.node, enforced, []
            )
            self.relation = RelationPlan(
                joined, Scope(self.relation.scope.fields + sub.scope.fields)
            )
            return ir.Variable(out.type, out.name)
        # Correlated scalar aggregate: rewrite as ONE aggregation
        # grouped by the correlation keys, LEFT-joined back to the
        # outer side (rule decorrelate_scalar, family SE). With the
        # knob off — or the cost guard judging the outer side too small
        # to amortize a hash build — the same grouped subtree is joined
        # through a residual equality filter instead of hash criteria:
        # a nested-loop apply with identical semantics.
        from repro.planner.decorrelation import decorrelate_scalar
        from repro.planner.rules import DECORRELATE_SCALAR

        outer_symbols = {f.symbol.name: f.symbol for f in captures}
        result = decorrelate_scalar(
            sub.node, out, outer_symbols, self.planner.symbols
        )
        source_node, source_keys = self._materialize_outer_keys(
            self.relation.node, result.key_pairs
        )
        config = self.planner.optimizer_config
        trace = self.planner.trace
        use_grouped = DECORRELATE_SCALAR.enabled(config)
        if use_grouped and config.rewrite_cost_guards:
            estimate = self._estimate_rows(source_node)
            if not DECORRELATE_SCALAR.cost_guard(estimate, None):
                trace.record_skipped(
                    DECORRELATE_SCALAR.name,
                    key=(DECORRELATE_SCALAR.name, source_node.id),
                )
                use_grouped = False
        inner_keys = [inner for _, inner in result.key_pairs]
        if use_grouped:
            joined = plan.JoinNode(
                plan.JoinType.LEFT,
                source_node,
                result.node,
                [
                    plan.EquiJoinClause(source_key, inner_key)
                    for source_key, inner_key in zip(source_keys, inner_keys)
                ],
            )
            trace.record_fired(DECORRELATE_SCALAR.name)
        else:
            conditions = [
                ir.SpecialForm(
                    BOOLEAN,
                    ir.COMPARISON,
                    (
                        ir.Variable(source_key.type, source_key.name),
                        ir.Variable(inner_key.type, inner_key.name),
                    ),
                    "=",
                )
                for source_key, inner_key in zip(source_keys, inner_keys)
            ]
            joined = plan.JoinNode(
                plan.JoinType.LEFT,
                source_node,
                result.node,
                [],
                filter=ir.combine_conjuncts(conditions),
            )
        self.relation = RelationPlan(
            joined,
            Scope(
                self.relation.scope.fields
                + [
                    Field(None, BOOLEAN, result.present, None),
                    Field(None, out.type, result.value, None),
                ]
            ),
        )
        value = ir.Variable(out.type, out.name)
        if result.empty_value is None:
            # Empty input yields NULL — exactly what the LEFT join
            # produces for a groupless outer row.
            return value
        # count(*)-style aggregates are non-NULL on empty input, but the
        # LEFT join emits NULL for groupless rows; patch via the
        # constant-TRUE ``present`` marker (a plain COALESCE would also
        # clobber legitimately-NULL values of matched groups).
        return ir.SpecialForm(
            out.type,
            ir.IF,
            (
                ir.SpecialForm(
                    BOOLEAN,
                    ir.IS_NULL,
                    (ir.Variable(BOOLEAN, result.present.name),),
                ),
                ir.Constant(out.type, result.empty_value),
                value,
            ),
        )

    def _estimate_rows(self, node: plan.PlanNode):
        from repro.optimizer.stats import StatsEstimator

        try:
            return StatsEstimator(self.planner.metadata).estimate(node).row_count
        except Exception:
            return None

    def _require_decorrelation(self, rule) -> None:
        # Unlike decorrelate_scalar there is no executable fallback for
        # correlated EXISTS/IN — an un-decorrelated plan has free
        # variables — so a disabled knob must reject, not degrade.
        if not rule.enabled(self.planner.optimizer_config):
            raise NotSupportedError(
                f"Correlated subqueries require optimizer rule {rule.name!r} "
                f"(OptimizerConfig.{rule.knob} is disabled)"
            )

    def _plan_subquery_with_capture(self, query: ast.Query, scope: Scope):
        """Plan a subquery allowing correlated references to ``scope``;
        returns (relation, captured outer fields)."""
        captures: list[Field] = []
        capture_scope = Scope([], parent=scope, captures=captures)
        sub = self.planner.plan_query(query, outer_scope=capture_scope)
        return sub, captures

    def _materialize_outer_keys(self, source_node, key_pairs):
        """Project non-trivial outer-side key expressions onto the probe
        input; returns (node, probe key symbols)."""
        extras: dict[Symbol, ir.RowExpression] = {}
        source_keys: list[Symbol] = []
        for outer_expr, _ in key_pairs:
            if isinstance(outer_expr, ir.Variable):
                source_keys.append(outer_expr.to_symbol())
            else:
                symbol = self.planner.symbols.new_symbol("corr_key", outer_expr.type)
                extras[symbol] = outer_expr
                source_keys.append(symbol)
        if extras:
            source_node = _append_projection(source_node, extras)
        return source_node, source_keys

    def plan_in_subquery(
        self, value: ir.RowExpression, node: ast.InSubquery, scope: Scope
    ) -> ir.RowExpression:
        sub, captures = self._plan_subquery_with_capture(node.query, scope)
        if len(sub.scope.fields) != 1:
            raise SemanticError("IN subquery must return exactly one column")
        filtering_symbol = sub.scope.fields[0].symbol
        common = common_super_type(value.type, filtering_symbol.type)
        if common is None:
            raise TypeError_(
                f"IN subquery: {value.type} is not comparable to {filtering_symbol.type}"
            )
        source_node = self.relation.node
        if isinstance(value, ir.Variable) and value.type == common:
            source_key = value.to_symbol()
        else:
            source_key = self.planner.symbols.new_symbol("in_value", common)
            expr = value
            if expr.type != common:
                expr = ir.SpecialForm(common, ir.CAST, (expr,), common)
            source_node = _append_projection(source_node, {source_key: expr})
        filtering_node = sub.node
        extra_source_keys: list[Symbol] = []
        extra_filtering_keys: list[Symbol] = []
        if captures:
            from repro.planner.decorrelation import decorrelate
            from repro.planner.rules import DECORRELATE_SUBQUERY

            self._require_decorrelation(DECORRELATE_SUBQUERY)
            outer_symbols = {f.symbol.name: f.symbol for f in captures}
            result = decorrelate(sub.node, outer_symbols, self.planner.symbols)
            self.planner.trace.record_fired(DECORRELATE_SUBQUERY.name)
            filtering_node = result.node
            source_node, extra_source_keys = self._materialize_outer_keys(
                source_node, result.key_pairs
            )
            extra_filtering_keys = [inner for _, inner in result.key_pairs]
        if filtering_symbol.type != common:
            cast_symbol = self.planner.symbols.new_symbol("in_match", common)
            filtering_node = _append_projection(
                filtering_node,
                {
                    cast_symbol: ir.SpecialForm(
                        common,
                        ir.CAST,
                        (ir.Variable(filtering_symbol.type, filtering_symbol.name),),
                        common,
                    )
                },
            )
            filtering_symbol = cast_symbol
        output = self.planner.symbols.new_symbol("in_result", BOOLEAN)
        semi = plan.SemiJoinNode(
            source_node,
            filtering_node,
            [source_key] + extra_source_keys,
            [filtering_symbol] + extra_filtering_keys,
            output,
        )
        self.relation = RelationPlan(
            semi, Scope(self.relation.scope.fields + [Field(None, BOOLEAN, output, None)])
        )
        return ir.Variable(BOOLEAN, output.name)

    def plan_exists(self, node: ast.Exists, scope: Scope) -> ir.RowExpression:
        sub, captures = self._plan_subquery_with_capture(node.query, scope)
        if captures:
            # Correlated EXISTS: decorrelate into a multi-key semi join
            # (paper Sec. IV-C lists decorrelation among the rules).
            from repro.planner.decorrelation import decorrelate
            from repro.planner.rules import DECORRELATE_SUBQUERY

            self._require_decorrelation(DECORRELATE_SUBQUERY)
            outer_symbols = {f.symbol.name: f.symbol for f in captures}
            result = decorrelate(sub.node, outer_symbols, self.planner.symbols)
            self.planner.trace.record_fired(DECORRELATE_SUBQUERY.name)
            source_node, source_keys = self._materialize_outer_keys(
                self.relation.node, result.key_pairs
            )
            output = self.planner.symbols.new_symbol("exists", BOOLEAN)
            semi = plan.SemiJoinNode(
                source_node,
                result.node,
                source_keys,
                [inner for _, inner in result.key_pairs],
                output,
            )
            self.relation = RelationPlan(
                semi,
                Scope(self.relation.scope.fields + [Field(None, BOOLEAN, output, None)]),
            )
            # EXISTS is two-valued: an unknown match (NULL keys) is FALSE.
            return ir.SpecialForm(
                BOOLEAN,
                ir.COALESCE,
                (ir.Variable(BOOLEAN, output.name), ir.Constant(BOOLEAN, False)),
            )
        limited = plan.LimitNode(sub.node, 1)
        count_fn, _ = self.planner.registry.resolve_aggregate("count", [])
        count_symbol = self.planner.symbols.new_symbol("exists_count", BIGINT)
        agg = plan.AggregationNode(
            limited,
            [],
            {count_symbol: plan.AggregationCall("count", count_fn, ())},
        )
        joined = plan.JoinNode(plan.JoinType.CROSS, self.relation.node, agg, [])
        self.relation = RelationPlan(
            joined,
            Scope(self.relation.scope.fields + [Field(None, BIGINT, count_symbol, None)]),
        )
        return ir.SpecialForm(
            BOOLEAN,
            ir.COMPARISON,
            (ir.Variable(BIGINT, count_symbol.name), ir.Constant(BIGINT, 0)),
            ">",
        )


def _derive_name(expression: ast.Expression) -> str | None:
    if isinstance(expression, ast.Identifier):
        return expression.name
    if isinstance(expression, ast.Dereference):
        return expression.field_name
    if isinstance(expression, ast.FunctionCall):
        return expression.name.suffix.lower()
    if isinstance(expression, ast.Cast):
        return _derive_name(expression.value)
    return None
