"""Canonical plan fingerprints for the result cache.

Two queries share a fingerprint exactly when their optimized fragmented
plans are structurally identical up to symbol naming — so alias-only and
whitespace-only rewrites of the same query collide (and can share cached
result pages), while a changed literal, column, or operator does not.

Canonicalisation walks fragments in id order and renames every
:class:`Symbol` to ``s0, s1, ...`` in first-seen order. Plan-node ``id``
fields (global allocator state) and resolved function objects (identity
is already captured by the function *name*) are excluded; ``OutputNode``
column names are excluded because output aliases do not affect the
produced pages.
"""

from __future__ import annotations

import dataclasses
import hashlib
from enum import Enum

from repro.catalog.metadata import TableHandle
from repro.catalog.schema import QualifiedTableName
from repro.planner.fragmenter import FragmentedPlan
from repro.planner.nodes import (
    OutputNode,
    PlanNode,
    SampleNode,
    TableFinishNode,
    TableWriterNode,
    walk_plan,
)
from repro.planner.symbols import Symbol


class _Canonicalizer:
    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    def _symbol(self, name: str) -> str:
        canon = self._names.get(name)
        if canon is None:
            canon = self._names[name] = f"s{len(self._names)}"
        return canon

    def token(self, value) -> object:
        if value is None or isinstance(value, (bool, int, float, str, bytes)):
            return value
        if isinstance(value, Symbol):
            return ("sym", self._symbol(value.name), str(value.type))
        if isinstance(value, Enum):
            return ("enum", type(value).__name__, value.value)
        if isinstance(value, TableHandle):
            name = value.name
            return ("table", name.catalog, name.schema, name.table)
        if isinstance(value, QualifiedTableName):
            return ("qname", value.catalog, value.schema, value.table)
        if isinstance(value, PlanNode):
            fields = []
            for f in dataclasses.fields(value):
                if f.name == "id":
                    continue
                if isinstance(value, OutputNode) and f.name == "column_names":
                    continue
                fields.append((f.name, self.token(getattr(value, f.name))))
            return ("node", type(value).__name__, tuple(fields))
        if dataclasses.is_dataclass(value):
            fields = tuple(
                (f.name, self.token(getattr(value, f.name)))
                for f in dataclasses.fields(value)
                # Resolved function objects: identity lives in the
                # sibling name field; the object repr is unstable.
                if f.name != "function"
            )
            return ("dc", type(value).__name__, fields)
        if isinstance(value, dict):
            return ("dict", tuple((self.token(k), self.token(v)) for k, v in value.items()))
        if isinstance(value, (list, tuple)):
            return ("seq", tuple(self.token(v) for v in value))
        if isinstance(value, (set, frozenset)):
            return ("set", tuple(sorted(repr(self.token(v)) for v in value)))
        return ("obj", type(value).__name__, repr(value))


def plan_fingerprint(fragmented: FragmentedPlan) -> str:
    """Stable hash of the canonicalized fragmented plan."""
    canon = _Canonicalizer()
    tokens = []
    for fid in sorted(fragmented.fragments):
        fragment = fragmented.fragments[fid]
        tokens.append(
            (
                "fragment",
                fid,
                fragment.partitioning,
                canon.token(fragment.output_kind),
                canon.token(fragment.output_keys),
                canon.token(fragment.output_ordering),
                canon.token(fragment.root),
            )
        )
    digest = hashlib.sha256(repr(tuple(tokens)).encode()).hexdigest()
    return digest


def optimizer_config_token(config) -> tuple:
    """Canonical token of an effective OptimizerConfig for plan-cache
    keys: two sessions share a cached plan only when every optimizer
    setting (rule knobs, guards, thresholds) matches — a plan built
    with a rule disabled must not be served to a session that enables
    it."""
    return tuple(
        (f.name, getattr(config, f.name)) for f in dataclasses.fields(config)
    )


def referenced_tables(fragmented: FragmentedPlan) -> list[QualifiedTableName]:
    """Every table the plan reads, in deterministic order (for version
    stamping in the plan/result caches)."""
    seen: dict[QualifiedTableName, None] = {}
    for fragment in fragmented.fragments.values():
        for node in walk_plan(fragment.root):
            for attr in ("table", "index_table"):
                handle = getattr(node, attr, None)
                if isinstance(handle, TableHandle):
                    seen.setdefault(handle.name)
    return list(seen)


def is_result_cacheable(fragmented: FragmentedPlan) -> bool:
    """True when repeats of this plan must be bit-identical: no sampling
    (the only nondeterministic operator) and no side effects."""
    for fragment in fragmented.fragments.values():
        for node in walk_plan(fragment.root):
            if isinstance(node, (SampleNode, TableWriterNode, TableFinishNode)):
                return False
    return True
