"""Distributed planning: exchange insertion and fragment cutting
(paper Sec. IV-C3 "Inter-node Parallelism").

Two steps, mirroring Presto's AddExchanges + PlanFragmenter:

1. :func:`add_exchanges` walks the optimized logical plan inserting
   REMOTE exchanges where a node's required distribution is not
   satisfied by its input's derived properties — and *eliding* them
   where it is: a co-located join introduces no shuffle, an aggregation
   over data already partitioned on its grouping keys stays single-step,
   which is how the paper's Fig. 3 plan collapses to a single stage.
   Aggregations split into PARTIAL / FINAL around the shuffle; sorts,
   limits, topNs, and distincts get partial steps below it.
2. :func:`fragment_plan` cuts the tree at remote exchanges into
   :class:`PlanFragment` stages linked by :class:`RemoteSourceNode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.optimizer.properties import PartitioningProperty, derive_partitioning
from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.planner import Plan
from repro.planner.symbols import Symbol
from repro.types import VARBINARY


@dataclass
class StreamProperties:
    """Distribution of a (sub)plan's output across the cluster."""

    single: bool = False
    # Engine hash partitioning keys, when repartitioned by an exchange.
    hash_keys: Optional[tuple[str, ...]] = None
    # Connector partitioning, when data is read from a partitioned layout
    # and no shuffle has disturbed it.
    connector: Optional[PartitioningProperty] = None

    def partitioned_on_subset(self, keys: set[str]) -> bool:
        """True when every partition holds complete groups for ``keys``
        (i.e. the partition columns are a subset of the grouping keys)."""
        if self.single:
            return True
        if self.hash_keys is not None and set(self.hash_keys) <= keys and self.hash_keys:
            return True
        if self.connector is not None and self.connector.columns and set(
            self.connector.columns
        ) <= keys:
            return True
        return False

    def partitioned_exactly_on(self, keys: tuple[str, ...]) -> bool:
        if self.hash_keys is not None and self.hash_keys == keys:
            return True
        if self.connector is not None and self.connector.columns == keys:
            return True
        return False


def add_exchanges(root: plan.PlanNode) -> plan.PlanNode:
    node, _ = _visit(root)
    return node


def _remote(node, kind, keys=(), ordering=()):
    return plan.ExchangeNode(
        node, plan.ExchangeScope.REMOTE, kind, list(keys), list(ordering)
    )


def _visit(node: plan.PlanNode) -> tuple[plan.PlanNode, StreamProperties]:  # noqa: C901
    if isinstance(node, plan.TableScanNode):
        connector = derive_partitioning(node)
        return node, StreamProperties(connector=connector)
    if isinstance(node, plan.ValuesNode):
        return node, StreamProperties(single=True)
    if isinstance(node, plan.RemoteSourceNode):
        return node, StreamProperties()

    if isinstance(node, (plan.FilterNode, plan.ProjectNode, plan.UnnestNode)):
        source, props = _visit(node.sources[0])
        node = node.replace_sources([source])
        if isinstance(node, plan.ProjectNode):
            # Renaming may invalidate derived connector partitioning.
            connector = derive_partitioning(node) if props.connector else None
            hash_keys = _rename_keys(node, props.hash_keys)
            return node, StreamProperties(props.single, hash_keys, connector)
        return node, props

    if isinstance(node, plan.OutputNode):
        source, props = _visit(node.source)
        if not props.single:
            source = _remote(source, plan.ExchangeKind.GATHER)
        return node.replace_sources([source]), StreamProperties(single=True)

    if isinstance(node, plan.AggregationNode):
        return _visit_aggregation(node)
    if isinstance(node, plan.JoinNode):
        return _visit_join(node)
    if isinstance(node, plan.SemiJoinNode):
        source, props = _visit(node.source)
        filtering, filtering_props = _visit(node.filtering_source)
        if not filtering_props.single and not props.single:
            filtering = _remote(filtering, plan.ExchangeKind.REPLICATE)
        node = node.replace_sources([source, filtering])
        return node, props
    if isinstance(node, plan.IndexJoinNode):
        probe, props = _visit(node.probe)
        return node.replace_sources([probe]), props

    if isinstance(node, plan.SortNode):
        source, props = _visit(node.source)
        if props.single:
            return node.replace_sources([source]), props
        partial = plan.SortNode(source, node.order_by, is_partial=True)
        merged = _remote(partial, plan.ExchangeKind.GATHER, ordering=node.order_by)
        return merged, StreamProperties(single=True)

    if isinstance(node, plan.TopNNode):
        source, props = _visit(node.source)
        if props.single:
            return node.replace_sources([source]), props
        partial = plan.TopNNode(source, node.count, node.order_by, is_partial=True)
        gathered = _remote(partial, plan.ExchangeKind.GATHER, ordering=node.order_by)
        final = plan.TopNNode(gathered, node.count, node.order_by)
        return final, StreamProperties(single=True)

    if isinstance(node, plan.LimitNode):
        source, props = _visit(node.source)
        if props.single:
            return node.replace_sources([source]), props
        partial = plan.LimitNode(source, node.count, is_partial=True)
        gathered = _remote(partial, plan.ExchangeKind.GATHER)
        final = plan.LimitNode(gathered, node.count)
        return final, StreamProperties(single=True)

    if isinstance(node, plan.DistinctNode):
        source, props = _visit(node.source)
        keys = tuple(s.name for s in node.output_symbols)
        if props.single or props.partitioned_on_subset(set(keys)):
            return node.replace_sources([source]), props
        partial = plan.DistinctNode(source)
        shuffled = _remote(
            partial, plan.ExchangeKind.REPARTITION, keys=node.output_symbols
        )
        final = plan.DistinctNode(shuffled)
        return final, StreamProperties(hash_keys=keys)

    if isinstance(node, plan.WindowNode):
        source, props = _visit(node.source)
        if node.partition_by:
            keys = tuple(s.name for s in node.partition_by)
            if not (props.single or props.partitioned_on_subset(set(keys))):
                source = _remote(
                    source, plan.ExchangeKind.REPARTITION, keys=node.partition_by
                )
                props = StreamProperties(hash_keys=keys)
        else:
            if not props.single:
                source = _remote(source, plan.ExchangeKind.GATHER)
                props = StreamProperties(single=True)
        return node.replace_sources([source]), props

    if isinstance(node, plan.UnionNode):
        visited = [_visit(source) for source in node.sources_]
        if all(props.single for _, props in visited):
            return (
                node.replace_sources([source for source, _ in visited]),
                StreamProperties(single=True),
            )
        # Mixed distributions: a single-stream branch (e.g. a gathered
        # global aggregation) must be redistributed, otherwise only one
        # task of the consuming fragment would receive its rows while the
        # others run the branch's operators over empty input.
        new_sources = []
        for source, props in visited:
            if props.single:
                source = _remote(source, plan.ExchangeKind.ROUND_ROBIN)
            new_sources.append(source)
        return node.replace_sources(new_sources), StreamProperties()

    if isinstance(node, plan.SetOperationNode):
        new_sources = []
        for i, source in enumerate(node.sources_):
            new_source, source_props = _visit(source)
            if i == 0:
                # INTERSECT/EXCEPT dedupe the left stream task-locally;
                # a distributed left side must be hash-repartitioned on
                # the compared columns or equal rows in different tasks
                # would each survive.
                keys = tuple(node.symbol_mapping[0][out] for out in node.outputs)
                key_names = {s.name for s in keys}
                if not (
                    source_props.single
                    or source_props.partitioned_on_subset(key_names)
                ):
                    new_source = _remote(
                        new_source, plan.ExchangeKind.REPARTITION, keys=list(keys)
                    )
            elif not source_props.single:
                new_source = _remote(new_source, plan.ExchangeKind.REPLICATE)
            new_sources.append(new_source)
        return node.replace_sources(new_sources), StreamProperties()

    if isinstance(node, plan.EnforceSingleRowNode):
        source, props = _visit(node.source)
        if not props.single:
            source = _remote(source, plan.ExchangeKind.GATHER)
        return node.replace_sources([source]), StreamProperties(single=True)

    if isinstance(node, plan.TableWriterNode):
        source, props = _visit(node.source)
        if not props.single:
            # Writers run in their own stage behind a round-robin exchange
            # so the engine can scale write concurrency adaptively
            # (Sec. IV-E3): the coordinator starts with few active writer
            # partitions and adds more when the producing stage's buffers
            # exceed the utilization threshold.
            source = _remote(source, plan.ExchangeKind.ROUND_ROBIN)
        return node.replace_sources([source]), StreamProperties()

    if isinstance(node, plan.TableFinishNode):
        source, props = _visit(node.source)
        if not props.single:
            source = _remote(source, plan.ExchangeKind.GATHER)
        return node.replace_sources([source]), StreamProperties(single=True)

    # Default: recurse, no distribution knowledge.
    new_sources = []
    for source in node.sources:
        new_source, _ = _visit(source)
        new_sources.append(new_source)
    return node.replace_sources(new_sources), StreamProperties()


def _rename_keys(project: plan.ProjectNode, keys):
    if keys is None:
        return None
    renames = {}
    for out, expr in project.assignments.items():
        if isinstance(expr, ir.Variable):
            renames.setdefault(expr.name, out.name)
    out_keys = []
    for key in keys:
        renamed = renames.get(key)
        if renamed is None:
            return None
        out_keys.append(renamed)
    return tuple(out_keys)


def _visit_aggregation(node: plan.AggregationNode):
    source, props = _visit(node.source)
    keys = {s.name for s in node.group_by}
    if node.step is not plan.AggregationStep.SINGLE:
        return node.replace_sources([source]), props
    if props.single or (node.group_by and props.partitioned_on_subset(keys)):
        # No shuffle needed: complete groups are already co-located.
        return node.replace_sources([source]), props
    if any(call.distinct for call in node.aggregations.values()):
        # DISTINCT aggregates cannot ship partial states; repartition the
        # raw input and aggregate in a single step.
        if node.group_by:
            shuffled = _remote(
                source, plan.ExchangeKind.REPARTITION, keys=node.group_by
            )
            out_props = StreamProperties(
                hash_keys=tuple(s.name for s in node.group_by)
            )
        else:
            shuffled = _remote(source, plan.ExchangeKind.GATHER)
            out_props = StreamProperties(single=True)
        return node.replace_sources([shuffled]), out_props
    # Split into partial -> shuffle -> final (paper Fig. 3).
    partial = plan.AggregationNode(
        source,
        node.group_by,
        {
            Symbol(symbol.name, VARBINARY): call
            for symbol, call in node.aggregations.items()
        },
        plan.AggregationStep.PARTIAL,
    )
    if node.group_by:
        shuffled = _remote(
            partial, plan.ExchangeKind.REPARTITION, keys=node.group_by
        )
        out_props = StreamProperties(hash_keys=tuple(s.name for s in node.group_by))
    else:
        shuffled = _remote(partial, plan.ExchangeKind.GATHER)
        out_props = StreamProperties(single=True)
    final_aggs = {}
    for symbol, call in node.aggregations.items():
        final_aggs[symbol] = plan.AggregationCall(
            call.function_name,
            call.function,
            (ir.Variable(VARBINARY, symbol.name),),
            False,
            None,
        )
    final = plan.AggregationNode(
        shuffled, node.group_by, final_aggs, plan.AggregationStep.FINAL
    )
    return final, out_props


def _visit_join(node: plan.JoinNode):
    left, left_props = _visit(node.left)
    right, right_props = _visit(node.right)
    distribution = node.distribution
    if distribution is plan.JoinDistribution.AUTOMATIC:
        distribution = plan.JoinDistribution.PARTITIONED
    # RIGHT/FULL joins emit unmatched build rows with probe columns
    # NULL-padded on whatever partition held the build row, so the output
    # is NOT value-partitioned on the probe keys: equal (NULL) key values
    # can surface on several partitions at once. Claiming hash_keys here
    # would let a downstream GROUP BY skip its shuffle and emit duplicate
    # NULL-key groups.
    pads_probe = node.join_type in (plan.JoinType.RIGHT, plan.JoinType.FULL)

    def probe_props(props: StreamProperties) -> StreamProperties:
        if pads_probe and not props.single:
            return StreamProperties()
        return props
    if node.join_type is plan.JoinType.CROSS or not node.criteria:
        if pads_probe:
            # RIGHT/FULL without equi criteria: there are no keys to
            # partition on, and a replicated build would flush its
            # unmatched rows once per task. Run the join single-task.
            if not left_props.single:
                left = _remote(left, plan.ExchangeKind.GATHER)
            if not right_props.single:
                right = _remote(right, plan.ExchangeKind.GATHER)
            return node.replace_sources([left, right]), StreamProperties(single=True)
        # The build side must reach every task of the probe's stage. This
        # includes a single-stream build (e.g. a scalar subquery's global
        # aggregate): its GATHER output lands on partition 0 only, so
        # without an explicit REPLICATE the other probe tasks would join
        # against an empty build side and silently drop rows.
        if not left_props.single or not right_props.single:
            right = _remote(right, plan.ExchangeKind.REPLICATE)
        return (
            node.replace_sources([left, right]),
            probe_props(
                StreamProperties(
                    left_props.single, left_props.hash_keys, left_props.connector
                )
            ),
        )
    if distribution is plan.JoinDistribution.COLOCATED:
        # Verified compatible by the optimizer: no exchanges at all.
        return node.replace_sources([left, right]), probe_props(left_props)
    if distribution is plan.JoinDistribution.REPLICATED:
        if not left_props.single or not right_props.single:
            right = _remote(right, plan.ExchangeKind.REPLICATE)
        return node.replace_sources([left, right]), probe_props(left_props)
    # PARTITIONED: both sides hashed on the join keys unless already so.
    left_keys = tuple(c.left.name for c in node.criteria)
    right_keys = tuple(c.right.name for c in node.criteria)
    if left_props.single and right_props.single:
        return node.replace_sources([left, right]), left_props
    if not left_props.partitioned_exactly_on(left_keys):
        left = _remote(
            left,
            plan.ExchangeKind.REPARTITION,
            keys=[c.left for c in node.criteria],
        )
    if not right_props.partitioned_exactly_on(right_keys):
        right = _remote(
            right,
            plan.ExchangeKind.REPARTITION,
            keys=[c.right for c in node.criteria],
        )
    return (
        node.replace_sources([left, right]),
        probe_props(StreamProperties(hash_keys=left_keys)),
    )


# ---------------------------------------------------------------------------
# Fragment cutting
# ---------------------------------------------------------------------------


@dataclass
class PlanFragment:
    """One stage of the distributed plan."""

    id: int
    root: plan.PlanNode
    # How this fragment's output is distributed to the consuming stage.
    output_kind: plan.ExchangeKind
    output_keys: list[Symbol] = field(default_factory=list)
    output_ordering: list[plan.Ordering] = field(default_factory=list)
    # "source" fragments contain table scans and are placed by split
    # affinity; "hash"/"single" fragments are placed freely (Sec. IV-D2).
    partitioning: str = "single"
    remote_source_ids: list[int] = field(default_factory=list)

    @property
    def has_table_scan(self) -> bool:
        return any(
            isinstance(n, plan.TableScanNode) for n in plan.walk_plan(self.root)
        )


@dataclass
class FragmentedPlan:
    root_fragment: PlanFragment
    fragments: dict[int, PlanFragment]
    column_names: list[str]
    column_types: list


def fragment_plan(logical: Plan) -> FragmentedPlan:
    """Insert exchanges and cut into stages."""
    with_exchanges = add_exchanges(logical.root)
    fragments: dict[int, PlanFragment] = {}
    counter = [0]

    def cut(node: plan.PlanNode) -> plan.PlanNode:
        new_sources = [cut(s) for s in node.sources]
        node = node.replace_sources(new_sources)
        if isinstance(node, plan.ExchangeNode) and node.scope is plan.ExchangeScope.REMOTE:
            fragment_id = counter[0]
            counter[0] += 1
            child = node.source
            fragment = PlanFragment(
                id=fragment_id,
                root=child,
                output_kind=node.kind,
                output_keys=list(node.partition_keys),
                output_ordering=list(node.ordering),
            )
            fragment.partitioning = _fragment_partitioning(child)
            fragment.remote_source_ids = [
                fid
                for n in plan.walk_plan(child)
                if isinstance(n, plan.RemoteSourceNode)
                for fid in n.fragment_ids
            ]
            fragments[fragment_id] = fragment
            return plan.RemoteSourceNode(
                [fragment_id], list(child.output_symbols), list(node.ordering)
            )
        return node

    root_node = cut(with_exchanges)
    root_fragment = PlanFragment(
        id=counter[0],
        root=root_node,
        output_kind=plan.ExchangeKind.GATHER,
        partitioning=_fragment_partitioning(root_node),
    )
    root_fragment.remote_source_ids = [
        fid
        for n in plan.walk_plan(root_node)
        if isinstance(n, plan.RemoteSourceNode)
        for fid in n.fragment_ids
    ]
    fragments[root_fragment.id] = root_fragment
    # A fragment without scans is hash-distributed if any of its inputs is
    # a repartitioned stream, single otherwise (fed by gathers only).
    for fragment in fragments.values():
        if fragment.partitioning == "source":
            continue
        input_kinds = {
            fragments[fid].output_kind for fid in fragment.remote_source_ids
        }
        distributed_inputs = {
            plan.ExchangeKind.REPARTITION,
            plan.ExchangeKind.ROUND_ROBIN,
        }
        fragment.partitioning = (
            "hash" if input_kinds & distributed_inputs else "single"
        )
    return FragmentedPlan(
        root_fragment, fragments, logical.column_names, logical.column_types
    )


def _fragment_partitioning(node: plan.PlanNode) -> str:
    has_scan = any(isinstance(n, plan.TableScanNode) for n in plan.walk_plan(node))
    return "source" if has_scan else "single"


def format_fragmented_plan(
    fragmented: FragmentedPlan,
    annotations: dict[int, str] | None = None,
) -> str:
    """Render every fragment; ``annotations`` adds a per-fragment note
    to the header line (e.g. the fused-pipeline summary in EXPLAIN)."""
    lines = []
    order = sorted(fragmented.fragments)
    for fragment_id in reversed(order):
        fragment = fragmented.fragments[fragment_id]
        keys = ", ".join(s.name for s in fragment.output_keys)
        note = (annotations or {}).get(fragment_id)
        lines.append(
            f"Fragment {fragment.id} [{fragment.partitioning}] "
            f"output={fragment.output_kind.value}"
            + (f" keys=[{keys}]" if keys else "")
            + (f" fused=[{note}]" if note else "")
        )
        lines.append(plan.format_plan(fragment.root, indent=1))
        lines.append("")
    return "\n".join(lines)
