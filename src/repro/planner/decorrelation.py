"""Decorrelation of subquery plans (paper Sec. IV-C).

The planner plans a correlated subquery with its outer references
captured as free variables; this module rewrites the resulting plan so
it no longer references them:

- equality conjuncts of the form ``outer_symbol = <inner expression>``
  are lifted out of inner filters and become semi-join keys;
- any other use of an outer reference is rejected as unsupported.

The supported class (equality-correlated EXISTS / IN under
filters/projections, no correlation through aggregations or limits)
covers the overwhelmingly common patterns; everything else fails with a
clear error instead of wrong results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotSupportedError
from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.symbols import Symbol, SymbolAllocator
from repro.types import BOOLEAN


@dataclass
class DecorrelationResult:
    node: plan.PlanNode
    # (outer-side key expression — references only outer symbols — and the
    # inner symbol carrying the matching value). The caller materializes
    # the outer expressions onto the probe side.
    key_pairs: list[tuple[ir.RowExpression, Symbol]]


def decorrelate(
    node: plan.PlanNode,
    outer_symbols: dict[str, Symbol],
    symbols: SymbolAllocator,
) -> DecorrelationResult:
    """Remove references to ``outer_symbols`` from the subquery plan."""
    outer_names = set(outer_symbols)
    pairs: list[tuple[Symbol, ir.RowExpression]] = []

    def strip_filters(current: plan.PlanNode) -> plan.PlanNode:
        if isinstance(current, plan.FilterNode):
            new_source = strip_filters(current.source)
            kept: list[ir.RowExpression] = []
            for conjunct in ir.extract_conjuncts(current.predicate):
                extracted = _correlated_equality(conjunct, outer_names, outer_symbols)
                if extracted is not None:
                    pairs.append(extracted)
                else:
                    kept.append(conjunct)
            residual = ir.combine_conjuncts(kept)
            if residual is None:
                return new_source
            return plan.FilterNode(new_source, residual)
        if isinstance(current, plan.ProjectNode):
            new_source = strip_filters(current.source)
            # Correlation keys extracted below this projection reference
            # symbols this projection may prune (e.g. the subquery's own
            # SELECT list drops the join column of `WHERE u.a = t.a`).
            # Thread them through so the final key projection can still
            # see them; the optimizer would otherwise mask this by
            # inlining projections, leaving the unoptimized plan broken.
            needed: set[str] = set()
            for _, inner_expr in pairs:
                needed |= ir.referenced_variables(inner_expr)
            assignments = dict(current.assignments)
            produced = {s.name for s in assignments}
            available = {s.name: s for s in new_source.output_symbols}
            added = False
            for name in sorted(needed - produced):
                symbol = available.get(name)
                if symbol is not None:
                    assignments[symbol] = ir.Variable(symbol.type, symbol.name)
                    added = True
            if new_source is not current.source or added:
                return plan.ProjectNode(new_source, assignments)
            return current
        # Correlation below aggregations / limits / joins is out of scope.
        return current

    stripped = strip_filters(node)

    # Any remaining outer reference anywhere in the plan is unsupported.
    for plan_node in plan.walk_plan(stripped):
        for expression in _node_expressions(plan_node):
            remaining = ir.referenced_variables(expression) & outer_names
            if remaining:
                raise NotSupportedError(
                    "Correlated subquery is too complex to decorrelate "
                    f"(outer reference {sorted(remaining)[0]!r} is not a "
                    "top-level equality predicate)"
                )

    if not pairs:
        raise NotSupportedError(
            "Correlated subquery has no equality correlation to decorrelate"
        )

    # Materialize inner-side key expressions as symbols appended to the
    # subquery output.
    assignments: dict[Symbol, ir.RowExpression] = {
        s: ir.Variable(s.type, s.name) for s in stripped.output_symbols
    }
    key_pairs: list[tuple[ir.RowExpression, Symbol]] = []
    for outer_expr, inner_expr in pairs:
        if isinstance(inner_expr, ir.Variable):
            inner_symbol = inner_expr.to_symbol()
            assignments.setdefault(inner_symbol, inner_expr)
        else:
            inner_symbol = symbols.new_symbol("corr_key", inner_expr.type)
            assignments[inner_symbol] = inner_expr
        key_pairs.append((outer_expr, inner_symbol))
    projected = plan.ProjectNode(stripped, assignments)
    return DecorrelationResult(projected, key_pairs)


@dataclass
class ScalarDecorrelationResult:
    """A correlated scalar aggregate rewritten as a grouped plan.

    ``node`` computes one row per distinct correlation key:
    the key symbols, a constant-TRUE ``present`` marker, and ``value``
    (the subquery's select expression). The caller LEFT-joins the outer
    side against it; an outer row whose key has no group reads NULL for
    ``present`` and must substitute ``empty_value`` (the value the
    original subquery yields on empty input — e.g. 0 for count(*)).
    """

    node: plan.PlanNode
    key_pairs: list[tuple[ir.RowExpression, Symbol]]
    present: Symbol
    value: Symbol
    # Python-level constant the subquery yields on empty input; None
    # means plain NULL (in which case no substitution is needed).
    empty_value: object


def decorrelate_scalar(
    node: plan.PlanNode,
    output: Symbol,
    outer_symbols: dict[str, Symbol],
    symbols: SymbolAllocator,
) -> ScalarDecorrelationResult:
    """Decorrelate ``(SELECT agg(...) FROM ... WHERE outer = inner)``
    into one aggregation grouped by the correlation keys.

    The supported shape is Project/Filter layers over a single *global*
    aggregation whose input carries the correlated equality predicates;
    anything else raises :class:`NotSupportedError`. The layers above
    the aggregation are replayed on top of the grouped aggregation, and
    also folded over the aggregation's empty-input row to compute
    ``empty_value`` (a scalar subquery with no matching rows still
    aggregates — ``count(*)`` yields 0, not NULL — but a LEFT join
    produces bare NULLs for groupless rows, so the caller must patch
    the difference)."""
    outer_names = set(outer_symbols)
    # Peel Project/Filter layers (top to bottom) down to the aggregation.
    layers: list[tuple[str, object]] = []
    current = node
    while True:
        if isinstance(current, plan.ProjectNode):
            layers.append(("project", current.assignments))
            current = current.source
        elif isinstance(current, plan.FilterNode):
            layers.append(("filter", current.predicate))
            current = current.source
        else:
            break
    if not (
        isinstance(current, plan.AggregationNode)
        and current.is_global
        and current.step == plan.AggregationStep.SINGLE
    ):
        raise NotSupportedError(
            "Correlated scalar subquery is not a single aggregation "
            "over the correlated input"
        )
    agg = current
    for kind, payload in layers:
        expressions = (
            payload.values() if kind == "project" else [payload]
        )
        for expression in expressions:
            if ir.referenced_variables(expression) & outer_names:
                raise NotSupportedError(
                    "Correlated scalar subquery references the outer "
                    "query above its aggregation"
                )
    for call in agg.aggregations.values():
        for expression in list(call.arguments) + (
            [call.filter] if call.filter is not None else []
        ):
            if ir.referenced_variables(expression) & outer_names:
                raise NotSupportedError(
                    "Correlated scalar subquery uses an outer reference "
                    "inside an aggregate call"
                )

    # Below the aggregation the existing machinery applies unchanged:
    # strip the correlated equalities and materialize the inner keys.
    inner = decorrelate(agg.source, outer_symbols, symbols)
    key_symbols = [inner_symbol for _, inner_symbol in inner.key_pairs]
    grouped = plan.AggregationNode(inner.node, key_symbols, agg.aggregations)

    # Fold the peeled layers over the aggregation's empty-input row to
    # learn what the subquery yields when an outer row has no matches.
    from repro.exec import interpreter

    bindings: dict[str, object] = {}
    for symbol, call in agg.aggregations.items():
        bindings[symbol.name] = call.function.output(call.function.create())
    empty_value: object = None
    empty_is_row = True
    try:
        for kind, payload in reversed(layers):
            if kind == "filter":
                if interpreter.evaluate(payload, bindings) is not True:
                    # HAVING rejects the empty-input row: the subquery
                    # returns no row, i.e. plain NULL — exactly what
                    # the LEFT join produces. Nothing to patch.
                    empty_is_row = False
                    break
            else:
                bindings = {
                    symbol.name: interpreter.evaluate(expression, bindings)
                    for symbol, expression in payload.items()
                }
        if empty_is_row:
            if output.name not in bindings:
                raise NotSupportedError(
                    "Correlated scalar subquery output is not produced "
                    "by its own plan"
                )
            empty_value = bindings[output.name]
    except NotSupportedError:
        raise
    except Exception as error:
        raise NotSupportedError(
            "Cannot precompute the empty-input value of a correlated "
            f"scalar subquery: {error}"
        ) from error

    # Replay the layers on top of the grouped aggregation, threading the
    # key symbols (and filters) through so the caller can join on them.
    rebuilt: plan.PlanNode = grouped
    for kind, payload in reversed(layers):
        if kind == "filter":
            rebuilt = plan.FilterNode(rebuilt, payload)
        else:
            assignments = dict(payload)
            for key in key_symbols:
                assignments.setdefault(key, ir.Variable(key.type, key.name))
            rebuilt = plan.ProjectNode(rebuilt, assignments)
    present = symbols.new_symbol("scalar_present", BOOLEAN)
    final_assignments: dict[Symbol, ir.RowExpression] = {
        key: ir.Variable(key.type, key.name) for key in key_symbols
    }
    final_assignments[present] = ir.Constant(BOOLEAN, True)
    final_assignments[output] = ir.Variable(output.type, output.name)
    rebuilt = plan.ProjectNode(rebuilt, final_assignments)
    return ScalarDecorrelationResult(
        node=rebuilt,
        key_pairs=inner.key_pairs,
        present=present,
        value=output,
        empty_value=empty_value,
    )


def _correlated_equality(
    conjunct: ir.RowExpression,
    outer_names: set[str],
    outer_symbols: dict[str, Symbol],
):
    """Match ``<outer expression> = <inner expression>`` (either side):
    one side must reference only outer symbols (at least one), the other
    must reference none. Returns (outer_expr, inner_expr) or None."""
    if not (
        isinstance(conjunct, ir.SpecialForm)
        and conjunct.form == ir.COMPARISON
        and conjunct.form_data == "="
    ):
        return None
    left, right = conjunct.arguments
    for outer_side, inner_side in ((left, right), (right, left)):
        outer_refs = ir.referenced_variables(outer_side)
        if (
            outer_refs
            and outer_refs <= outer_names
            and not (ir.referenced_variables(inner_side) & outer_names)
        ):
            return outer_side, inner_side
    return None


def _node_expressions(node: plan.PlanNode):
    if isinstance(node, plan.FilterNode):
        yield node.predicate
    elif isinstance(node, plan.ProjectNode):
        yield from node.assignments.values()
    elif isinstance(node, plan.JoinNode):
        if node.filter is not None:
            yield node.filter
    elif isinstance(node, plan.AggregationNode):
        for call in node.aggregations.values():
            yield from call.arguments
            if call.filter is not None:
                yield call.filter
    elif isinstance(node, plan.ValuesNode):
        for row in node.rows:
            yield from row
