"""INTERSECT/EXCEPT -> semi-join short-circuit (QueryTorque family SO:
"replace full materialization with EXISTS / targeted semi-joins").

``SetOperationNode`` materializes the full filtering side as whole-row
tuples and streams the left side through it on a single comparison
shape. Rewriting to a *null-aware* semi join keeps the same set
semantics (distinct output, NULL compares equal to NULL) while buying
everything the join infrastructure already has: build-side dynamic
filters pruning the probe scan (INTERSECT keeps only matching rows, so
the ``Filter(match)`` polarity qualifies), fused probe pipelines, and a
distinct-keys-only build.

    L INTERSECT R   =>  Distinct(Project(Filter[match]   (SemiJoin(L, R))))
    L EXCEPT R      =>  Distinct(Project(Filter[NOT match](SemiJoin(L, R))))

Cost guard: the filtering side must be estimated to fit
``setop_semijoin_max_build_rows`` (a non-positive limit is
conservative: unknown estimates skip too).
"""

from __future__ import annotations

from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.rules.engine import RewriteRule, register
from repro.types import BOOLEAN


class SetOpSemiJoin(RewriteRule):
    name = "setop_semijoin"
    family = "SO"
    knob = "rule_setop_semijoin"
    description = (
        "INTERSECT/EXCEPT -> null-aware semi-join + filter + distinct "
        "(enables dynamic filters and fused probe pipelines)"
    )
    example_sql = "SELECT k FROM t0 INTERSECT SELECT k FROM t1"

    def match(self, node, context):
        if isinstance(node, plan.SetOperationNode) and len(node.sources_) == 2:
            return node
        return None

    def cost_guard(self, node, context) -> bool:
        limit = context.config.setop_semijoin_max_build_rows
        build = context.stats.estimate(node.sources_[1])
        if limit <= 0:
            # Conservative mode: only a *proven* small build side fires.
            return build.row_count is not None and build.row_count <= limit
        return build.row_count is None or build.row_count <= limit

    def rewrite(self, node, context) -> plan.PlanNode:
        left, right = node.sources_
        left_map, right_map = node.symbol_mapping
        outputs = list(node.outputs)
        # Rename the left side onto the set operation's output symbols so
        # the rewritten subtree exports the same columns as the original.
        left_proj = plan.ProjectNode(
            left,
            {
                out: ir.Variable(left_map[out].type, left_map[out].name)
                for out in outputs
            },
        )
        match_symbol = context.symbols.new_symbol("setop_match", BOOLEAN)
        semi = plan.SemiJoinNode(
            left_proj,
            right,
            source_keys=outputs,
            filtering_keys=[right_map[out] for out in outputs],
            output=match_symbol,
            null_aware=True,
        )
        match_var = ir.Variable(BOOLEAN, match_symbol.name)
        if node.kind == "INTERSECT":
            predicate: ir.RowExpression = match_var
        else:  # EXCEPT
            predicate = ir.SpecialForm(BOOLEAN, ir.NOT, (match_var,))
        filtered = plan.FilterNode(semi, predicate)
        dropped = plan.ProjectNode(
            filtered, {out: ir.Variable(out.type, out.name) for out in outputs}
        )
        return plan.DistinctNode(dropped)


register(SetOpSemiJoin())
