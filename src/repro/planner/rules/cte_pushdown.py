"""Predicate pushdown across WITH/CTE boundaries (QueryTorque family
SR, and the CROSS_CTE_PREDICATE_BLINDNESS anti-pattern: "the optimizer
cannot push predicates backward from the outer query into CTE
definitions").

Our planner inlines every CTE reference, so the "CTE boundary" appears
in the plan as the operator the inlined body ends with. The classic
pushdown rule (repro.optimizer.rules.pushdown) already crosses
projections, joins, aggregations, and unions; this rule adds the
boundaries it stops at — exactly the shapes WITH bodies produce:

- ``WindowNode``: conjuncts over the partition-by symbols only hold
  identically within a partition, so they commute with the window
  computation and push below it;
- ``DistinctNode``: distinct preserves columns, everything pushes;
- ``SetOperationNode`` (INTERSECT/EXCEPT): rows compare on *all*
  output columns, so a predicate can be applied to both sides and the
  outer filter dropped.

Once a conjunct crosses the boundary, the classic pushdown keeps
carrying it toward the table scans (and ultimately into connector
TupleDomains) on the next fixed-point pass.

Cost guard: skip when the predicate is estimated to keep more than
``cte_pushdown_max_selectivity`` of the rows — pushing a
non-filtering predicate below the boundary only moves work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.rules.engine import RewriteRule, register


@dataclass
class _Match:
    filter_node: plan.FilterNode
    boundary: plan.PlanNode
    pushable: list[ir.RowExpression]
    remaining: list[ir.RowExpression]


class CtePushdown(RewriteRule):
    name = "cte_pushdown"
    family = "SR"
    knob = "rule_cte_pushdown"
    description = (
        "push predicates below the window/distinct/set-operation "
        "boundaries inlined WITH bodies end with"
    )
    example_sql = (
        "WITH w AS (SELECT k, sum(n) OVER (PARTITION BY k) AS t FROM t0) "
        "SELECT * FROM w WHERE k = 1"
    )

    def match(self, node, context):
        if not isinstance(node, plan.FilterNode):
            return None
        boundary = node.source
        conjuncts = ir.extract_conjuncts(node.predicate)
        if isinstance(boundary, plan.WindowNode):
            partition_names = {s.name for s in boundary.partition_by}
            pushable = [
                c
                for c in conjuncts
                if ir.referenced_variables(c)
                and ir.referenced_variables(c) <= partition_names
            ]
            if not pushable:
                return None
            remaining = [c for c in conjuncts if c not in pushable]
            return _Match(node, boundary, pushable, remaining)
        if isinstance(boundary, plan.DistinctNode):
            return _Match(node, boundary, conjuncts, [])
        if (
            isinstance(boundary, plan.SetOperationNode)
            and len(boundary.sources_) == 2
        ):
            return _Match(node, boundary, conjuncts, [])
        return None

    def cost_guard(self, match: _Match, context) -> bool:
        predicate = ir.combine_conjuncts(match.pushable)
        source = context.stats.estimate(match.boundary)
        if source.row_count is None or source.row_count <= 0:
            return True
        filtered = context.stats.estimate(
            plan.FilterNode(match.boundary, predicate)
        )
        if filtered.row_count is None:
            return True
        selectivity = filtered.row_count / source.row_count
        return selectivity <= context.config.cte_pushdown_max_selectivity

    def rewrite(self, match: _Match, context) -> plan.PlanNode:
        boundary = match.boundary
        predicate = ir.combine_conjuncts(match.pushable)
        if isinstance(boundary, plan.WindowNode):
            pushed: plan.PlanNode = plan.WindowNode(
                plan.FilterNode(boundary.source, predicate),
                boundary.partition_by,
                boundary.order_by,
                boundary.functions,
                boundary.frame,
            )
        elif isinstance(boundary, plan.DistinctNode):
            pushed = plan.DistinctNode(
                plan.FilterNode(boundary.source, predicate)
            )
        else:
            assert isinstance(boundary, plan.SetOperationNode)
            new_sources = []
            for source, mapping in zip(boundary.sources_, boundary.symbol_mapping):
                side_predicate = ir.replace_variables(
                    predicate,
                    {
                        out.name: ir.Variable(mapping[out].type, mapping[out].name)
                        for out in boundary.outputs
                    },
                )
                new_sources.append(plan.FilterNode(source, side_predicate))
            pushed = boundary.replace_sources(new_sources)
        if match.remaining:
            return plan.FilterNode(pushed, ir.combine_conjuncts(match.remaining))
        return pushed


register(CtePushdown())
