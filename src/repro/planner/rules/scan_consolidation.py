"""Shared-scan consolidation (QueryTorque family SC: "N scans of the
same table collapse into one pass with CASE-routed aggregates").

Queries like TPC-DS q28 compute several scalar aggregates over the same
table under different predicates and cross-join the one-row results:

    SELECT (SELECT avg(x) FROM t WHERE a), (SELECT avg(x) FROM t WHERE b)

Planned naively that is N full passes over ``t``. This rule recognizes
cross-join operands of the shape

    [EnforceSingleRow] -> Project* -> Aggregation(global) -> {Filter|Project}* -> TableScan

groups them by table, and merges each group into ONE scan feeding ONE
global aggregation in which every original aggregate call is routed by
a boolean FILTER channel carrying its branch's predicate:

    Project[branch outputs]
      Aggregation[avg(x) FILTER p_a, avg(x) FILTER p_b]
        Project[x, p_a := a, p_b := b]
          TableScan t

Each branch's predicate and aggregate arguments are inlined through its
projection layers first (deterministic expressions only), so arbitrary
Filter/Project stacks between the aggregation and the scan are
tolerated. The post-aggregation projection layers are replayed on top
of the merged aggregation outputs; because a global aggregation emits
exactly one row, the EnforceSingleRow guards are dropped.

Cost guard: a branch with a selective predicate may already be served
by a pruned layout (Data Layout API); the merged scan must read the
whole table. The guard sums each branch's best ``scan_fraction`` under
its own extractable TupleDomain and skips the merge when separate
pruned scans are estimated cheaper than one full pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.connectors.predicate import TupleDomain
from repro.optimizer.domains import extract_domains
from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.rules.engine import RewriteRule, register
from repro.types import BOOLEAN


@dataclass
class _Branch:
    """One cross-join operand recognized as a single-table scalar
    aggregate, with everything below the aggregation inlined down to
    scan symbols."""

    operand_index: int
    scan: plan.TableScanNode
    # Conjuncts over the scan's symbols routing this branch's rows.
    conjuncts: list[ir.RowExpression]
    # Aggregate output symbol -> call with arguments over scan symbols.
    aggregations: dict[object, plan.AggregationCall] = field(default_factory=dict)
    # Projection layers above the aggregation, top to bottom.
    top_projects: list[dict] = field(default_factory=list)
    # Output symbols the operand exports.
    output_symbols: list = field(default_factory=list)


@dataclass
class _Match:
    join: plan.JoinNode
    operands: list[plan.PlanNode]
    # table key -> branches (every group has >= 2 members).
    groups: dict[tuple, list[_Branch]]


class ConsolidateScans(RewriteRule):
    name = "consolidate_scans"
    family = "SC"
    knob = "rule_consolidate_scans"
    description = (
        "collapse repeated scalar-aggregate scans of one table into a "
        "single pass with FILTER-routed aggregate calls"
    )
    example_sql = (
        "SELECT (SELECT sum(n) FROM t0 WHERE k < 10), "
        "(SELECT sum(n) FROM t0 WHERE k >= 10)"
    )

    def match(self, node, context):
        if not isinstance(node, plan.JoinNode):
            return None
        if node.join_type != plan.JoinType.CROSS or node.criteria or node.filter:
            return None
        # Bottom-up rewriting visits inner cross joins first with their
        # shorter sub-chains; whichever join first sees >= 2 mergeable
        # branches fires, and a merged subtree re-recognizes as a
        # branch if the chain continues above it.
        operands = _flatten_cross(node)
        branches = []
        for index, operand in enumerate(operands):
            branch = _recognize_branch(index, operand)
            if branch is not None:
                branches.append(branch)
        groups: dict[tuple, list[_Branch]] = {}
        for branch in branches:
            key = (
                branch.scan.table.catalog,
                branch.scan.table.name.schema,
                branch.scan.table.name.table,
            )
            groups.setdefault(key, []).append(branch)
        groups = {k: v for k, v in groups.items() if len(v) >= 2}
        if not groups:
            return None
        return _Match(node, operands, groups)

    def cost_guard(self, match: _Match, context) -> bool:
        # Merge only the groups where one full pass beats the sum of
        # the layout-pruned per-branch scans. Guarding mutates the
        # match: groups that lose are dropped.
        kept: dict[tuple, list[_Branch]] = {}
        for key, branch_list in match.groups.items():
            total = sum(
                _branch_scan_fraction(branch, context) for branch in branch_list
            )
            if total >= 1.0:
                kept[key] = branch_list
        match.groups = kept
        return bool(kept)

    def rewrite(self, match: _Match, context) -> plan.PlanNode:
        operands = list(match.operands)
        for branch_list in match.groups.values():
            merged = _merge_branches(branch_list, context)
            operands[branch_list[0].operand_index] = merged
            for branch in branch_list[1:]:
                operands[branch.operand_index] = None
        remaining = [op for op in operands if op is not None]
        result = remaining[0]
        for operand in remaining[1:]:
            result = plan.JoinNode(plan.JoinType.CROSS, result, operand, [])
        return result


def _is_cross(node: plan.PlanNode) -> bool:
    return (
        isinstance(node, plan.JoinNode)
        and node.join_type == plan.JoinType.CROSS
        and not node.criteria
        and not node.filter
    )


def _flatten_cross(node: plan.PlanNode) -> list[plan.PlanNode]:
    if _is_cross(node):
        return _flatten_cross(node.left) + _flatten_cross(node.right)
    return [node]


def _deterministic(expr: ir.RowExpression) -> bool:
    return all(
        not (isinstance(sub, ir.Call) and not sub.function.deterministic)
        for sub in ir.walk_expression(expr)
    )


def _recognize_branch(index: int, operand: plan.PlanNode) -> _Branch | None:
    node = operand
    output_symbols = list(operand.output_symbols)
    if isinstance(node, plan.EnforceSingleRowNode):
        node = node.source
    # Projection layers above the aggregation (top to bottom).
    top_projects: list[dict] = []
    while isinstance(node, plan.ProjectNode):
        if not all(_deterministic(e) for e in node.assignments.values()):
            return None
        top_projects.append(node.assignments)
        node = node.source
    if not isinstance(node, plan.AggregationNode):
        return None
    agg = node
    if not agg.is_global or agg.step != plan.AggregationStep.SINGLE:
        return None
    # Below the aggregation: Filter/Project layers over a bare scan.
    # Walking top-down, ``substitution`` maps the symbols the
    # aggregation sees to expressions over the current layer's input;
    # conjuncts collected at an upper layer are rewritten through every
    # project layer crossed after them, so everything ends up expressed
    # over scan symbols.
    conjuncts: list[ir.RowExpression] = []
    substitution: dict[str, ir.RowExpression] | None = None

    def resolve(expr: ir.RowExpression) -> ir.RowExpression:
        return expr if substitution is None else ir.replace_variables(expr, substitution)

    node = agg.source
    while True:
        if isinstance(node, plan.FilterNode):
            conjuncts.extend(ir.extract_conjuncts(node.predicate))
            node = node.source
        elif isinstance(node, plan.ProjectNode):
            if not all(_deterministic(e) for e in node.assignments.values()):
                return None
            layer = {
                symbol.name: expression
                for symbol, expression in node.assignments.items()
            }
            conjuncts = [ir.replace_variables(c, layer) for c in conjuncts]
            if substitution is None:
                # A projection defines all of its outputs, so this layer
                # covers every aggregation-visible name.
                substitution = dict(layer)
            else:
                substitution = {
                    name: ir.replace_variables(expression, layer)
                    for name, expression in substitution.items()
                }
            node = node.source
        else:
            break
    if not isinstance(node, plan.TableScanNode):
        return None
    scan = node
    if scan.layout is not None or not scan.constraint.is_all() or scan.dynamic_filters:
        return None
    if not all(_deterministic(c) for c in conjuncts):
        return None
    aggregations: dict = {}
    for symbol, call in agg.aggregations.items():
        if call.filter is not None and not isinstance(call.filter, ir.Variable):
            return None
        arguments = tuple(resolve(a) for a in call.arguments)
        filter_expr = resolve(call.filter) if call.filter is not None else None
        if not all(_deterministic(a) for a in arguments):
            return None
        if filter_expr is not None and not _deterministic(filter_expr):
            return None
        aggregations[symbol] = plan.AggregationCall(
            call.function_name, call.function, arguments, call.distinct, filter_expr
        )
    return _Branch(
        operand_index=index,
        scan=scan,
        conjuncts=conjuncts,
        aggregations=aggregations,
        top_projects=top_projects,
        output_symbols=output_symbols,
    )


def _branch_scan_fraction(branch: _Branch, context) -> float:
    """Fraction of the table this branch would read on its own, given
    its predicate and the best matching connector layout (1.0 = full
    scan)."""
    predicate = ir.combine_conjuncts(branch.conjuncts)
    if predicate is None:
        return 1.0
    domain, _residual = extract_domains(predicate)
    symbol_to_column = {s.name: c for s, c in branch.scan.assignments.items()}
    column_domains = {}
    for name, column_domain in domain.domains.items():
        column = symbol_to_column.get(name)
        if column is not None:
            column_domains[column] = column_domain
    if not column_domains:
        return 1.0
    layouts = context.metadata.table_layouts(
        branch.scan.table, TupleDomain(column_domains), list(symbol_to_column.values())
    )
    if not layouts:
        return 1.0
    return min(1.0, min(layout.scan_fraction for layout in layouts))


def _merge_branches(branches: list[_Branch], context) -> plan.PlanNode:
    """Build Project(top) -> Aggregation(routed) -> Project(routes+args)
    -> TableScan over the union of the branches' columns."""
    first = branches[0].scan
    # One output symbol per connector column; branch symbols for the
    # same column are aliased onto the representative via renames.
    column_symbol: dict[str, object] = {}
    assignments: dict = {}
    outputs: list = []
    renames: dict[str, ir.RowExpression] = {}
    for branch in branches:
        for symbol, column in branch.scan.assignments.items():
            representative = column_symbol.get(column)
            if representative is None:
                column_symbol[column] = symbol
                assignments[symbol] = column
                outputs.append(symbol)
            elif representative.name != symbol.name:
                renames[symbol.name] = ir.Variable(
                    representative.type, representative.name
                )
    merged_scan = plan.TableScanNode(first.table, assignments, outputs)

    def remap(expr: ir.RowExpression) -> ir.RowExpression:
        return ir.replace_variables(expr, renames) if renames else expr

    # Pre-aggregation projection: scan columns pass through; each
    # branch gets a routing boolean, and non-variable aggregate
    # arguments/filters get dedicated symbols (the executor requires
    # variable-only arguments and a bare-variable FILTER channel).
    pre_assignments: dict = {
        symbol: ir.Variable(symbol.type, symbol.name) for symbol in outputs
    }

    def materialize(expr: ir.RowExpression, base: str):
        if isinstance(expr, ir.Variable) and expr.name in pre_assignments_names():
            return expr
        symbol = context.symbols.new_symbol(base, expr.type)
        pre_assignments[symbol] = expr
        return ir.Variable(expr.type, symbol.name)

    def pre_assignments_names():
        return {s.name for s in pre_assignments}

    merged_aggregations: dict = {}
    for branch_number, branch in enumerate(branches):
        route = ir.combine_conjuncts([remap(c) for c in branch.conjuncts])
        route_var = None
        if route is not None:
            route_var = materialize(route, f"scan_route_{branch_number}")
        for symbol, call in branch.aggregations.items():
            arguments = tuple(
                materialize(remap(a), f"{call.function_name}_arg")
                for a in call.arguments
            )
            filter_expr = remap(call.filter) if call.filter is not None else None
            if filter_expr is not None and route_var is not None:
                filter_expr = ir.SpecialForm(
                    BOOLEAN, ir.AND, (route_var, filter_expr)
                )
            elif filter_expr is None:
                filter_expr = route_var
            if filter_expr is not None:
                filter_expr = materialize(filter_expr, f"scan_route_{branch_number}")
            merged_aggregations[symbol] = plan.AggregationCall(
                call.function_name, call.function, arguments, call.distinct, filter_expr
            )
    merged_agg = plan.AggregationNode(
        plan.ProjectNode(merged_scan, pre_assignments), [], merged_aggregations
    )
    # Replay each branch's post-aggregation projections on top of the
    # merged aggregation outputs.
    top_assignments: dict = {}
    for branch in branches:
        for symbol in branch.output_symbols:
            expression: ir.RowExpression = ir.Variable(symbol.type, symbol.name)
            for layer in branch.top_projects:
                expression = ir.replace_variables(
                    expression, {s.name: e for s, e in layer.items()}
                )
            top_assignments[symbol] = expression
    return plan.ProjectNode(merged_agg, top_assignments)


register(ConsolidateScans())
