"""Plan-phase decorrelation rules (QueryTorque family SE: "subquery
elimination — rewrite correlated subqueries into joins / grouped
joins").

These two rules run while the planner builds the plan, not in the
optimizer's rewrite loop: an un-decorrelated plan has free outer
variables and is not executable, so there is no valid "before" tree
for a plan-to-plan rewrite (see repro.planner.rules.engine). They are
registered here so the catalog, config knobs, EXPLAIN trace, and the
conformance test treat them like every other rule; the planner
(repro.planner.planner) consults ``enabled()`` and records firings
into the shared :class:`RuleTrace`.

- ``decorrelate_subquery``: correlated EXISTS / IN into multi-key semi
  joins (repro.planner.decorrelation.decorrelate). There is no
  executable fallback, so disabling the knob makes correlated
  EXISTS/IN fail with NotSupportedError rather than silently choosing
  a slower plan.

- ``decorrelate_scalar``: correlated scalar aggregate subqueries into
  ONE aggregation grouped by the correlation keys, LEFT-joined back to
  the outer side (decorrelation.decorrelate_scalar) — the classic
  "grouped join over a shared scan" rewrite (DSB query032 is the
  1499.7x poster child). The fallback — knob off, or the cost guard
  judging the outer side too small to amortize the hash build — keeps
  the same grouped subtree but joins it with a residual equality
  *filter* instead of hash criteria, i.e. a nested-loop apply: same
  results, quadratic probe cost. That fallback is the per-rule
  ablation baseline.
"""

from __future__ import annotations

from repro.planner.rules.engine import RewriteRule, register


class DecorrelateSubquery(RewriteRule):
    name = "decorrelate_subquery"
    family = "SE"
    knob = "rule_decorrelate_subquery"
    phase = "plan"
    description = (
        "correlated EXISTS/IN -> multi-key semi join (no fallback: "
        "disabled means correlated EXISTS/IN are rejected)"
    )
    example_sql = (
        "SELECT k FROM t0 WHERE EXISTS "
        "(SELECT 1 FROM t1 WHERE t1.k = t0.k)"
    )


class DecorrelateScalar(RewriteRule):
    name = "decorrelate_scalar"
    family = "SE"
    knob = "rule_decorrelate_scalar"
    phase = "plan"
    description = (
        "correlated scalar aggregate -> aggregation grouped by the "
        "correlation keys + LEFT equi-join (fallback: nested-loop apply)"
    )
    example_sql = (
        "SELECT k, (SELECT count(m) FROM t1 WHERE t1.k = t0.k) FROM t0"
    )

    def cost_guard(self, match, context) -> bool:
        # ``match`` is the estimated outer-side row count (the planner
        # computes it; None = unknown). A one-row outer side cannot
        # amortize the grouped hash build — the apply join visits the
        # build side once anyway.
        return match is None or match > 1


DECORRELATE_SUBQUERY = register(DecorrelateSubquery())
DECORRELATE_SCALAR = register(DecorrelateScalar())
