"""The rewrite-rule pack (docs/OPTIMIZER.md).

Importing this package registers every rule, in catalog order:

====================  ======  =====================================
rule                  family  rewrite
====================  ======  =====================================
decorrelate_subquery  SE      correlated EXISTS/IN -> semi join
decorrelate_scalar    SE      correlated scalar agg -> grouped join
consolidate_scans     SC      N scans of one table -> one routed pass
setop_semijoin        SO      INTERSECT/EXCEPT -> semi-join
cte_pushdown          SR      predicates through WITH boundaries
====================  ======  =====================================

Families are QueryTorque-taxonomy provenance codes: SE = subquery
elimination, SC = scan consolidation, SO = set operation, SR = scan
reduction.
"""

from repro.planner.rules.engine import (
    REGISTRY,
    RewriteRule,
    RuleTrace,
    register,
    run_rewrite_rules,
)
from repro.planner.rules.subqueries import (  # noqa: F401  (registration)
    DECORRELATE_SCALAR,
    DECORRELATE_SUBQUERY,
)
from repro.planner.rules import scan_consolidation  # noqa: F401
from repro.planner.rules import set_operations  # noqa: F401
from repro.planner.rules import cte_pushdown  # noqa: F401

__all__ = [
    "REGISTRY",
    "RewriteRule",
    "RuleTrace",
    "register",
    "run_rewrite_rules",
    "DECORRELATE_SCALAR",
    "DECORRELATE_SUBQUERY",
]
