"""The rewrite-rule engine (paper Sec. IV-C: "the optimizer is a set of
rules applied until a fixed point").

A :class:`RewriteRule` is *match + apply + cost-guard*:

- ``match(node, context)`` inspects one plan node and returns an opaque
  match object (or ``None``);
- ``cost_guard(match, context)`` consults the stats estimator and
  returns False when the rewrite is expected to lose — the engine then
  records a ``skipped_cost`` entry instead of firing;
- ``rewrite(match, context)`` returns the replacement subtree.

:func:`run_rewrite_rules` iterates the enabled ``optimize``-phase rules
bottom-up over the plan to a fixed point, bounded by a per-query
*rewrite budget* (``OptimizerConfig.rewrite_budget``). Every firing and
every guard skip is recorded in a :class:`RuleTrace`, which the engine
surfaces through EXPLAIN (``rules=[...]``), the plan cache entry, and
the ``optimizer.rule_fired.*`` / ``optimizer.rule_skipped_cost.*``
cluster counters.

Rules with ``phase = "plan"`` (the decorrelation family) cannot run as
plan-to-plan rewrites: an un-decorrelated plan has free variables and
is not executable, and the unoptimized engine configurations execute
the planner's raw output directly. The planner applies them while
building the plan and records them into the same trace; registering
them here keeps the catalog, knobs, EXPLAIN visibility, and the
conformance test uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.planner import nodes as plan


class RewriteRule:
    """Base class; subclasses are registered in REGISTRY (one instance
    per rule)."""

    name: str = ""
    # QueryTorque taxonomy provenance code (SNIPPETS.md): SE = subquery
    # elimination, SC = scan consolidation, SO = set operation,
    # SR = scan reduction.
    family: str = ""
    # OptimizerConfig attribute gating this rule.
    knob: str = ""
    # "optimize" rules run in run_rewrite_rules; "plan" rules are
    # applied by the planner (see module docstring).
    phase: str = "optimize"
    description: str = ""
    # A query (over the conformance-test schema, tables t0(k,n,x,s) /
    # t1(k,m,y,u)) whose EXPLAIN must show the rule firing.
    example_sql: str = ""

    def enabled(self, config) -> bool:
        return bool(getattr(config, self.knob, False))

    def match(self, node: plan.PlanNode, context):
        return None

    def cost_guard(self, match, context) -> bool:
        return True

    def rewrite(self, match, context) -> plan.PlanNode:
        raise NotImplementedError


REGISTRY: list[RewriteRule] = []


def register(rule: RewriteRule) -> RewriteRule:
    REGISTRY.append(rule)
    return rule


@dataclass
class RuleTrace:
    """Per-query record of rewrite-rule activity."""

    fired: list[str] = field(default_factory=list)
    skipped_cost: list[str] = field(default_factory=list)
    budget_exhausted: bool = False
    _skip_keys: set = field(default_factory=set)

    def record_fired(self, name: str) -> None:
        self.fired.append(name)

    def record_skipped(self, name: str, key=None) -> None:
        # Fixed-point iteration re-matches unchanged nodes every pass;
        # dedupe on (rule, node id) so one skipped site counts once.
        if key is not None:
            if key in self._skip_keys:
                return
            self._skip_keys.add(key)
        self.skipped_cost.append(name)

    @staticmethod
    def _counts(names: list[str]) -> dict[str, int]:
        counts: dict[str, int] = {}
        for name in names:
            counts[name] = counts.get(name, 0) + 1
        return counts

    def fired_counts(self) -> dict[str, int]:
        return self._counts(self.fired)

    def skipped_counts(self) -> dict[str, int]:
        return self._counts(self.skipped_cost)

    def summary(self) -> str:
        """The EXPLAIN header line: ``rules=[a, b x2]``, with guard
        skips appended as ``cost_skipped=[...]`` when present."""
        parts = [
            name if count == 1 else f"{name} x{count}"
            for name, count in self.fired_counts().items()
        ]
        line = "rules=[" + ", ".join(parts) + "]"
        skipped = self.skipped_counts()
        if skipped:
            skip_parts = [
                name if count == 1 else f"{name} x{count}"
                for name, count in skipped.items()
            ]
            line += " cost_skipped=[" + ", ".join(skip_parts) + "]"
        if self.budget_exhausted:
            line += " (rewrite budget exhausted)"
        return line


def run_rewrite_rules(
    root: plan.PlanNode, context, rules: list[RewriteRule] | None = None
) -> tuple[plan.PlanNode, bool]:
    """Apply the enabled optimize-phase rules bottom-up to a fixed
    point, within the rewrite budget. Returns (new_root, changed)."""
    config = context.config
    trace: RuleTrace | None = getattr(context, "trace", None)
    if trace is None:
        trace = context.trace = RuleTrace()
    active = [
        rule
        for rule in (REGISTRY if rules is None else rules)
        if rule.phase == "optimize" and rule.enabled(config)
    ]
    if not active:
        return root, False
    changed_any = False
    for _ in range(config.max_optimizer_iterations):
        fired_this_pass = [False]

        def attempt(node: plan.PlanNode):
            if trace.budget_exhausted:
                return None
            for rule in active:
                match = rule.match(node, context)
                if match is None:
                    continue
                if len(trace.fired) >= config.rewrite_budget:
                    trace.budget_exhausted = True
                    return None
                if config.rewrite_cost_guards and not rule.cost_guard(
                    match, context
                ):
                    trace.record_skipped(rule.name, key=(rule.name, node.id))
                    continue
                trace.record_fired(rule.name)
                fired_this_pass[0] = True
                return rule.rewrite(match, context)
            return None

        new_root = plan.rewrite_plan(root, attempt)
        if not fired_this_pass[0]:
            break
        root = new_root
        changed_any = True
        context.invalidate_stats()
        if trace.budget_exhausted:
            break
    return root, changed_any
