"""Memory management (paper Sec. IV-F2): user/system classification,
per-node general/reserved pools, global limits, promotion, revocation."""

from repro.memory.pools import MemoryPool, QueryMemoryTracker, ClusterMemoryManager

__all__ = ["MemoryPool", "QueryMemoryTracker", "ClusterMemoryManager"]
