"""Memory pools and cluster-wide arbitration (paper Sec. IV-F2).

Every node has a *general* pool and a *reserved* pool. Queries reserve
user memory (reasoned about from input data: aggregation hash tables,
join build sides, sort buffers) and system memory (implementation
byproducts: shuffle buffers) separately. Per-query limits:

- per-node user limit and global (cluster-aggregated) user limit;
  exceeding either kills the query;
- when a node's general pool is exhausted, the engine first asks
  revocable operators to spill; if the cluster is not configured to
  spill (Facebook's deployments are not), the single query using the
  most memory cluster-wide is *promoted* to the reserved pool, which is
  sized to fit one maximal query, and all other allocations on the node
  stall until it completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExceededMemoryLimitError


@dataclass
class QueryMemoryTracker:
    """Per-query memory accounting across all nodes."""

    query_id: str
    user_bytes_by_node: dict[str, int] = field(default_factory=dict)
    system_bytes_by_node: dict[str, int] = field(default_factory=dict)
    promoted_to_reserved: bool = False

    @property
    def total_user_bytes(self) -> int:
        return sum(self.user_bytes_by_node.values())

    @property
    def total_bytes(self) -> int:
        return self.total_user_bytes + sum(self.system_bytes_by_node.values())

    def node_user_bytes(self, node: str) -> int:
        return self.user_bytes_by_node.get(node, 0)

    def node_total_bytes(self, node: str) -> int:
        return self.user_bytes_by_node.get(node, 0) + self.system_bytes_by_node.get(node, 0)


class MemoryPool:
    """One node's memory pool, split into general and reserved."""

    def __init__(self, node: str, general_bytes: int, reserved_bytes: int):
        self.node = node
        self.general_capacity = general_bytes
        self.reserved_capacity = reserved_bytes
        self.general_used = 0
        self.reserved_used = 0
        self.peak_used = 0
        # query id -> bytes charged to this node's general pool
        self.general_by_query: dict[str, int] = {}
        self.reserved_query: str | None = None

    @property
    def general_free(self) -> int:
        return self.general_capacity - self.general_used

    def usage_of(self, query_id: str) -> int:
        return self.general_by_query.get(query_id, 0)

    def try_reserve(self, query_id: str, delta: int, reserved: bool = False) -> bool:
        """Attempt to charge ``delta`` bytes; False if it does not fit."""
        if delta <= 0:
            self.free(query_id, -delta, reserved)
            return True
        if reserved:
            # The reserved pool exists to guarantee the promoted query can
            # always make progress and unblock the cluster (Sec. IV-F2);
            # its single occupant is never refused.
            self.reserved_used += delta
            return True
        if self.general_used + delta > self.general_capacity:
            return False
        self.general_used += delta
        self.peak_used = max(self.peak_used, self.general_used + self.reserved_used)
        self.general_by_query[query_id] = self.general_by_query.get(query_id, 0) + delta
        return True

    def free(self, query_id: str, delta: int, reserved: bool = False) -> None:
        if delta <= 0:
            return
        if reserved:
            self.reserved_used = max(0, self.reserved_used - delta)
            return
        self.general_used = max(0, self.general_used - delta)
        current = self.general_by_query.get(query_id, 0)
        remaining = max(0, current - delta)
        if remaining:
            self.general_by_query[query_id] = remaining
        else:
            self.general_by_query.pop(query_id, None)

    def release_query(self, query_id: str) -> None:
        used = self.general_by_query.pop(query_id, 0)
        self.general_used = max(0, self.general_used - used)
        if self.reserved_query == query_id:
            self.reserved_query = None
            self.reserved_used = 0

    def move_to_reserved(self, query_id: str) -> None:
        """Promote a query: its general-pool usage moves to reserved."""
        used = self.general_by_query.pop(query_id, 0)
        self.general_used = max(0, self.general_used - used)
        self.reserved_used += used
        self.reserved_query = query_id


@dataclass
class MemoryLimits:
    per_node_user_bytes: int
    global_user_bytes: int
    per_node_total_bytes: int


class ClusterMemoryManager:
    """Cluster-level arbitration: limits, promotion, kill policy."""

    def __init__(self, limits: MemoryLimits, kill_on_reserved_conflict: bool = False):
        self.limits = limits
        self.kill_on_reserved_conflict = kill_on_reserved_conflict
        self.pools: dict[str, MemoryPool] = {}
        self.trackers: dict[str, QueryMemoryTracker] = {}
        # Only one query cluster-wide may occupy the reserved pools.
        self.reserved_holder: str | None = None
        self.queries_killed_for_memory: list[str] = []
        self.promotions = 0

    def register_node(self, pool: MemoryPool) -> None:
        self.pools[pool.node] = pool

    def tracker(self, query_id: str) -> QueryMemoryTracker:
        tracker = self.trackers.get(query_id)
        if tracker is None:
            tracker = QueryMemoryTracker(query_id)
            self.trackers[query_id] = tracker
        return tracker

    # -- allocation protocol ------------------------------------------------

    def reserve(
        self,
        query_id: str,
        node: str,
        user_delta: int,
        system_delta: int = 0,
        allow_promotion: bool = True,
    ) -> str:
        """Charge memory for a query on a node.

        Returns "ok", "blocked" (general pool exhausted; caller must
        stall the task), or raises ExceededMemoryLimitError when the
        query breaks its own limits.

        Spilling clusters pass ``allow_promotion=False`` on the first
        attempt: Sec. IV-F2 revokes memory from eligible tasks *before*
        resorting to reserved-pool promotion, so an exhausted pool must
        report "blocked" to give the caller a chance to spill.
        """
        tracker = self.tracker(query_id)
        pool = self.pools[node]
        new_node_user = tracker.node_user_bytes(node) + user_delta
        if new_node_user > self.limits.per_node_user_bytes:
            self._kill(query_id)
            raise ExceededMemoryLimitError(
                f"Query {query_id} exceeded per-node user memory limit "
                f"({new_node_user} > {self.limits.per_node_user_bytes})"
            )
        if tracker.total_user_bytes + user_delta > self.limits.global_user_bytes:
            self._kill(query_id)
            raise ExceededMemoryLimitError(
                f"Query {query_id} exceeded global user memory limit"
            )
        delta = user_delta + system_delta
        in_reserved = tracker.promoted_to_reserved
        if not pool.try_reserve(query_id, delta, reserved=in_reserved):
            outcome = self._handle_exhausted(query_id, node, delta, allow_promotion)
            if outcome != "ok":
                return outcome
        tracker.user_bytes_by_node[node] = new_node_user
        tracker.system_bytes_by_node[node] = (
            tracker.system_bytes_by_node.get(node, 0) + system_delta
        )
        return "ok"

    def _handle_exhausted(
        self, query_id: str, node: str, delta: int, allow_promotion: bool = True
    ) -> str:
        """General pool exhausted on ``node`` (paper Sec. IV-F2)."""
        pool = self.pools[node]
        if self.reserved_holder is None:
            if not allow_promotion:
                return "blocked"
            # Promote the query using the most memory on this node to the
            # reserved pool on ALL nodes, freeing general space.
            victim = max(
                pool.general_by_query, key=pool.general_by_query.get, default=None
            )
            if victim is None:
                # Nothing charged on this node yet: the requester itself
                # is the biggest consumer (its first delta overflows the
                # pool on its own).
                victim = query_id
            self.promote_to_reserved(victim)
            if pool.try_reserve(
                query_id, delta, reserved=self.trackers[query_id].promoted_to_reserved
            ):
                return "ok"
            # Still does not fit: stall.
            return "blocked"
        if self.kill_on_reserved_conflict:
            self._kill(query_id)
            raise ExceededMemoryLimitError(
                f"Query {query_id} killed: cluster out of memory and the "
                "reserved pool is occupied"
            )
        # Reserved pool occupied: all other requests on this node stall
        # until the promoted query completes.
        return "blocked"

    def promote_to_reserved(self, query_id: str) -> None:
        self.reserved_holder = query_id
        self.promotions += 1
        tracker = self.tracker(query_id)
        tracker.promoted_to_reserved = True
        for pool in self.pools.values():
            pool.move_to_reserved(query_id)

    def release_query(self, query_id: str) -> None:
        for pool in self.pools.values():
            pool.release_query(query_id)
        if self.reserved_holder == query_id:
            self.reserved_holder = None
        self.trackers.pop(query_id, None)

    def release_node(self, node: str) -> int:
        """A node was declared dead: its reservations no longer back real
        allocations, so release them now rather than at query end — the
        global user-bytes accounting must not count memory on a corpse.
        Returns the number of bytes released."""
        pool = self.pools.get(node)
        if pool is None:
            return 0
        released = pool.general_used + pool.reserved_used
        pool.general_used = 0
        pool.reserved_used = 0
        pool.general_by_query.clear()
        pool.reserved_query = None
        for tracker in self.trackers.values():
            tracker.user_bytes_by_node.pop(node, None)
            tracker.system_bytes_by_node.pop(node, None)
        return released

    def _kill(self, query_id: str) -> None:
        self.queries_killed_for_memory.append(query_id)
        self.release_query(query_id)

    # -- introspection ------------------------------------------------------------

    def cluster_user_bytes(self) -> int:
        return sum(t.total_user_bytes for t in self.trackers.values())

    def node_general_used(self, node: str) -> int:
        return self.pools[node].general_used
