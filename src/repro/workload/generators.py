"""Query generators for the four Table-I use cases.

Every generator is deterministic given its seed and emits
:class:`WorkloadQuery` items: SQL, an inter-arrival gap, and an
optional client bandwidth (slow BI clients, Sec. IV-E2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class WorkloadQuery:
    sql: str
    use_case: str
    # Virtual-ms gap after the previous arrival.
    inter_arrival_ms: float = 0.0
    client_bandwidth_bytes_per_ms: Optional[float] = None
    phased: Optional[bool] = None


class _BaseWorkload:
    name = "base"
    default_catalog = "memory"
    #: Table I row, for documentation and the Table-1 bench.
    table1_row: dict = {}

    def __init__(self, seed: int = 1, mean_inter_arrival_ms: float = 1_000.0):
        self.rng = random.Random(seed)
        self.mean_inter_arrival_ms = mean_inter_arrival_ms

    def make_query(self) -> WorkloadQuery:
        raise NotImplementedError

    def queries(self, count: int) -> list[WorkloadQuery]:
        return [self.make_query() for _ in range(count)]

    def _gap(self) -> float:
        return self.rng.expovariate(1.0 / self.mean_inter_arrival_ms)


class DeveloperAnalyticsWorkload(_BaseWorkload):
    """Developer/Advertiser Analytics (Table I): 50 ms – 5 s, hundreds of
    concurrent queries, sharded MySQL; highly selective single-advertiser
    queries with joins, aggregations, and window functions, generated
    programmatically from a restricted set of shapes."""

    name = "dev_advertiser"
    default_catalog = "shardedsql"
    table1_row = {
        "use_case": "Developer/Advertiser Analytics",
        "query_duration": "50 ms - 5 sec",
        "workload_shape": "Joins, aggregations and window functions",
        "cluster_size": "10s of nodes",
        "concurrency": "100s of queries",
        "connector": "Sharded MySQL",
    }

    def __init__(self, advertisers: int = 500, seed: int = 1,
                 mean_inter_arrival_ms: float = 50.0):
        super().__init__(seed, mean_inter_arrival_ms)
        self.advertisers = advertisers

    def make_query(self) -> WorkloadQuery:
        rng = self.rng
        advertiser = rng.randrange(self.advertisers)
        day_low = 8035 + rng.randrange(300)
        day_high = day_low + rng.choice([7, 14, 30])
        shape = rng.randrange(4)
        if shape == 0:
            sql = (
                f"SELECT day, sum(impressions), sum(spend) FROM ad_metrics "
                f"WHERE advertiser = {advertiser} AND day BETWEEN {day_low} AND {day_high} "
                f"GROUP BY day ORDER BY day"
            )
        elif shape == 1:
            sql = (
                f"SELECT event_type, count(*), sum(spend) FROM ad_metrics "
                f"WHERE advertiser = {advertiser} GROUP BY event_type ORDER BY 2 DESC"
            )
        elif shape == 2:
            sql = (
                f"SELECT c.name, sum(m.impressions) FROM ad_metrics m "
                f"JOIN campaigns c ON m.campaign = c.campaign "
                f"WHERE m.advertiser = {advertiser} GROUP BY c.name ORDER BY 2 DESC LIMIT 10"
            )
        else:
            sql = (
                f"SELECT day, spend, sum(spend) OVER (ORDER BY day) running "
                f"FROM (SELECT day, sum(spend) spend FROM ad_metrics "
                f"WHERE advertiser = {advertiser} GROUP BY day) t ORDER BY day"
            )
        return WorkloadQuery(sql, self.name, self._gap())


class ABTestingWorkload(_BaseWorkload):
    """A/B Testing (Table I): 1 – 25 s, Raptor; every query joins the
    events fact against enrollment/user dimensions (co-located on user
    id) and slices by arbitrary attributes, computed on the fly."""

    name = "ab_testing"
    default_catalog = "raptor"
    table1_row = {
        "use_case": "A/B Testing",
        "query_duration": "1 sec - 25 sec",
        "workload_shape": "Transform, filter and join billions of rows",
        "cluster_size": "100s of nodes",
        "concurrency": "10s of queries",
        "connector": "Raptor",
    }

    def __init__(self, experiments: int = 40, seed: int = 2,
                 mean_inter_arrival_ms: float = 2_000.0):
        super().__init__(seed, mean_inter_arrival_ms)
        self.experiments = experiments

    def make_query(self) -> WorkloadQuery:
        rng = self.rng
        experiment = rng.randrange(self.experiments)
        dimension = rng.choice(["country", "platform", "age / 10"])
        metric = rng.choice(["count(*)", "sum(e.value)", "avg(e.value)",
                             "approx_distinct(e.userid)"])
        event = rng.choice(["click", "conversion", "impression"])
        sql = (
            f"SELECT en.variant, {dimension}, {metric} "
            f"FROM events e "
            f"JOIN enrollments en ON e.userid = en.userid "
            f"JOIN users u ON e.userid = u.userid "
            f"WHERE en.experiment = {experiment} AND e.event_type = '{event}' "
            f"GROUP BY 1, 2 ORDER BY 1, 2"
        )
        return WorkloadQuery(sql, self.name, self._gap())


class InteractiveAnalyticsWorkload(_BaseWorkload):
    """Interactive Analytics (Table I): exploratory one-off queries over
    the warehouse with diverse shapes, LIMIT clauses, occasional skewed
    group-bys (grouping by a low-cardinality column while filtering to a
    small set), and slow BI clients."""

    name = "interactive"
    default_catalog = "hive"
    table1_row = {
        "use_case": "Interactive Analytics",
        "query_duration": "10 sec - 30 min",
        "workload_shape": "Exploratory analysis on ~3TB of data",
        "cluster_size": "100s of nodes",
        "concurrency": "50-100 queries",
        "connector": "Hive/HDFS",
    }

    def __init__(self, seed: int = 3, mean_inter_arrival_ms: float = 4_000.0):
        super().__init__(seed, mean_inter_arrival_ms)

    def make_query(self) -> WorkloadQuery:
        rng = self.rng
        shape = rng.randrange(6)
        if shape == 0:
            sql = (
                "SELECT orderpriority, count(*) FROM orders "
                f"WHERE totalprice > {rng.randrange(1000, 400_000)} "
                "GROUP BY 1 ORDER BY 2 DESC"
            )
        elif shape == 1:
            # Skewed group-by: group by country-like low-cardinality key
            # while filtering to a small set (paper Sec. IV-C4).
            sql = (
                "SELECT n.name, sum(o.totalprice) FROM orders o "
                "JOIN customer c ON o.custkey = c.custkey "
                "JOIN nation n ON c.nationkey = n.nationkey "
                f"WHERE n.regionkey = {rng.randrange(5)} "
                "GROUP BY 1 ORDER BY 2 DESC"
            )
        elif shape == 2:
            sql = (
                "SELECT returnflag, linestatus, sum(quantity), avg(extendedprice) "
                f"FROM lineitem WHERE shipdate <= {8035 + rng.randrange(2400)} "
                "GROUP BY 1, 2 ORDER BY 1, 2"
            )
        elif shape == 3:
            sql = (
                "SELECT custkey, sum(totalprice) FROM orders "
                "GROUP BY custkey ORDER BY 2 DESC LIMIT 20"
            )
        elif shape == 4:
            sql = f"SELECT * FROM orders WHERE custkey = {rng.randrange(1500)} LIMIT 100"
        else:
            sql = (
                "SELECT mktsegment, count(*), max(acctbal) FROM customer "
                "GROUP BY 1 ORDER BY 1 LIMIT 10"
            )
        # Some interactive users sit on slow connections (Sec. IV-E2).
        bandwidth = rng.choice([None, None, None, 50.0])
        return WorkloadQuery(sql, self.name, self._gap(), bandwidth)


class BatchEtlWorkload(_BaseWorkload):
    """Batch ETL (Table I): programmatically scheduled transform /
    filter / join / aggregate jobs writing back to the warehouse; run
    phased for memory efficiency (Sec. IV-D1)."""

    name = "batch_etl"
    default_catalog = "hive"
    table1_row = {
        "use_case": "Batch ETL",
        "query_duration": "20 min - 5 hr",
        "workload_shape": "Transform, filter, and join or aggregate large data",
        "cluster_size": "Up to 1000 nodes",
        "concurrency": "10s of queries",
        "connector": "Hive/HDFS",
    }

    def __init__(self, seed: int = 4, mean_inter_arrival_ms: float = 20_000.0):
        super().__init__(seed, mean_inter_arrival_ms)
        self._counter = 0

    def make_query(self) -> WorkloadQuery:
        rng = self.rng
        self._counter += 1
        target = f"etl_out_{self._counter}_{rng.randrange(10_000)}"
        shape = rng.randrange(3)
        if shape == 0:
            sql = (
                f"CREATE TABLE {target} AS "
                "SELECT o.custkey, o.orderstatus, sum(l.extendedprice * (1 - l.discount)) revenue, "
                "count(*) items FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
                "GROUP BY o.custkey, o.orderstatus"
            )
        elif shape == 1:
            sql = (
                f"CREATE TABLE {target} AS "
                "SELECT orderkey, partkey, suppkey, extendedprice * (1 - discount) net, "
                "quantity FROM lineitem WHERE returnflag <> 'R'"
            )
        else:
            sql = (
                f"CREATE TABLE {target} AS "
                "SELECT c.nationkey, o.orderpriority, count(*) orders, avg(o.totalprice) avg_price "
                "FROM orders o JOIN customer c ON o.custkey = c.custkey "
                "GROUP BY c.nationkey, o.orderpriority"
            )
        return WorkloadQuery(sql, self.name, self._gap(), phased=True)
