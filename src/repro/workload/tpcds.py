"""TPC-DS-analog query set for the Fig. 6 experiment.

The paper runs a low-memory subset of TPC-DS @ 30 TB (queries q09, q18,
q20, q26, q28, q35, q37, q44, q50, q54, q60, q64, q69, q71, q73, q76,
q78, q80, q82) on three connector configurations. Our substrate is the
TPC-H-style schema from :mod:`repro.connectors.tpch`; each query below
is an *analog* keyed by the paper's query id — matched in shape (join
count, aggregation structure, selectivity), not in text — so the
benchmark reproduces the figure's axes and the relative connector
behaviour rather than official TPC-DS semantics.
"""

from __future__ import annotations

# Analogs keyed by the paper's Fig. 6 x-axis labels. Mix: multi-way
# joins (customer/orders/lineitem/nation), selective filters, wide
# aggregations, window functions, and scan-heavy rollups.
TPCDS_ANALOG_QUERIES: dict[str, str] = {
    "q09": """
        SELECT
          sum(CASE WHEN quantity BETWEEN 1 AND 10 THEN extendedprice ELSE 0.0 END),
          sum(CASE WHEN quantity BETWEEN 11 AND 20 THEN extendedprice ELSE 0.0 END),
          sum(CASE WHEN quantity BETWEEN 21 AND 30 THEN extendedprice ELSE 0.0 END),
          sum(CASE WHEN quantity > 30 THEN extendedprice ELSE 0.0 END)
        FROM lineitem
    """,
    "q18": """
        SELECT c.nationkey, o.orderpriority, avg(l.quantity), avg(l.extendedprice)
        FROM lineitem l
        JOIN orders o ON l.orderkey = o.orderkey
        JOIN customer c ON o.custkey = c.custkey
        GROUP BY c.nationkey, o.orderpriority
        ORDER BY 1, 2
    """,
    "q20": """
        SELECT returnflag, sum(extendedprice) revenue,
               sum(extendedprice) / 7.0 weekly
        FROM lineitem
        WHERE shipdate BETWEEN 8400 AND 8700
        GROUP BY returnflag ORDER BY returnflag
    """,
    "q26": """
        SELECT p.brand, avg(l.quantity), avg(l.discount), avg(l.extendedprice)
        FROM lineitem l
        JOIN part p ON l.partkey = p.partkey
        JOIN orders o ON l.orderkey = o.orderkey
        WHERE o.orderpriority = '1-URGENT'
        GROUP BY p.brand ORDER BY p.brand LIMIT 100
    """,
    "q28": """
        SELECT
          (SELECT avg(extendedprice) FROM lineitem WHERE quantity BETWEEN 1 AND 5),
          (SELECT avg(extendedprice) FROM lineitem WHERE quantity BETWEEN 6 AND 10),
          (SELECT avg(extendedprice) FROM lineitem WHERE quantity BETWEEN 11 AND 15),
          (SELECT count(*) FROM lineitem WHERE quantity > 45)
    """,
    "q35": """
        SELECT c.nationkey, c.mktsegment, count(*), avg(c.acctbal)
        FROM customer c
        WHERE c.custkey IN (SELECT custkey FROM orders WHERE totalprice > 100000)
        GROUP BY c.nationkey, c.mktsegment
        ORDER BY 1, 2
    """,
    "q37": """
        SELECT p.brand, p.type, min(p.retailprice)
        FROM part p
        JOIN lineitem l ON p.partkey = l.partkey
        WHERE p.size BETWEEN 10 AND 20
        GROUP BY p.brand, p.type ORDER BY 3 LIMIT 50
    """,
    "q44": """
        SELECT best.partkey, worst.partkey
        FROM (SELECT partkey FROM (
                SELECT partkey, avg(extendedprice) m,
                       rank() OVER (ORDER BY avg(extendedprice) DESC) r
                FROM lineitem GROUP BY partkey) WHERE r <= 5) best
        CROSS JOIN
             (SELECT partkey FROM (
                SELECT partkey, avg(extendedprice) m,
                       rank() OVER (ORDER BY avg(extendedprice) ASC) r
                FROM lineitem GROUP BY partkey) WHERE r <= 5) worst
        LIMIT 25
    """,
    "q50": """
        SELECT s.nationkey,
               sum(CASE WHEN l.shipdate - o.orderdate <= 30 THEN 1 ELSE 0 END),
               sum(CASE WHEN l.shipdate - o.orderdate > 30
                         AND l.shipdate - o.orderdate <= 60 THEN 1 ELSE 0 END),
               sum(CASE WHEN l.shipdate - o.orderdate > 60 THEN 1 ELSE 0 END)
        FROM lineitem l
        JOIN orders o ON l.orderkey = o.orderkey
        JOIN supplier s ON l.suppkey = s.suppkey
        GROUP BY s.nationkey ORDER BY 1
    """,
    "q54": """
        SELECT revenue_band, count(*)
        FROM (
          SELECT o.custkey, CAST(sum(o.totalprice) / 50000 AS bigint) revenue_band
          FROM orders o
          WHERE o.orderdate BETWEEN 8400 AND 9200
          GROUP BY o.custkey
        ) t
        GROUP BY revenue_band ORDER BY revenue_band
    """,
    "q60": """
        SELECT n.name, sum(l.extendedprice * (1 - l.discount)) revenue
        FROM lineitem l
        JOIN supplier s ON l.suppkey = s.suppkey
        JOIN nation n ON s.nationkey = n.nationkey
        WHERE l.shipdate >= 9000
        GROUP BY n.name ORDER BY revenue DESC
    """,
    "q64": """
        SELECT c.nationkey, p.brand, count(*) cnt,
               sum(l.extendedprice * (1 - l.discount)) net
        FROM lineitem l
        JOIN orders o ON l.orderkey = o.orderkey
        JOIN customer c ON o.custkey = c.custkey
        JOIN part p ON l.partkey = p.partkey
        WHERE l.discount BETWEEN 0.02 AND 0.08
        GROUP BY c.nationkey, p.brand
        ORDER BY net DESC LIMIT 100
    """,
    "q69": """
        SELECT c.mktsegment, count(*)
        FROM customer c
        WHERE c.custkey IN (SELECT custkey FROM orders WHERE orderstatus = 'O')
          AND c.custkey NOT IN (SELECT custkey FROM orders WHERE totalprice < 5000)
        GROUP BY c.mktsegment ORDER BY 1
    """,
    "q71": """
        SELECT p.brand, o.orderpriority, sum(l.extendedprice) price
        FROM lineitem l
        JOIN part p ON l.partkey = p.partkey
        JOIN orders o ON l.orderkey = o.orderkey
        WHERE p.size < 25
        GROUP BY p.brand, o.orderpriority
        ORDER BY price DESC LIMIT 100
    """,
    "q73": """
        SELECT c.custkey, count(*) cnt
        FROM orders o
        JOIN customer c ON o.custkey = c.custkey
        WHERE o.orderpriority IN ('1-URGENT', '2-HIGH')
        GROUP BY c.custkey
        HAVING count(*) > 2
        ORDER BY cnt DESC LIMIT 50
    """,
    "q76": """
        SELECT orderstatus, orderpriority, count(*), sum(totalprice)
        FROM orders
        GROUP BY orderstatus, orderpriority
        UNION ALL
        SELECT returnflag, shipmode, count(*), sum(extendedprice)
        FROM lineitem
        GROUP BY returnflag, shipmode
        ORDER BY 1, 2
    """,
    "q78": """
        SELECT o.custkey,
               sum(l.quantity) qty,
               sum(l.extendedprice) price,
               sum(l.extendedprice * (1 - l.discount)) net
        FROM lineitem l
        JOIN orders o ON l.orderkey = o.orderkey
        WHERE l.returnflag <> 'R'
        GROUP BY o.custkey
        ORDER BY qty DESC LIMIT 100
    """,
    "q80": """
        SELECT n.name, sum(l.extendedprice) sales, sum(l.extendedprice * l.tax) tax
        FROM lineitem l
        JOIN supplier s ON l.suppkey = s.suppkey
        JOIN nation n ON s.nationkey = n.nationkey
        JOIN orders o ON l.orderkey = o.orderkey
        WHERE o.orderdate > 8500
        GROUP BY n.name ORDER BY sales DESC
    """,
    "q82": """
        SELECT p.partkey, p.brand, p.retailprice
        FROM part p
        JOIN lineitem l ON p.partkey = l.partkey
        WHERE p.retailprice BETWEEN 1000 AND 1200 AND l.quantity > 30
        GROUP BY p.partkey, p.brand, p.retailprice
        ORDER BY p.partkey LIMIT 100
    """,
}

FIG6_QUERY_IDS = sorted(TPCDS_ANALOG_QUERIES)


# Queries shaped for the rewrite-rule pack (repro.planner.rules), keyed
# by the rule family they exercise. Run by the fig6 rule ablation
# (benchmarks/test_fig6_tpcds.py): each query is measured with its
# family's knob on and off on the hive+stats configuration.
RULE_PACK_QUERIES: dict[str, str] = {
    # SE / decorrelate_scalar — TPC-H Q17-style correlated scalar
    # aggregate. The selective outer filter keeps the naive
    # nested-loop apply (rule off) tractable while the grouped-join
    # rewrite aggregates orders once and hash joins.
    "r_corr": """
        SELECT c.custkey, c.acctbal
        FROM customer c
        WHERE c.nationkey = 5
          AND c.acctbal > (SELECT avg(o.totalprice) FROM orders o
                           WHERE o.custkey = c.custkey)
        ORDER BY c.custkey
    """,
    # SC / consolidate_scans — q28-style scalar-subquery battery: four
    # disjoint aggregates over the same table collapse into one scan
    # with FILTER-routed aggregation.
    "r_scalars": """
        SELECT
          (SELECT sum(extendedprice) FROM lineitem WHERE quantity < 10),
          (SELECT sum(extendedprice) FROM lineitem
           WHERE quantity BETWEEN 10 AND 20),
          (SELECT avg(extendedprice) FROM lineitem
           WHERE quantity BETWEEN 21 AND 35),
          (SELECT count(*) FROM lineitem WHERE quantity > 40)
    """,
    # SO / setop_semijoin — INTERSECT with a big probe side and a small
    # build side; the semi-join form short-circuits via the dynamic
    # filter the build side publishes.
    "r_intersect": """
        SELECT custkey FROM orders
        INTERSECT
        SELECT custkey FROM customer WHERE nationkey = 1
        ORDER BY custkey
    """,
    # SO / setop_semijoin — q87/q38-style EXCEPT over distinct keys.
    "r_except": """
        SELECT custkey FROM customer WHERE nationkey < 3
        EXCEPT
        SELECT custkey FROM orders WHERE totalprice > 100000
        ORDER BY custkey
    """,
    # SR / cte_pushdown — q51-style ranking CTE; the partition-key
    # conjunct (custkey) pushes below the window so ranking runs over
    # one customer band instead of all orders.
    "r_cte_window": """
        WITH ranked AS (
          SELECT custkey, orderdate, totalprice,
                 rank() OVER (PARTITION BY custkey
                              ORDER BY totalprice DESC, orderdate ASC) r
          FROM orders
        )
        SELECT custkey, orderdate, totalprice
        FROM ranked
        WHERE custkey < 50 AND r <= 3
        ORDER BY custkey, r
    """,
}

# Rule-family ablation map: family -> (OptimizerConfig knob, query ids).
RULE_PACK_FAMILIES: dict[str, tuple[str, tuple[str, ...]]] = {
    "decorrelate_scalar": ("rule_decorrelate_scalar", ("r_corr",)),
    "consolidate_scans": ("rule_consolidate_scans", ("r_scalars",)),
    "setop_semijoin": ("rule_setop_semijoin", ("r_intersect", "r_except")),
    "cte_pushdown": ("rule_cte_pushdown", ("r_cte_window",)),
}
