"""Workload runner: replays generated queries against a SimCluster on
the virtual clock and collects latency/utilization traces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import SimCluster
from repro.workload.generators import WorkloadQuery


@dataclass
class QueryRecord:
    sql: str
    use_case: str
    submitted_at: float
    wall_time_ms: float
    queued_time_ms: float
    cpu_ms: float
    state: str


@dataclass
class WorkloadResult:
    records: list[QueryRecord] = field(default_factory=list)

    def successful(self) -> list[QueryRecord]:
        return [r for r in self.records if r.state == "finished"]

    def latencies_ms(self, use_case: str | None = None) -> list[float]:
        return sorted(
            r.wall_time_ms
            for r in self.successful()
            if use_case is None or r.use_case == use_case
        )

    def percentile(self, p: float, use_case: str | None = None) -> float:
        latencies = self.latencies_ms(use_case)
        if not latencies:
            return float("nan")
        index = min(len(latencies) - 1, int(p * len(latencies)))
        return latencies[index]

    def cdf(self, use_case: str | None = None) -> list[tuple[float, float]]:
        """(latency_ms, cumulative fraction) points — Fig. 7's axes."""
        latencies = self.latencies_ms(use_case)
        n = len(latencies)
        return [(latency, (i + 1) / n) for i, latency in enumerate(latencies)]


def run_workload(
    cluster: SimCluster,
    queries: list[WorkloadQuery],
    session_catalogs: dict[str, str] | None = None,
    horizon_ms: float | None = None,
) -> WorkloadResult:
    """Submit queries at their virtual arrival times and run to completion.

    ``session_catalogs`` maps use-case name -> default catalog for its
    queries (each Table-I use case runs against its own connector).
    """
    result = WorkloadResult()
    handles: list[tuple[WorkloadQuery, object]] = []
    arrival = cluster.sim.now

    def submit(query: WorkloadQuery) -> None:
        catalog = (session_catalogs or {}).get(query.use_case)
        try:
            handle = cluster.submit(
                query.sql,
                phased=query.phased,
                client_bandwidth_bytes_per_ms=query.client_bandwidth_bytes_per_ms,
                session_catalog=catalog,
            )
        except Exception as exc:  # admission failure
            result.records.append(
                QueryRecord(query.sql, query.use_case, cluster.sim.now, 0.0, 0.0, 0.0, "rejected")
            )
            return
        handles.append((query, handle))

    for query in queries:
        arrival += query.inter_arrival_ms
        cluster.sim.schedule_at(arrival, lambda q=query: submit(q))
    cluster.run(until_ms=horizon_ms)
    # Let any stragglers finish after the horizon.
    cluster.run()
    for query, handle in handles:
        result.records.append(
            QueryRecord(
                query.sql,
                query.use_case,
                handle.created_at,
                handle.wall_time_ms,
                handle.queued_time_ms,
                handle.total_cpu_ms,
                handle.state,
            )
        )
    return result
