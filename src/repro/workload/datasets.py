"""Dataset builders for the use-case workloads.

Each builder loads deterministic synthetic data (derived from the TPC-H
generator plus use-case-specific tables) into the connector the paper
pairs with the use case in Table I.
"""

from __future__ import annotations

import random

from repro.connectors.hive import HiveConnector
from repro.connectors.raptor import RaptorConnector
from repro.connectors.shardedsql import ShardedSqlConnector
from repro.connectors.tpch import TpchConnector
from repro.exec.page import DEFAULT_PAGE_ROWS, page_from_rows
from repro.types import BIGINT, DATE, DOUBLE, VARCHAR

_COUNTRIES = ["US", "BR", "IN", "GB", "DE", "FR", "JP", "ID", "MX", "NG"]
_EVENTS = ["impression", "click", "conversion", "like", "share", "comment"]
_PLATFORMS = ["ios", "android", "web"]


def _load_table(connector_metadata, catalog, schema, name, columns, rows, properties=None):
    """Create a table through the Metadata/Data-Sink APIs and load rows."""
    from repro.catalog import Column, QualifiedTableName, TableMetadata

    metadata = TableMetadata(
        QualifiedTableName(catalog, schema, name),
        tuple(Column(n, t) for n, t in columns),
        dict(properties or {}),
    )
    handle = connector_metadata.metadata.create_table(metadata)
    insert = connector_metadata.metadata.begin_insert(handle)
    sink = connector_metadata.page_sink(insert)
    types = [t for _, t in columns]
    for start in range(0, len(rows), DEFAULT_PAGE_ROWS):
        sink.append(page_from_rows(types, rows[start : start + DEFAULT_PAGE_ROWS]))
    fragment = sink.finish()
    connector_metadata.metadata.finish_insert(insert, [fragment])
    return handle


def setup_warehouse_dataset(
    hive: HiveConnector, scale_factor: float = 0.01, catalog: str = "hive"
) -> None:
    """The Facebook-warehouse stand-in: TPC-H tables in the Hive
    connector (shared storage), ``orders`` partitioned by status."""
    tpch = TpchConnector(scale_factor)
    for table in ("region", "nation", "customer", "supplier", "part"):
        columns = [(c.name, c.type) for c in tpch.columns(table)]
        _load_table(hive, catalog, "default", table, columns, tpch.generate_rows(table))
    orders_columns = [(c.name, c.type) for c in tpch.columns("orders")]
    _load_table(
        hive, catalog, "default", "orders", orders_columns,
        tpch.generate_rows("orders"), {"partitioned_by": ["orderstatus"]},
    )
    lineitem_columns = [(c.name, c.type) for c in tpch.columns("lineitem")]
    _load_table(
        hive, catalog, "default", "lineitem", lineitem_columns,
        tpch.generate_rows("lineitem"),
    )


def setup_ab_testing_dataset(
    raptor: RaptorConnector,
    users: int = 20_000,
    events: int = 60_000,
    experiments: int = 40,
    bucket_count: int = 8,
    catalog: str = "raptor",
    seed: int = 42,
) -> None:
    """A/B test infrastructure tables in Raptor (Table I): user, test,
    and event attributes, bucketed on user id so the big join is
    co-located (Sec. IV-C3)."""
    rng = random.Random(seed)
    user_rows = [
        (
            i,
            _COUNTRIES[rng.randrange(len(_COUNTRIES))],
            _PLATFORMS[rng.randrange(len(_PLATFORMS))],
            rng.randrange(13, 80),
        )
        for i in range(users)
    ]
    _load_table(
        raptor, catalog, "default", "users",
        [("userid", BIGINT), ("country", VARCHAR), ("platform", VARCHAR), ("age", BIGINT)],
        user_rows,
        {"bucketed_by": "userid", "bucket_count": bucket_count},
    )
    enrollment_rows = []
    for i in range(users):
        for _ in range(rng.randrange(0, 3)):
            enrollment_rows.append(
                (i, rng.randrange(experiments), rng.randrange(2))
            )
    _load_table(
        raptor, catalog, "default", "enrollments",
        [("userid", BIGINT), ("experiment", BIGINT), ("variant", BIGINT)],
        enrollment_rows,
        {"bucketed_by": "userid", "bucket_count": bucket_count},
    )
    event_rows = [
        (
            rng.randrange(users),
            _EVENTS[rng.randrange(len(_EVENTS))],
            rng.randrange(10_000) + 8035,
            rng.random() * 100,
        )
        for _ in range(events)
    ]
    _load_table(
        raptor, catalog, "default", "events",
        [("userid", BIGINT), ("event_type", VARCHAR), ("day", DATE), ("value", DOUBLE)],
        event_rows,
        {"bucketed_by": "userid", "bucket_count": bucket_count},
    )


def setup_developer_analytics_dataset(
    sharded: ShardedSqlConnector,
    advertisers: int = 500,
    rows: int = 40_000,
    catalog: str = "shardedsql",
    seed: int = 7,
) -> None:
    """Advertiser reporting data in the sharded row store, sharded on
    advertiser id with a secondary index on day — the Sec. IV-C2
    configuration where point predicates reach individual shards."""
    rng = random.Random(seed)
    ad_rows = [
        (
            rng.randrange(advertisers),          # advertiser
            rng.randrange(advertisers * 20),     # campaign
            8035 + rng.randrange(365),           # day
            _EVENTS[rng.randrange(3)],           # event_type
            rng.randrange(1, 1000),              # impressions
            rng.random() * 10,                   # spend
        )
        for _ in range(rows)
    ]
    _load_table(
        sharded, catalog, "default", "ad_metrics",
        [
            ("advertiser", BIGINT), ("campaign", BIGINT), ("day", DATE),
            ("event_type", VARCHAR), ("impressions", BIGINT), ("spend", DOUBLE),
        ],
        ad_rows,
        {"shard_by": "advertiser", "indexes": ["day", "campaign"]},
    )
    campaign_rows = [
        (i, f"campaign-{i}", rng.randrange(advertisers))
        for i in range(advertisers * 20)
    ]
    _load_table(
        sharded, catalog, "default", "campaigns",
        [("campaign", BIGINT), ("name", VARCHAR), ("advertiser", BIGINT)],
        campaign_rows,
        {"shard_by": "campaign", "indexes": []},
    )
