"""Workload generators for the paper's four use cases (Table I).

Each generator reproduces one row of Table I: the connector, the query
shapes ("joins, aggregations and window functions" for
Developer/Advertiser Analytics; "transform, filter and join billions of
rows" for A/B Testing; exploratory shapes for Interactive Analytics;
"transform, filter, and join or aggregate" for Batch ETL), the target
latency envelope, and the concurrency level — scaled down to the
simulated substrate.
"""

from repro.workload.generators import (
    ABTestingWorkload,
    BatchEtlWorkload,
    DeveloperAnalyticsWorkload,
    InteractiveAnalyticsWorkload,
)
from repro.workload.datasets import (
    setup_ab_testing_dataset,
    setup_developer_analytics_dataset,
    setup_warehouse_dataset,
)
from repro.workload.runner import WorkloadResult, run_workload

__all__ = [
    "DeveloperAnalyticsWorkload",
    "ABTestingWorkload",
    "InteractiveAnalyticsWorkload",
    "BatchEtlWorkload",
    "setup_ab_testing_dataset",
    "setup_developer_analytics_dataset",
    "setup_warehouse_dataset",
    "run_workload",
    "WorkloadResult",
]
