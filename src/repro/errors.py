"""Error hierarchy for the engine.

Mirrors Presto's error classification: user errors (bad SQL, bad types),
insufficient-resource errors (memory limits), and internal errors. Every
error carries a stable ``code`` so clients and tests can match on it
without parsing messages.
"""

from __future__ import annotations


class PrestoError(Exception):
    """Base class for every engine error."""

    code = "GENERIC_INTERNAL_ERROR"

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code

    @property
    def message(self) -> str:
        return self.args[0] if self.args else ""


class UserError(PrestoError):
    """The query (or its inputs) are at fault, not the engine."""

    code = "GENERIC_USER_ERROR"


class SyntaxError_(UserError):
    """SQL text failed to lex or parse.

    Carries the 1-based line/column of the offending token.
    """

    code = "SYNTAX_ERROR"

    def __init__(self, message: str, line: int = 1, column: int = 1):
        super().__init__(f"line {line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(UserError):
    """SQL parsed, but analysis rejected it (unknown column, type mismatch...)."""

    code = "SEMANTIC_ERROR"


class TypeError_(SemanticError):
    code = "TYPE_MISMATCH"


class NotSupportedError(UserError):
    code = "NOT_SUPPORTED"


class DivisionByZeroError(UserError):
    code = "DIVISION_BY_ZERO"


class InvalidFunctionArgumentError(UserError):
    code = "INVALID_FUNCTION_ARGUMENT"


class InvalidCastError(UserError):
    code = "INVALID_CAST_ARGUMENT"


class ExceededMemoryLimitError(PrestoError):
    """Query exceeded its per-node or global user memory limit (Sec. IV-F2)."""

    code = "EXCEEDED_MEMORY_LIMIT"


class ExceededTimeLimitError(PrestoError):
    code = "EXCEEDED_TIME_LIMIT"


class QueryQueueFullError(PrestoError):
    code = "QUERY_QUEUE_FULL"


class WorkerFailedError(PrestoError):
    """A worker node crashed while the query was running (Sec. IV-G)."""

    code = "WORKER_NODE_FAILED"


class PlannerError(PrestoError):
    code = "PLANNER_ERROR"


class ConnectorError(PrestoError):
    code = "CONNECTOR_ERROR"


class CatalogNotFoundError(SemanticError):
    code = "CATALOG_NOT_FOUND"


class SchemaNotFoundError(SemanticError):
    code = "SCHEMA_NOT_FOUND"


class TableNotFoundError(SemanticError):
    code = "TABLE_NOT_FOUND"


class ColumnNotFoundError(SemanticError):
    code = "COLUMN_NOT_FOUND"


class FunctionNotFoundError(SemanticError):
    code = "FUNCTION_NOT_FOUND"


class AmbiguousNameError(SemanticError):
    code = "AMBIGUOUS_NAME"
