"""Error hierarchy for the engine.

Mirrors Presto's error classification (Sec. IV-G): every error belongs
to one of four categories — USER_ERROR (the query or its inputs are at
fault), INTERNAL_ERROR (an engine component misbehaved),
INSUFFICIENT_RESOURCES (memory/queue/time limits), or EXTERNAL (a
system outside the engine: connectors, the network). Every error
carries a stable ``code`` so clients and tests can match on it without
parsing messages, plus a ``retryable`` flag that drives the cluster's
retry policy: retryable faults are eligible for task-level recovery or
client resubmission; non-retryable faults fail the query immediately
(re-running a bad query or a deterministic memory blowout cannot help).
"""

from __future__ import annotations

# The four error categories of paper Sec. IV-G.
USER_ERROR = "USER_ERROR"
INTERNAL_ERROR = "INTERNAL_ERROR"
INSUFFICIENT_RESOURCES = "INSUFFICIENT_RESOURCES"
EXTERNAL = "EXTERNAL"

ERROR_CATEGORIES = (USER_ERROR, INTERNAL_ERROR, INSUFFICIENT_RESOURCES, EXTERNAL)


def error_category(error: BaseException) -> str:
    """Classify any exception into one of the four Sec. IV-G categories."""
    if isinstance(error, PrestoError):
        return error.category
    return INTERNAL_ERROR


def is_retryable(error: BaseException) -> bool:
    """Whether re-executing the failed work can plausibly succeed."""
    if isinstance(error, PrestoError):
        return error.retryable
    return False


class PrestoError(Exception):
    """Base class for every engine error."""

    code = "GENERIC_INTERNAL_ERROR"
    category = INTERNAL_ERROR
    retryable = False

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code

    @property
    def message(self) -> str:
        return self.args[0] if self.args else ""


class UserError(PrestoError):
    """The query (or its inputs) are at fault, not the engine."""

    code = "GENERIC_USER_ERROR"
    category = USER_ERROR


class SyntaxError_(UserError):
    """SQL text failed to lex or parse.

    Carries the 1-based line/column of the offending token.
    """

    code = "SYNTAX_ERROR"

    def __init__(self, message: str, line: int = 1, column: int = 1):
        super().__init__(f"line {line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(UserError):
    """SQL parsed, but analysis rejected it (unknown column, type mismatch...)."""

    code = "SEMANTIC_ERROR"


class TypeError_(SemanticError):
    code = "TYPE_MISMATCH"


class NotSupportedError(UserError):
    code = "NOT_SUPPORTED"


class DivisionByZeroError(UserError):
    code = "DIVISION_BY_ZERO"


class InvalidFunctionArgumentError(UserError):
    code = "INVALID_FUNCTION_ARGUMENT"


class InvalidCastError(UserError):
    code = "INVALID_CAST_ARGUMENT"


class ExceededMemoryLimitError(PrestoError):
    """Query exceeded its per-node or global user memory limit (Sec. IV-F2).

    Not retryable: the same query over the same data deterministically
    hits the same limit (clients may retry later on a quieter cluster,
    but the engine does not re-execute tasks for it)."""

    code = "EXCEEDED_MEMORY_LIMIT"
    category = INSUFFICIENT_RESOURCES


class ExceededTimeLimitError(PrestoError):
    code = "EXCEEDED_TIME_LIMIT"
    category = INSUFFICIENT_RESOURCES


class QueryQueueFullError(PrestoError):
    """Admission rejection: transient by nature, safe to resubmit."""

    code = "QUERY_QUEUE_FULL"
    category = INSUFFICIENT_RESOURCES
    retryable = True


class WorkerFailedError(PrestoError):
    """A worker node crashed while the query was running (Sec. IV-G).

    Retryable: the work itself was fine; re-executing the lost tasks on
    surviving workers (or resubmitting the query) can succeed."""

    code = "WORKER_NODE_FAILED"
    retryable = True


class TransferFailedError(PrestoError):
    """A shuffle transfer kept failing past the retry budget (Sec. IV-G:
    transient network faults are EXTERNAL and retried at a low level;
    this error surfaces only when the retry policy gives up)."""

    code = "TRANSFER_FAILED"
    category = EXTERNAL
    retryable = True


class PlannerError(PrestoError):
    code = "PLANNER_ERROR"


class ConnectorError(PrestoError):
    code = "CONNECTOR_ERROR"
    category = EXTERNAL
    retryable = True


class CatalogNotFoundError(SemanticError):
    code = "CATALOG_NOT_FOUND"


class SchemaNotFoundError(SemanticError):
    code = "SCHEMA_NOT_FOUND"


class TableNotFoundError(SemanticError):
    code = "TABLE_NOT_FOUND"


class ColumnNotFoundError(SemanticError):
    code = "COLUMN_NOT_FOUND"


class FunctionNotFoundError(SemanticError):
    code = "FUNCTION_NOT_FOUND"


class AmbiguousNameError(SemanticError):
    code = "AMBIGUOUS_NAME"
