"""The Hive connector: Metadata/DataLocation/DataSource/DataSink over
the simulated DFS + metastore + ORC-like format.

Behaviours reproduced from the paper:

- **Partition pruning** (Sec. IV-C2): the layout returned for a
  constraint enforces the partition-column domains, so the engine never
  reads excluded partitions.
- **Lazy split enumeration** (Sec. IV-D3): splits are generated one
  file at a time from partition/file listings; LIMIT queries finish
  before enumeration completes.
- **File-format features** (Sec. V-C): stripe skipping by min/max and
  Bloom statistics; dictionary/RLE blocks surfaced to the engine.
- **Lazy data loading** (Sec. V-D): columns decode only when accessed;
  per-connector ReadStats feed the Sec. V-D benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.catalog import (
    Column,
    QualifiedTableName,
    TableMetadata,
    TableStatistics,
    compute_column_statistics,
)
from repro.connectors.api import (
    Connector,
    ConnectorMetadata,
    ConnectorTableLayout,
    LazySplitSource,
    PageSink,
    PageSource,
    Split,
    SplitSource,
    TablePartitioning,
)
from repro.connectors.hive.dfs import SimulatedDfs
from repro.connectors.hive.format import (
    OrcLikeFile,
    OrcReader,
    OrcWriter,
    ReadStats,
)
from repro.connectors.hive.metastore import HivePartition, HiveTable, Metastore
from repro.connectors.predicate import TupleDomain
from repro.errors import TableNotFoundError
from repro.exec import kernels
from repro.exec.page import Page

import numpy as np


@dataclass(frozen=True)
class HiveTableHandle:
    schema: str
    table: str


@dataclass(frozen=True)
class HiveLayoutHandle:
    table: HiveTableHandle
    # Partition values surviving pruning; None = unpartitioned table.
    partitions: tuple[tuple, ...] | None
    constraint_fingerprint: int = 0


@dataclass
class HiveInsertHandle:
    table: HiveTableHandle


class HiveMetadata(ConnectorMetadata):
    def __init__(self, connector: "HiveConnector"):
        self._connector = connector

    @property
    def metastore(self) -> Metastore:
        return self._connector.metastore

    def list_schemas(self) -> list[str]:
        return self.metastore.list_schemas()

    def list_tables(self, schema: str | None = None) -> list[str]:
        return self.metastore.list_tables(schema)

    def get_table_handle(self, schema: str, table: str) -> HiveTableHandle | None:
        if self.metastore.get_table(schema, table) is None:
            return None
        return HiveTableHandle(schema, table)

    def get_table_metadata(self, handle: HiveTableHandle) -> TableMetadata:
        table = self.metastore.require_table(handle.schema, handle.table)
        return TableMetadata(
            QualifiedTableName(self._connector.catalog_name, handle.schema, handle.table),
            tuple(table.columns),
            {"partitioned_by": list(table.partition_columns)},
        )

    def get_statistics(self, handle: HiveTableHandle) -> TableStatistics:
        if not self._connector.statistics_enabled:
            return TableStatistics.empty()
        return self.metastore.get_statistics(handle.schema, handle.table)

    def get_layouts(
        self, handle: HiveTableHandle, constraint: TupleDomain, desired_columns
    ) -> list[ConnectorTableLayout]:
        table = self.metastore.require_table(handle.schema, handle.table)
        if not table.partition_columns:
            partitioning = self._bucketing(table)
            return [
                ConnectorTableLayout(
                    handle=HiveLayoutHandle(handle, None),
                    enforced_predicate=TupleDomain.all(),
                    unenforced_predicate=constraint,
                    partitioning=partitioning,
                )
            ]
        # Partition pruning: evaluate the partition-column domains against
        # each partition's values.
        partition_columns = table.partition_columns
        partition_constraint = constraint.filter_columns(set(partition_columns))
        all_partitions = self.metastore.list_partitions(handle.schema, handle.table)
        matching: list[HivePartition] = []
        for partition in all_partitions:
            row = dict(zip(partition_columns, partition.values))
            if partition_constraint.contains_row(row):
                matching.append(partition)
        remaining = TupleDomain(
            {
                column: domain
                for column, domain in constraint.domains.items()
                if column not in partition_columns
            }
        )
        fraction = len(matching) / len(all_partitions) if all_partitions else 1.0
        layout = ConnectorTableLayout(
            handle=HiveLayoutHandle(
                handle, tuple(p.values for p in matching)
            ),
            enforced_predicate=partition_constraint,
            unenforced_predicate=remaining,
            partitioning=self._bucketing(table),
            scan_fraction=fraction,
        )
        return [layout]

    def _bucketing(self, table: HiveTable) -> Optional[TablePartitioning]:
        if not table.bucket_columns:
            return None
        return TablePartitioning(
            tuple(table.bucket_columns),
            table.bucket_count,
            partitioning_handle=f"hive-bucket-{table.bucket_count}",
        )

    # -- writes --------------------------------------------------------------

    def create_table(self, metadata: TableMetadata) -> HiveTableHandle:
        properties = metadata.properties or {}

        def name_list(value) -> list[str]:
            if value is None:
                return []
            if isinstance(value, str):
                return [value]
            return list(value)

        table = HiveTable(
            schema=metadata.name.schema,
            name=metadata.name.table,
            columns=list(metadata.columns),
            partition_columns=name_list(properties.get("partitioned_by")),
            bucket_columns=name_list(properties.get("bucketed_by")),
            bucket_count=int(properties.get("bucket_count", 0) or 0),
        )
        self.metastore.create_schema(metadata.name.schema)
        self.metastore.create_table(table)
        self.versions.bump_table(metadata.name.schema, metadata.name.table)
        return HiveTableHandle(metadata.name.schema, metadata.name.table)

    def begin_insert(self, handle: HiveTableHandle) -> HiveInsertHandle:
        return HiveInsertHandle(handle)

    def finish_insert(self, insert_handle: HiveInsertHandle, fragments: list) -> None:
        handle = insert_handle.table
        table = self.metastore.require_table(handle.schema, handle.table)
        for fragment in fragments:
            for partition_values, path in fragment:
                if partition_values is None:
                    table.file_paths.append(path)
                else:
                    partition = table.partitions.get(partition_values)
                    if partition is None:
                        location = f"{self._connector.table_location(handle)}/{partition_values}"
                        partition = HivePartition(partition_values, location)
                        table.partitions[partition_values] = partition
                    partition.file_paths.append(path)
        self.versions.bump_table(handle.schema, handle.table)
        if self._connector.auto_analyze:
            self._connector.analyze_table(handle.schema, handle.table)

    def drop_table(self, handle: HiveTableHandle) -> None:
        table = self.metastore.get_table(handle.schema, handle.table)
        if table is None:
            return
        for path in table.file_paths:
            self._connector.dfs.delete(path)
        for partition in table.partitions.values():
            for path in partition.file_paths:
                self._connector.dfs.delete(path)
        self.metastore.drop_table(handle.schema, handle.table)
        self.versions.bump_table(handle.schema, handle.table)


class HivePageSource(PageSource):
    def __init__(self, pages: Iterator[Page]):
        self._pages = pages

    def next_page(self) -> Optional[Page]:
        try:
            page = next(self._pages)
        except StopIteration:
            return None
        self.completed_rows += page.row_count
        # Lazy pages report only loaded bytes at this point.
        self.completed_bytes += page.loaded_size_bytes()
        return page


class HivePageSink(PageSink):
    """Writes pages to ORC-like files, rolling to a new file every
    ``max_rows_per_file`` rows per partition (so large writes produce
    many splits — the write-concurrency concern of Sec. IV-E3)."""

    def __init__(self, connector: "HiveConnector", handle: HiveTableHandle):
        self.connector = connector
        self.handle = handle
        table = connector.metastore.require_table(handle.schema, handle.table)
        self.table = table
        self.column_names = [c.name for c in table.columns]
        self.partition_indexes = [
            self.column_names.index(c) for c in table.partition_columns
        ]
        self.data_indexes = [
            i for i, name in enumerate(self.column_names)
            if name not in table.partition_columns
        ]
        self._writers: dict[tuple | None, OrcWriter] = {}
        self._writer_rows: dict[tuple | None, int] = {}
        self.rows_written = 0
        self.fragments: list[tuple] = []

    def _schema(self) -> list[tuple]:
        return [
            (c.name, c.type)
            for c in self.table.columns
            if c.name not in self.table.partition_columns
        ]

    def append(self, page: Page) -> None:
        """Batch write: rows are grouped by partition key with one
        factorize over the key columns (first-occurrence key order, so
        partitions register in the same order the row loop produced),
        then each group streams into its writer in file-sized slices."""
        data_page = page.select_channels(self.data_indexes)
        if not self.partition_indexes:
            self._append_rows(None, data_page)
            return
        key_blocks = [page.block(i) for i in self.partition_indexes]
        factorized = kernels.factorize(key_blocks, page.row_count)
        if factorized is not None:
            for group in range(factorized.group_count):
                positions = np.flatnonzero(factorized.group_ids == group)
                first = int(factorized.first_positions[group])
                key = tuple(block.get(first) for block in key_blocks)
                self._append_rows(key, data_page.copy_positions(positions))
            return
        # row-path: object-typed partition keys or REPRO_KERNELS=row
        groups: dict[tuple, list[int]] = {}
        for position in range(page.row_count):
            key = tuple(block.get(position) for block in key_blocks)
            groups.setdefault(key, []).append(position)
        for key, positions in groups.items():
            self._append_rows(key, data_page.copy_positions(positions))

    def _append_rows(self, key: tuple | None, data_page: Page) -> None:
        """Append one partition's rows, rolling to a new file at exactly
        the same ``max_rows_per_file`` boundaries as a row-at-a-time
        append would."""
        schema = self._schema()
        max_rows = self.connector.max_rows_per_file
        total = data_page.row_count
        start = 0
        while start < total:
            writer = self._writers.get(key)
            if writer is None:
                writer = OrcWriter(
                    schema,
                    stripe_rows=self.connector.stripe_rows,
                    bloom_columns=self.connector.bloom_columns,
                )
                self._writers[key] = writer
                self._writer_rows[key] = 0
            take = min(max_rows - self._writer_rows[key], total - start)
            writer.add_page(data_page.region(start, take))
            self._writer_rows[key] += take
            self.rows_written += take
            start += take
            if self._writer_rows[key] >= max_rows:
                self._roll(key)

    def _roll(self, key: tuple | None) -> None:
        writer = self._writers.pop(key)
        self._writer_rows.pop(key, None)
        file = writer.finish()
        path = self.connector.new_file_path(self.handle, key)
        self.connector.dfs.write(path, file, file.size_bytes())
        self.fragments.append((key, path))

    def finish(self) -> list[tuple]:
        for key in list(self._writers):
            self._roll(key)
        return self.fragments


class HiveConnector(Connector):
    name = "hive"

    # Simulated shared-storage characteristics (used by the cluster sim):
    # remote reads pay a time-to-first-byte and bounded bandwidth.
    # Calibrated to the scaled-down substrate (see DESIGN.md): data
    # volumes are ~10^4x smaller than the paper's corpus, so fixed
    # latencies scale down too, keeping queries work-bound not
    # latency-bound. Remote (shared-storage) reads still pay ~10x the
    # time-to-first-byte of Raptor's local flash.
    base_read_latency_ms = 3.0
    read_bandwidth_bytes_per_ms = 200 * 1024  # ~200 MB/s per task

    def __init__(
        self,
        dfs: SimulatedDfs | None = None,
        metastore: Metastore | None = None,
        catalog_name: str = "hive",
        statistics_enabled: bool = True,
        lazy_reads_enabled: bool = True,
        stripe_rows: int = 10_000,
        bloom_columns: Sequence[str] = (),
        auto_analyze: bool = True,
        max_rows_per_file: int = 2_048,
        stripe_skipping_enabled: bool = True,
    ):
        self.max_rows_per_file = max_rows_per_file
        # Stats-based stripe skipping (Sec. V-C). Disabling it is safe —
        # unenforced predicates are re-applied by engine-side filters —
        # and lets experiments isolate lazy loading (Sec. V-D) from
        # stripe skipping.
        self.stripe_skipping_enabled = stripe_skipping_enabled
        self.dfs = dfs or SimulatedDfs()
        self.metastore = metastore or Metastore()
        self.catalog_name = catalog_name
        self.statistics_enabled = statistics_enabled
        self.lazy_reads_enabled = lazy_reads_enabled
        self.stripe_rows = stripe_rows
        self.bloom_columns = set(bloom_columns)
        self.auto_analyze = auto_analyze
        self.read_stats = ReadStats()
        self._metadata = HiveMetadata(self)
        self._file_counter = itertools.count()

    @property
    def metadata(self) -> HiveMetadata:
        return self._metadata

    # -- paths -------------------------------------------------------------

    def table_location(self, handle: HiveTableHandle) -> str:
        return f"/warehouse/{handle.schema}/{handle.table}"

    def new_file_path(self, handle: HiveTableHandle, partition: tuple | None) -> str:
        suffix = next(self._file_counter)
        base = self.table_location(handle)
        if partition is not None:
            base = f"{base}/{partition}"
        return f"{base}/part-{suffix:05d}.orc"

    # -- Data Location API ------------------------------------------------------

    def split_source(self, layout: ConnectorTableLayout) -> SplitSource:
        handle: HiveLayoutHandle = layout.handle
        return LazySplitSource(self._generate_splits(handle, layout))

    def _generate_splits(
        self, handle: HiveLayoutHandle, layout: ConnectorTableLayout
    ) -> Iterator[Split]:
        table = self.metastore.require_table(handle.table.schema, handle.table.table)
        constraint = layout.unenforced_predicate
        if handle.partitions is None:
            file_lists: list[tuple[tuple | None, list[str]]] = [(None, table.file_paths)]
        else:
            file_lists = []
            for values in handle.partitions:
                partition = table.partitions.get(values)
                if partition is not None:
                    # Each listing is a metastore round trip (slow at scale;
                    # hence lazy enumeration).
                    file_lists.append(
                        (values, self.metastore.list_partition_files(partition))
                    )
        for partition_values, paths in file_lists:
            for path in paths:
                dfs_file = self.dfs.stat(path)
                size = dfs_file.size_bytes if dfs_file else 0
                file: OrcLikeFile | None = dfs_file.payload if dfs_file else None
                yield Split(
                    connector=self.catalog_name,
                    payload=(path, partition_values, constraint),
                    addresses=dfs_file.replica_hosts if dfs_file else (),
                    remotely_accessible=True,
                    estimated_rows=file.row_count if file else 0,
                    estimated_bytes=size,
                    read_latency_ms=self.base_read_latency_ms,
                )

    # -- Data Source API ------------------------------------------------------------

    def page_source(self, split: Split, columns: Sequence[str]) -> PageSource:
        path, partition_values, constraint = split.payload
        file: OrcLikeFile = self.dfs.read(path).payload
        table_handle = self._table_handle_for_path(path)
        table = self.metastore.require_table(table_handle.schema, table_handle.table)
        partition_columns = table.partition_columns
        data_columns = [c for c in columns if c not in partition_columns]
        if split.dynamic_filters:
            # Runtime dynamic filters ride on the split; fold their
            # domains into the stripe-skipping constraint so the reader
            # skips stripes whose min/max exclude the build-side keys.
            from repro.exec.dynamic_filters import constraint_from

            df_constraint = constraint_from(
                (c, f) for c, f in split.dynamic_filters if c in data_columns
            )
            constraint = (
                df_constraint if constraint is None else constraint.intersect(df_constraint)
            )
        reader = OrcReader(
            file,
            data_columns,
            constraint if self.stripe_skipping_enabled else None,
            lazy=self.lazy_reads_enabled,
            stats=self.read_stats,
        )

        def generate() -> Iterator[Page]:
            for page in reader.pages():
                if partition_columns and partition_values is not None:
                    # Synthesize partition-column blocks (RLE: constant per file).
                    from repro.exec.blocks import RunLengthBlock

                    partition_map = dict(zip(partition_columns, partition_values))
                    blocks = []
                    data_iter = iter(range(len(data_columns)))
                    for column in columns:
                        if column in partition_map:
                            blocks.append(
                                RunLengthBlock(partition_map[column], page.row_count)
                            )
                        else:
                            blocks.append(page.block(next(data_iter)))
                    page = Page(blocks, page.row_count)
                yield page

        return HivePageSource(generate())

    def split_cache_key(self, split: Split) -> object | None:
        # File paths come from a global counter and are never reused, so
        # a path uniquely identifies immutable bytes.
        return split.payload[0]

    def prune_split(self, split: Split, filters: dict) -> bool:
        """Prune a file split using runtime dynamic filters: drop it when
        its partition value falls outside a filter's domain, or when every
        stripe's statistics (min/max + Bloom) exclude the filter."""
        path, partition_values, _constraint = split.payload
        table_handle = self._table_handle_for_path(path)
        table = self.metastore.require_table(table_handle.schema, table_handle.table)
        if table.partition_columns and partition_values is not None:
            row = dict(zip(table.partition_columns, partition_values))
            for column, filter_ in filters.items():
                if column in row and not filter_.contains_value(row[column]):
                    return True
        dfs_file = self.dfs.stat(path)
        file = dfs_file.payload if dfs_file is not None else None
        if file is not None and file.stripes:
            for column, filter_ in filters.items():
                chunks = [stripe.columns.get(column) for stripe in file.stripes]
                if all(
                    chunk is not None and not filter_.might_match_chunk(chunk)
                    for chunk in chunks
                ):
                    return True
        return False

    def _table_handle_for_path(self, path: str) -> HiveTableHandle:
        parts = path.split("/")
        # /warehouse/<schema>/<table>/...
        return HiveTableHandle(parts[2], parts[3])

    # -- Data Sink API -------------------------------------------------------------------

    def page_sink(self, insert_handle: HiveInsertHandle) -> HivePageSink:
        return HivePageSink(self, insert_handle.table)

    # -- statistics -----------------------------------------------------------------------

    def analyze_table(self, schema: str, table_name: str) -> TableStatistics:
        """Compute and store table/column statistics (ANALYZE)."""
        table = self.metastore.require_table(schema, table_name)
        columns = [c.name for c in table.columns]
        values: dict[str, list] = {c: [] for c in columns}
        row_count = 0
        for partition_values, path in self._all_files(table):
            file: OrcLikeFile = self.dfs.read(path).payload
            reader = OrcReader(file, [c.name for c in table.data_columns], lazy=False)
            partition_map = (
                dict(zip(table.partition_columns, partition_values))
                if partition_values is not None
                else {}
            )
            for page in reader.pages():
                row_count += page.row_count
                data_iter = [c.name for c in table.data_columns]
                for i, name in enumerate(data_iter):
                    values[name].extend(page.block(i).to_values())
                for name, value in partition_map.items():
                    values[name].extend([value] * page.row_count)
        statistics = TableStatistics(
            float(row_count),
            {name: compute_column_statistics(vals) for name, vals in values.items()},
        )
        self.metastore.update_statistics(schema, table_name, statistics)
        self._metadata.versions.bump_table(schema, table_name)
        return statistics

    def _all_files(self, table: HiveTable) -> list[tuple[tuple | None, str]]:
        out: list[tuple[tuple | None, str]] = [(None, p) for p in table.file_paths]
        for partition in table.partitions.values():
            out.extend((partition.values, p) for p in partition.file_paths)
        return out
