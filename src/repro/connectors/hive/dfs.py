"""Simulated distributed filesystem.

An HDFS-like namespace mapping paths to immutable file objects. Each
file records the hosts holding its replicas (for locality-aware
scheduling) and a size so the cluster simulation can model read
latency/bandwidth. In shared-storage mode (the Facebook warehouse
deployment of Sec. IV-D2) replicas live on storage hosts distinct from
the workers, so every read is remote.

Hive table data payloads are ``OrcLikeFile`` objects whose
``size_bytes`` is the sum of the stripes' ``encoded_bytes``, so
``bytes_read`` models *encoded* volume — dictionary/RLE columns cost
what they cost on disk, independent of whether the reader later
materializes them (per-column decode accounting lives in the reader's
``ReadStats``, surfaced as the ``scan.*`` cluster counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConnectorError


@dataclass
class DfsFile:
    path: str
    payload: object  # the (structured) file contents
    size_bytes: int
    replica_hosts: tuple[str, ...] = ()


class SimulatedDfs:
    """Path -> file mapping with directory listing."""

    def __init__(self, replica_hosts: Iterable[str] = (), replication: int = 3):
        self._files: dict[str, DfsFile] = {}
        self.replica_hosts = list(replica_hosts)
        self.replication = replication
        self._next_replica = 0
        self.reads = 0
        self.bytes_read = 0

    def write(self, path: str, payload: object, size_bytes: int) -> DfsFile:
        replicas: tuple[str, ...] = ()
        if self.replica_hosts:
            chosen = []
            for _ in range(min(self.replication, len(self.replica_hosts))):
                chosen.append(self.replica_hosts[self._next_replica % len(self.replica_hosts)])
                self._next_replica += 1
            replicas = tuple(chosen)
        file = DfsFile(path, payload, size_bytes, replicas)
        self._files[path] = file
        return file

    def read(self, path: str) -> DfsFile:
        try:
            file = self._files[path]
        except KeyError:
            raise ConnectorError(f"DFS file not found: {path}")
        self.reads += 1
        self.bytes_read += file.size_bytes
        return file

    def stat(self, path: str) -> DfsFile | None:
        """Metadata-only access: does not count as a data read."""
        return self._files.get(path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def list_files(self, prefix: str) -> list[DfsFile]:
        return [f for p, f in sorted(self._files.items()) if p.startswith(prefix)]

    def total_bytes(self, prefix: str = "") -> int:
        return sum(f.size_bytes for f in self.list_files(prefix))
