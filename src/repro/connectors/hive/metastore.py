"""Metastore service: schemas, partitioned tables, statistics.

The paper's warehouse stores "metadata in a separate service" with APIs
similar to the Hive metastore. Tables may be partitioned on a suffix of
their columns; each partition maps to a directory of files in the DFS.
Enumerating partitions and listing files can be slow at scale, which is
why split enumeration is lazy (Sec. IV-D3) — the simulated metastore
tracks call counts so tests can assert that behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog import Column, TableStatistics
from repro.errors import SchemaNotFoundError, TableNotFoundError
from repro.types import Type


@dataclass
class HivePartition:
    """One partition: its partition-column values and its file paths."""

    values: tuple
    location: str
    file_paths: list[str] = field(default_factory=list)


@dataclass
class HiveTable:
    schema: str
    name: str
    columns: list[Column]
    # Partition columns are a subset of ``columns`` (by name).
    partition_columns: list[str] = field(default_factory=list)
    partitions: dict[tuple, HivePartition] = field(default_factory=dict)
    # Unpartitioned tables store files directly.
    file_paths: list[str] = field(default_factory=list)
    statistics: TableStatistics = field(default_factory=TableStatistics.empty)
    # Bucketing: hash-partitioned files within each partition.
    bucket_columns: list[str] = field(default_factory=list)
    bucket_count: int = 0

    @property
    def data_columns(self) -> list[Column]:
        return [c for c in self.columns if c.name not in self.partition_columns]


class Metastore:
    """In-memory Hive-metastore-like service."""

    def __init__(self):
        self._schemas: dict[str, dict[str, HiveTable]] = {"default": {}}
        self.partition_listings = 0
        self.file_listings = 0

    # -- schemas ----------------------------------------------------------

    def create_schema(self, name: str) -> None:
        self._schemas.setdefault(name, {})

    def list_schemas(self) -> list[str]:
        return sorted(self._schemas)

    def _schema(self, name: str) -> dict[str, HiveTable]:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaNotFoundError(f"Schema not found: {name}")

    # -- tables ------------------------------------------------------------

    def create_table(self, table: HiveTable) -> None:
        self._schema(table.schema)[table.name] = table

    def drop_table(self, schema: str, name: str) -> None:
        self._schema(schema).pop(name, None)

    def list_tables(self, schema: str | None = None) -> list[str]:
        if schema is None:
            return sorted(
                t for tables in self._schemas.values() for t in tables
            )
        return sorted(self._schema(schema))

    def get_table(self, schema: str, name: str) -> Optional[HiveTable]:
        return self._schemas.get(schema, {}).get(name)

    def require_table(self, schema: str, name: str) -> HiveTable:
        table = self.get_table(schema, name)
        if table is None:
            raise TableNotFoundError(f"Table not found: {schema}.{name}")
        return table

    # -- partitions ------------------------------------------------------------

    def add_partition(self, schema: str, name: str, partition: HivePartition) -> None:
        table = self.require_table(schema, name)
        table.partitions[partition.values] = partition

    def list_partitions(self, schema: str, name: str) -> list[HivePartition]:
        self.partition_listings += 1
        table = self.require_table(schema, name)
        return list(table.partitions.values())

    def list_partition_files(self, partition: HivePartition) -> list[str]:
        self.file_listings += 1
        return list(partition.file_paths)

    # -- statistics -----------------------------------------------------------------

    def update_statistics(self, schema: str, name: str, statistics: TableStatistics) -> None:
        self.require_table(schema, name).statistics = statistics

    def get_statistics(self, schema: str, name: str) -> TableStatistics:
        return self.require_table(schema, name).statistics
