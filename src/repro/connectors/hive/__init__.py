"""Hive-style warehouse connector (paper Sec. II-A/B, V-C/D).

A simulated shared-storage warehouse: a distributed filesystem
(:mod:`repro.connectors.hive.dfs`), a metastore service
(:mod:`repro.connectors.hive.metastore`), and an ORC-like columnar file
format with stripes, min/max statistics, bloom filters, dictionary/RLE
encodings and lazy reads (:mod:`repro.connectors.hive.format`).

This substitutes for the paper's Facebook data warehouse (HDFS-like
distributed filesystem + Hive-metastore-like service); it exercises the
same engine code paths: lazy split enumeration over partitions/files,
partition pruning, stripe skipping via file statistics, and lazy
columnar materialization.
"""

from repro.connectors.hive.connector import HiveConnector
from repro.connectors.hive.dfs import SimulatedDfs
from repro.connectors.hive.metastore import Metastore

__all__ = ["HiveConnector", "SimulatedDfs", "Metastore"]
