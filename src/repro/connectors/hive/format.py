"""ORC-like columnar file format (paper Sec. V-C/D, Fig. 5).

Files are divided into *stripes*; each stripe stores every column in one
of three encodings — plain, dictionary, or run-length — together with
min/max statistics, a null count, and an optional Bloom filter. The
reader can:

- skip whole stripes whose statistics exclude the query's TupleDomain
  ("custom readers that can efficiently skip data sections by using
  statistics in file headers/footers");
- decode dictionary/RLE data directly into the engine's
  Dictionary/RunLength blocks, which the page processor then operates on
  without decompressing (Sec. V-E) — one stripe-wide dictionary is
  shared by all pages of the stripe, exactly as Fig. 5 describes;
- defer decoding behind LazyBlocks so columns that are never accessed
  are never decoded (Sec. V-D), with read-accounting hooks the
  lazy-loading benchmark consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.connectors.predicate import Range, TupleDomain
from repro.exec.blocks import (
    Block,
    DictionaryBlock,
    LazyBlock,
    RunLengthBlock,
    dictionary_encode,
    make_block,
)
from repro.exec.page import DEFAULT_PAGE_ROWS, Page
from repro.types import Type

DEFAULT_STRIPE_ROWS = 10_000
_BLOOM_BITS = 1024


def _avg_size(values: list) -> float:
    """Estimated per-value encoded size in bytes."""
    if not values:
        return 8.0
    sample = values[0]
    if isinstance(sample, str):
        return max(1.0, sum(len(v) for v in values[:64]) / min(len(values), 64))
    if isinstance(sample, (list, tuple, dict)):
        return 16.0 * max(1, len(sample))
    return 8.0


def _bloom_hashes(value) -> tuple[int, int]:
    h = hash(value) & 0xFFFFFFFFFFFFFFFF
    return (h % _BLOOM_BITS, (h >> 32) % _BLOOM_BITS)


@dataclass
class ColumnChunk:
    """One column within one stripe."""

    encoding: str  # "plain" | "dict" | "rle"
    data: object
    null_count: int
    min_value: object = None
    max_value: object = None
    bloom: Optional[int] = None  # bitmask over _BLOOM_BITS bits
    encoded_bytes: int = 0

    # -- statistics-based pruning ------------------------------------------

    def might_match(self, domain) -> bool:
        """False only when statistics prove no row can satisfy ``domain``."""
        if domain.is_all():
            return True
        non_null_rows_possible = True
        if self.min_value is not None or self.max_value is not None:
            stats_range = Range(self.min_value, self.max_value, True, True)
            non_null_rows_possible = domain.overlaps_range(stats_range)
        if not non_null_rows_possible and not (domain.null_allowed and self.null_count):
            return False
        # Bloom filter check for point lookups.
        values = domain.single_values()
        if values is not None and self.bloom is not None:
            for value in values:
                bit1, bit2 = _bloom_hashes(value)
                if (self.bloom >> bit1) & 1 and (self.bloom >> bit2) & 1:
                    return True
            return bool(domain.null_allowed and self.null_count)
        return True

    def decode(self, type_: Type) -> Block:
        if self.encoding == "plain":
            return make_block(type_, self.data)
        if self.encoding == "dict":
            dictionary_values, indices = self.data
            return DictionaryBlock(
                make_block(type_, dictionary_values), np.asarray(indices, dtype=np.int64)
            )
        if self.encoding == "rle":
            runs = self.data
            if len(runs) == 1:
                value, count = runs[0]
                return RunLengthBlock(value, count)
            values: list = []
            for value, count in runs:
                values.extend([value] * count)
            return make_block(type_, values)
        raise ValueError(f"unknown encoding {self.encoding}")

    @property
    def cell_count(self) -> int:
        if self.encoding == "plain":
            return len(self.data)
        if self.encoding == "dict":
            return len(self.data[1])
        return sum(count for _, count in self.data)


@dataclass
class Stripe:
    row_count: int
    columns: dict[str, ColumnChunk]

    def size_bytes(self) -> int:
        return sum(c.encoded_bytes for c in self.columns.values())


@dataclass
class OrcLikeFile:
    """A closed, immutable columnar file."""

    schema: list[tuple[str, Type]]
    stripes: list[Stripe]

    @property
    def row_count(self) -> int:
        return sum(s.row_count for s in self.stripes)

    def size_bytes(self) -> int:
        return sum(s.size_bytes() for s in self.stripes) + 256  # footer

    def column_type(self, name: str) -> Type:
        for column, type_ in self.schema:
            if column == name:
                return type_
        raise KeyError(name)


class OrcWriter:
    """Buffers rows and encodes stripes on flush."""

    def __init__(
        self,
        schema: Sequence[tuple[str, Type]],
        stripe_rows: int = DEFAULT_STRIPE_ROWS,
        bloom_columns: Iterable[str] = (),
        dictionary_threshold: float = 0.5,
    ):
        self.schema = list(schema)
        self.stripe_rows = stripe_rows
        self.bloom_columns = set(bloom_columns)
        self.dictionary_threshold = dictionary_threshold
        self._buffer: list[list] = [[] for _ in self.schema]
        self._buffered_rows = 0
        self._stripes: list[Stripe] = []

    def add_rows(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            for i, value in enumerate(row):
                self._buffer[i].append(value)
            self._buffered_rows += 1
            if self._buffered_rows >= self.stripe_rows:
                self._flush_stripe()

    def add_page(self, page: Page) -> None:
        self.add_rows(page.rows())

    def finish(self) -> OrcLikeFile:
        if self._buffered_rows:
            self._flush_stripe()
        return OrcLikeFile(self.schema, self._stripes)

    def _flush_stripe(self) -> None:
        columns: dict[str, ColumnChunk] = {}
        for (name, type_), values in zip(self.schema, self._buffer):
            columns[name] = self._encode_column(name, type_, values)
        self._stripes.append(Stripe(self._buffered_rows, columns))
        self._buffer = [[] for _ in self.schema]
        self._buffered_rows = 0

    def _encode_column(self, name: str, type_: Type, values: list) -> ColumnChunk:
        non_null = [v for v in values if v is not None]
        null_count = len(values) - len(non_null)
        min_value = max_value = None
        if non_null and isinstance(non_null[0], (int, float, str)) and not isinstance(
            non_null[0], bool
        ):
            try:
                min_value = min(non_null)
                max_value = max(non_null)
            except TypeError:
                pass
        bloom = None
        if name in self.bloom_columns:
            bloom = 0
            for value in non_null:
                bit1, bit2 = _bloom_hashes(value)
                bloom |= (1 << bit1) | (1 << bit2)
        # Choose the encoding.
        runs = self._run_length(values)
        try:
            distinct = len(set(non_null))
            hashable = True
        except TypeError:
            distinct = len(non_null)
            hashable = False
        value_size = _avg_size(non_null)
        if len(runs) <= max(1, len(values) // 8):
            encoding = "rle"
            data: object = runs
            encoded_bytes = int(len(runs) * (value_size + 4))
        elif hashable and values and distinct <= self.dictionary_threshold * len(values):
            dictionary: dict = {}
            dict_values: list = []
            indices = []
            for value in values:
                if value is None:
                    indices.append(-1)
                    continue
                index = dictionary.get(value)
                if index is None:
                    index = len(dict_values)
                    dictionary[value] = index
                    dict_values.append(value)
                indices.append(index)
            encoding = "dict"
            data = (dict_values, indices)
            encoded_bytes = int(len(dict_values) * value_size + len(indices) * 2)
        else:
            encoding = "plain"
            data = list(values)
            encoded_bytes = int(len(values) * value_size)
        return ColumnChunk(
            encoding, data, null_count, min_value, max_value, bloom, max(encoded_bytes, 1)
        )

    @staticmethod
    def _run_length(values: list) -> list[tuple[object, int]]:
        runs: list[tuple[object, int]] = []
        for value in values:
            if runs and runs[-1][0] == value:
                runs[-1] = (value, runs[-1][1] + 1)
            else:
                runs.append((value, 1))
        return runs


@dataclass
class ReadStats:
    """Accounting for the lazy-loading experiment (paper Sec. V-D)."""

    stripes_read: int = 0
    stripes_skipped: int = 0
    columns_requested: int = 0
    columns_loaded: int = 0
    cells_loaded: int = 0
    bytes_fetched: int = 0

    def merge(self, other: "ReadStats") -> None:
        self.stripes_read += other.stripes_read
        self.stripes_skipped += other.stripes_skipped
        self.columns_requested += other.columns_requested
        self.columns_loaded += other.columns_loaded
        self.cells_loaded += other.cells_loaded
        self.bytes_fetched += other.bytes_fetched


class OrcReader:
    """Reads a file with stripe skipping and (optionally) lazy columns."""

    def __init__(
        self,
        file: OrcLikeFile,
        columns: Sequence[str],
        constraint: TupleDomain | None = None,
        lazy: bool = True,
        stats: ReadStats | None = None,
    ):
        self.file = file
        self.columns = list(columns)
        self.constraint = constraint or TupleDomain.all()
        self.lazy = lazy
        self.stats = stats if stats is not None else ReadStats()

    def pages(self) -> Iterable[Page]:
        for stripe in self.file.stripes:
            if not self._stripe_matches(stripe):
                self.stats.stripes_skipped += 1
                continue
            self.stats.stripes_read += 1
            yield self._stripe_page(stripe)

    def _stripe_matches(self, stripe: Stripe) -> bool:
        if self.constraint.is_none():
            return False
        for column, domain in self.constraint.domains.items():
            chunk = stripe.columns.get(column)
            if chunk is not None and not chunk.might_match(domain):
                return False
        return True

    def _stripe_page(self, stripe: Stripe) -> Page:
        blocks: list[Block] = []
        for column in self.columns:
            chunk = stripe.columns[column]
            type_ = self.file.column_type(column)
            self.stats.columns_requested += 1
            if self.lazy:
                blocks.append(self._lazy_block(stripe, chunk, type_))
            else:
                blocks.append(self._load_chunk(chunk, type_))
        return Page(blocks, stripe.row_count)

    def _load_chunk(self, chunk: ColumnChunk, type_: Type) -> Block:
        self.stats.columns_loaded += 1
        self.stats.cells_loaded += chunk.cell_count
        self.stats.bytes_fetched += chunk.encoded_bytes
        return chunk.decode(type_)

    def _lazy_block(self, stripe: Stripe, chunk: ColumnChunk, type_: Type) -> LazyBlock:
        return LazyBlock(
            stripe.row_count,
            lambda chunk=chunk, type_=type_: self._load_chunk(chunk, type_),
        )
