"""ORC-like columnar file format (paper Sec. V-C/D, Fig. 5).

Files are divided into *stripes*; each stripe stores every column in one
of three encodings — plain, dictionary, or run-length — together with
min/max statistics, a null count, and an optional Bloom filter. The
reader can:

- skip whole stripes whose statistics exclude the query's TupleDomain
  ("custom readers that can efficiently skip data sections by using
  statistics in file headers/footers");
- decode dictionary/RLE data directly into the engine's
  Dictionary/RunLength blocks, which the page processor then operates on
  without decompressing (Sec. V-E) — one stripe-wide dictionary is
  shared by all pages of the stripe, exactly as Fig. 5 describes;
- defer decoding behind LazyBlocks so columns that are never accessed
  are never decoded (Sec. V-D), with read-accounting hooks the
  lazy-loading benchmark consumes.

Both directions are batch operations in the default kernel mode:
stripes encode with numpy (one-pass null masks and min/max, run
boundaries from a shifted compare, dictionary build via canonical-code
factorize, Bloom bits hashed once per *distinct* value) and decode
straight into numpy-backed or still-encoded blocks (multi-run RLE
expands as a dictionary over the run values). ``REPRO_KERNELS=row``
routes every chunk through the original value-at-a-time reference
loops instead — the differential fuzzer compares the two modes
bit-for-bit. Files written in either mode can be read in either mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.connectors.predicate import Range, TupleDomain
from repro.exec import kernels
from repro.exec.blocks import (
    Block,
    DictionaryBlock,
    LazyBlock,
    PrimitiveBlock,
    RunLengthBlock,
    is_primitive_type,
    make_block,
)
from repro.exec.page import Page
from repro.types import BOOLEAN, DOUBLE, Type

DEFAULT_STRIPE_ROWS = 10_000
_BLOOM_BITS = 1024


def _avg_size(values: list) -> float:
    """Estimated per-value encoded size in bytes."""
    if not values:
        return 8.0
    sample = values[0]
    if isinstance(sample, str):
        # row-path: bounded 64-value size sample
        return max(1.0, sum(len(v) for v in values[:64]) / min(len(values), 64))
    if isinstance(sample, (list, tuple, dict)):
        return 16.0 * max(1, len(sample))
    return 8.0


def _bloom_hashes(value) -> tuple[int, int]:
    h = hash(value) & 0xFFFFFFFFFFFFFFFF
    return (h % _BLOOM_BITS, (h >> 32) % _BLOOM_BITS)


@dataclass
class ColumnChunk:
    """One column within one stripe.

    ``data`` is polymorphic per encoding (and per writer mode):

    - ``plain`` — a python list of values, or a ``(values, nulls)``
      numpy pair when written by the vectorized encoder;
    - ``dict`` — ``(dictionary_values, indices)`` where indices is a
      python list or an int64 ndarray (``-1`` = null);
    - ``rle`` — ``[(value, run_length), ...]``.

    Decoding is kernel-mode dependent: the vectorized path hands
    encoded data to the engine as Dictionary/RunLength blocks (late
    materialization, Sec. V-E), while ``REPRO_KERNELS=row`` decodes
    through value-at-a-time reference loops and materializes flat
    blocks for plain and multi-run RLE chunks.
    """

    encoding: str  # "plain" | "dict" | "rle"
    data: object
    null_count: int
    min_value: object = None
    max_value: object = None
    bloom: Optional[int] = None  # bitmask over _BLOOM_BITS bits
    encoded_bytes: int = 0

    # -- statistics-based pruning ------------------------------------------

    def might_match(self, domain) -> bool:
        """False only when statistics prove no row can satisfy ``domain``."""
        if domain.is_all():
            return True
        non_null_rows_possible = True
        if self.min_value is not None or self.max_value is not None:
            stats_range = Range(self.min_value, self.max_value, True, True)
            non_null_rows_possible = domain.overlaps_range(stats_range)
        if not non_null_rows_possible and not (domain.null_allowed and self.null_count):
            return False
        # Bloom filter check for point lookups.
        values = domain.single_values()
        if values is not None and self.bloom is not None:
            # row-path: the domain's IN-list (a few lookup values, not rows)
            for value in values:
                bit1, bit2 = _bloom_hashes(value)
                if (self.bloom >> bit1) & 1 and (self.bloom >> bit2) & 1:
                    return True
            return bool(domain.null_allowed and self.null_count)
        return True

    # -- decoding -----------------------------------------------------------

    def decode(self, type_: Type) -> Block:
        if kernels.enabled():
            return self._decode_vector(type_)
        return self._decode_row(type_)

    def _decode_vector(self, type_: Type) -> Block:
        """Batch decode: plain chunks become numpy-backed blocks without
        touching individual values; dict/RLE chunks stay encoded."""
        if self.encoding == "plain":
            if isinstance(self.data, tuple):
                values, nulls = self.data
                return PrimitiveBlock(type_, values, nulls)
            return make_block(type_, self.data)
        if self.encoding == "dict":
            dictionary_values, indices = self.data
            return DictionaryBlock(
                make_block(type_, dictionary_values),
                np.asarray(indices, dtype=np.int64),
            )
        if self.encoding == "rle":
            runs = self.data
            if len(runs) == 1:
                value, count = runs[0]
                return RunLengthBlock(value, count)
            run_values = [value for value, _ in runs]
            if is_primitive_type(type_):
                # Vectorized run expansion: a dictionary over the run
                # values with np.repeat'ed indices — the runs pass into
                # the engine still encoded.
                counts = np.fromiter(
                    (count for _, count in runs), dtype=np.int64, count=len(runs)
                )
                indices = np.repeat(np.arange(len(runs), dtype=np.int64), counts)
                return DictionaryBlock(make_block(type_, run_values), indices)
            values: list = []
            for value, count in runs:
                values.extend([value] * count)
            return make_block(type_, values)
        raise ValueError(f"unknown encoding {self.encoding}")

    def _decode_row(self, type_: Type) -> Block:
        """Reference decode (``REPRO_KERNELS=row``): value-at-a-time
        loops materializing flat blocks for plain/multi-run RLE data.
        Dictionary chunks still surface as DictionaryBlocks — the page
        processor's Sec. V-E fast path predates the batch decoder and is
        exercised in both modes."""
        if self.encoding == "plain":
            data = self.data
            if isinstance(data, tuple):  # chunk written by the vector encoder
                values, nulls = data
                out = values.tolist()
                # row-path: reference decode rebuilds python values
                for position in np.flatnonzero(nulls):
                    out[position] = None
                return make_block(type_, out)
            return make_block(type_, data)
        if self.encoding == "dict":
            dictionary_values, indices = self.data
            return DictionaryBlock(
                make_block(type_, dictionary_values),
                np.asarray(indices, dtype=np.int64),
            )
        if self.encoding == "rle":
            runs = self.data
            if len(runs) == 1:
                value, count = runs[0]
                return RunLengthBlock(value, count)
            values = []
            for value, count in runs:
                values.extend([value] * count)
            return make_block(type_, values)
        raise ValueError(f"unknown encoding {self.encoding}")

    @property
    def cell_count(self) -> int:
        if self.encoding == "plain":
            if isinstance(self.data, tuple):
                return len(self.data[0])
            return len(self.data)
        if self.encoding == "dict":
            return len(self.data[1])
        return sum(count for _, count in self.data)


@dataclass
class Stripe:
    row_count: int
    columns: dict[str, ColumnChunk]

    def size_bytes(self) -> int:
        return sum(c.encoded_bytes for c in self.columns.values())


@dataclass
class OrcLikeFile:
    """A closed, immutable columnar file."""

    schema: list[tuple[str, Type]]
    stripes: list[Stripe]

    @property
    def row_count(self) -> int:
        return sum(s.row_count for s in self.stripes)

    def size_bytes(self) -> int:
        return sum(s.size_bytes() for s in self.stripes) + 256  # footer

    def column_type(self, name: str) -> Type:
        for column, type_ in self.schema:
            if column == name:
                return type_
        raise KeyError(name)


class OrcWriter:
    """Buffers rows and encodes stripes on flush.

    Ingestion is batched: rows/pages are transposed into per-column
    buffers in stripe-sized slices, never one value at a time. Each
    stripe's columns then encode through the vectorized path (primitive
    types, default kernel mode) or the value-at-a-time reference
    encoder (``REPRO_KERNELS=row``, object-typed columns). Encoding
    choices may differ between modes on borderline cardinalities; the
    decoded values are identical either way.
    """

    def __init__(
        self,
        schema: Sequence[tuple[str, Type]],
        stripe_rows: int = DEFAULT_STRIPE_ROWS,
        bloom_columns: Iterable[str] = (),
        dictionary_threshold: float = 0.5,
    ):
        self.schema = list(schema)
        self.stripe_rows = stripe_rows
        self.bloom_columns = set(bloom_columns)
        self.dictionary_threshold = dictionary_threshold
        self._buffer: list[list] = [[] for _ in self.schema]
        self._buffered_rows = 0
        self._stripes: list[Stripe] = []

    def add_rows(self, rows: Iterable[Sequence]) -> None:
        rows = rows if isinstance(rows, list) else list(rows)
        total = len(rows)
        start = 0
        while start < total:
            take = min(self.stripe_rows - self._buffered_rows, total - start)
            chunk = rows[start : start + take]
            for buffer, column in zip(self._buffer, zip(*chunk)):
                buffer.extend(column)
            self._buffered_rows += take
            start += take
            if self._buffered_rows >= self.stripe_rows:
                self._flush_stripe()

    def add_page(self, page: Page) -> None:
        columns = [block.to_values() for block in page.blocks]
        total = page.row_count
        start = 0
        while start < total:
            take = min(self.stripe_rows - self._buffered_rows, total - start)
            for buffer, column in zip(self._buffer, columns):
                buffer.extend(column[start : start + take])
            self._buffered_rows += take
            start += take
            if self._buffered_rows >= self.stripe_rows:
                self._flush_stripe()

    def finish(self) -> OrcLikeFile:
        if self._buffered_rows:
            self._flush_stripe()
        return OrcLikeFile(self.schema, self._stripes)

    def _flush_stripe(self) -> None:
        columns: dict[str, ColumnChunk] = {}
        for (name, type_), values in zip(self.schema, self._buffer):
            columns[name] = self._encode_column(name, type_, values)
        self._stripes.append(Stripe(self._buffered_rows, columns))
        self._buffer = [[] for _ in self.schema]
        self._buffered_rows = 0

    def _encode_column(self, name: str, type_: Type, values: list) -> ColumnChunk:
        if kernels.enabled() and is_primitive_type(type_):
            try:
                return self._encode_column_vector(name, type_, values)
            except (OverflowError, TypeError, ValueError):
                # Out-of-range or mistyped values: reference encoder.
                pass
        return self._encode_column_row(name, type_, values)

    # -- vectorized encoder --------------------------------------------------

    def _encode_column_vector(self, name: str, type_: Type, values: list) -> ColumnChunk:
        n = len(values)
        block = make_block(type_, values)
        arr, nulls = block.values, block.nulls
        kind = "f" if type_ is DOUBLE else ("b" if type_ is BOOLEAN else "i")
        null_count = int(nulls.sum())
        # One vectorized stats pass. NaN poisons ordering (the reference
        # encoder's python min/max is undefined with NaN present), so
        # float columns containing NaN publish no min/max — pruning must
        # stay sound in both modes.
        min_value = max_value = None
        if null_count < n and kind != "b":
            data = arr[~nulls] if null_count else arr
            if kind == "f":
                if not np.isnan(data).any():
                    min_value = float(data.min())
                    max_value = float(data.max())
            else:
                min_value = int(data.min())
                max_value = int(data.max())
        # Run boundaries from one shifted compare. NaN != NaN breaks
        # runs, matching the reference encoder's `==` chaining; a null
        # run continues only into another null.
        if n == 0:
            starts = np.empty(0, dtype=np.int64)
        elif n == 1:
            starts = np.zeros(1, dtype=np.int64)
        else:
            eq = arr[1:] == arr[:-1]
            prev_null, next_null = nulls[:-1], nulls[1:]
            same = (eq & ~prev_null & ~next_null) | (prev_null & next_null)
            starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.flatnonzero(~same).astype(np.int64) + 1)
            )
        run_count = len(starts)
        value_size = 8.0
        if run_count <= max(1, n // 8):
            lengths = np.diff(np.append(starts, n))
            runs = [
                (block.get(int(position)), int(length))
                for position, length in zip(starts, lengths)
            ]
            bloom = self._bloom_from(name, (value for value, _ in runs))
            return ColumnChunk(
                "rle", runs, null_count, min_value, max_value, bloom,
                max(int(run_count * (value_size + 4)), 1),
            )
        # Dictionary build: canonical-code factorize in first-occurrence
        # order, compatible with the reference python-dict build (-0.0
        # and 0.0 collapse onto the first-seen value; NaNs unify by bit
        # pattern).
        valid = np.flatnonzero(~nulls)
        if kind == "f":
            codes = (arr + 0.0).view(np.int64)
        else:
            codes = arr.astype(np.int64, copy=False)
        uniq, first_index, inverse = np.unique(
            codes[valid], return_index=True, return_inverse=True
        )
        inverse = inverse.astype(np.int64, copy=False).reshape(-1)
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order), dtype=np.int64)
        dictionary_values = [
            block.get(int(valid[first_index[position]])) for position in order
        ]
        bloom = self._bloom_from(name, dictionary_values)
        distinct = len(uniq)
        if n and distinct <= self.dictionary_threshold * n:
            indices = np.full(n, -1, dtype=np.int64)
            indices[valid] = rank[inverse]
            return ColumnChunk(
                "dict", (dictionary_values, indices), null_count, min_value,
                max_value, bloom,
                max(int(distinct * value_size + n * 2), 1),
            )
        return ColumnChunk(
            "plain", (arr, nulls), null_count, min_value, max_value, bloom,
            max(int(n * value_size), 1),
        )

    def _bloom_from(self, name: str, values: Iterable) -> Optional[int]:
        """Bloom bitmask from an iterable of *distinct* values. OR-ing
        per-occurrence hashes is idempotent, so hashing each distinct
        value once yields the same bits as the reference per-row loop.
        NaN is skipped (never equi-matched; its python hash is object-
        identity based and would make file bits nondeterministic)."""
        if name not in self.bloom_columns:
            return None
        bloom = 0
        # row-path: python hash() per *distinct* value, not per row
        for value in values:
            if value is None or value != value:
                continue
            bit1, bit2 = _bloom_hashes(value)
            bloom |= (1 << bit1) | (1 << bit2)
        return bloom

    # -- reference encoder ---------------------------------------------------

    def _encode_column_row(self, name: str, type_: Type, values: list) -> ColumnChunk:
        """Reference encoder (``REPRO_KERNELS=row``; object-typed
        columns in any mode): the original value-at-a-time loops."""
        # row-path: reference null filter
        non_null = [v for v in values if v is not None]
        null_count = len(values) - len(non_null)
        min_value = max_value = None
        if non_null and isinstance(non_null[0], (int, float, str)) and not isinstance(
            non_null[0], bool
        ):
            # NaN poisons python min/max ordering; publish no stats then
            # (keeps stripe pruning sound, same guard as the vector path).
            # row-path: reference NaN scan
            has_nan = isinstance(non_null[0], float) and any(v != v for v in non_null)
            if not has_nan:
                try:
                    min_value = min(non_null)
                    max_value = max(non_null)
                except TypeError:
                    pass
        bloom = None
        if name in self.bloom_columns:
            bloom = 0
            # row-path: reference per-value Bloom hashing
            for value in non_null:
                if isinstance(value, float) and value != value:
                    continue  # NaN: see _bloom_from
                bit1, bit2 = _bloom_hashes(value)
                bloom |= (1 << bit1) | (1 << bit2)
        # Choose the encoding.
        runs = self._run_length(values)
        try:
            distinct = len(set(non_null))
            hashable = True
        except TypeError:
            distinct = len(non_null)
            hashable = False
        value_size = _avg_size(non_null)
        if len(runs) <= max(1, len(values) // 8):
            encoding = "rle"
            data: object = runs
            encoded_bytes = int(len(runs) * (value_size + 4))
        elif hashable and values and distinct <= self.dictionary_threshold * len(values):
            dictionary: dict = {}
            dict_values: list = []
            indices = []
            # row-path: reference dictionary build
            for value in values:
                if value is None:
                    indices.append(-1)
                    continue
                index = dictionary.get(value)
                if index is None:
                    index = len(dict_values)
                    dictionary[value] = index
                    dict_values.append(value)
                indices.append(index)
            encoding = "dict"
            data = (dict_values, indices)
            encoded_bytes = int(len(dict_values) * value_size + len(indices) * 2)
        else:
            encoding = "plain"
            data = list(values)
            encoded_bytes = int(len(values) * value_size)
        return ColumnChunk(
            encoding, data, null_count, min_value, max_value, bloom, max(encoded_bytes, 1)
        )

    @staticmethod
    def _run_length(values: list) -> list[tuple[object, int]]:
        runs: list[tuple[object, int]] = []
        # row-path: reference run detection
        for value in values:
            if runs and runs[-1][0] == value:
                runs[-1] = (value, runs[-1][1] + 1)
            else:
                runs.append((value, 1))
        return runs


@dataclass
class ReadStats:
    """Accounting for the lazy-loading experiment (paper Sec. V-D) and
    the columnar-scan counters (``scan.*`` in ``stats_snapshot``)."""

    stripes_read: int = 0
    stripes_skipped: int = 0
    columns_requested: int = 0
    columns_loaded: int = 0
    cells_loaded: int = 0
    bytes_fetched: int = 0
    # Decode accounting: rows a loaded chunk materialized as a flat
    # block vs rows that passed into the engine still encoded
    # (Dictionary/RunLength blocks).
    rows_decoded: int = 0
    rows_passed_encoded: int = 0

    def merge(self, other: "ReadStats") -> None:
        self.stripes_read += other.stripes_read
        self.stripes_skipped += other.stripes_skipped
        self.columns_requested += other.columns_requested
        self.columns_loaded += other.columns_loaded
        self.cells_loaded += other.cells_loaded
        self.bytes_fetched += other.bytes_fetched
        self.rows_decoded += other.rows_decoded
        self.rows_passed_encoded += other.rows_passed_encoded


class OrcReader:
    """Reads a file with stripe skipping and (optionally) lazy columns."""

    def __init__(
        self,
        file: OrcLikeFile,
        columns: Sequence[str],
        constraint: TupleDomain | None = None,
        lazy: bool = True,
        stats: ReadStats | None = None,
    ):
        self.file = file
        self.columns = list(columns)
        self.constraint = constraint or TupleDomain.all()
        self.lazy = lazy
        self.stats = stats if stats is not None else ReadStats()

    def pages(self) -> Iterable[Page]:
        for stripe in self.file.stripes:
            if not self._stripe_matches(stripe):
                self.stats.stripes_skipped += 1
                continue
            self.stats.stripes_read += 1
            yield self._stripe_page(stripe)

    def _stripe_matches(self, stripe: Stripe) -> bool:
        if self.constraint.is_none():
            return False
        for column, domain in self.constraint.domains.items():
            chunk = stripe.columns.get(column)
            if chunk is not None and not chunk.might_match(domain):
                return False
        return True

    def _stripe_page(self, stripe: Stripe) -> Page:
        blocks: list[Block] = []
        for column in self.columns:
            chunk = stripe.columns[column]
            type_ = self.file.column_type(column)
            self.stats.columns_requested += 1
            if self.lazy:
                blocks.append(self._lazy_block(stripe, chunk, type_))
            else:
                blocks.append(self._load_chunk(chunk, type_))
        return Page(blocks, stripe.row_count)

    def _load_chunk(self, chunk: ColumnChunk, type_: Type) -> Block:
        self.stats.columns_loaded += 1
        self.stats.cells_loaded += chunk.cell_count
        self.stats.bytes_fetched += chunk.encoded_bytes
        block = chunk.decode(type_)
        if isinstance(block, (DictionaryBlock, RunLengthBlock)):
            self.stats.rows_passed_encoded += len(block)
        else:
            self.stats.rows_decoded += len(block)
        return block

    def _lazy_block(self, stripe: Stripe, chunk: ColumnChunk, type_: Type) -> LazyBlock:
        return LazyBlock(
            stripe.row_count,
            lambda chunk=chunk, type_=type_: self._load_chunk(chunk, type_),
        )
