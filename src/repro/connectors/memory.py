"""In-memory connector: tables held as lists of pages.

The simplest complete connector — supports reads, writes, statistics
(computed on demand), and optional hash-partitioned layouts so tests can
exercise co-located joins without the heavier storage connectors.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog import (
    Column,
    QualifiedTableName,
    TableMetadata,
    TableStatistics,
    compute_column_statistics,
)
from repro.connectors.api import (
    Connector,
    ConnectorMetadata,
    ConnectorTableLayout,
    FixedSplitSource,
    Index,
    IteratorPageSource,
    PageSink,
    PageSource,
    Split,
    TablePartitioning,
)
from repro.catalog.schema import ColumnStatistics
from repro.connectors.predicate import TupleDomain
from repro.errors import TableNotFoundError
from repro.exec.page import DEFAULT_PAGE_ROWS, Page, page_from_rows
from repro.types import Type


@dataclass
class _MemoryTable:
    metadata: TableMetadata
    pages: list[Page] = field(default_factory=list)
    # Optional partitioning advertised through the layout API.
    partitioning: TablePartitioning | None = None

    @property
    def row_count(self) -> int:
        return sum(p.row_count for p in self.pages)


@dataclass(frozen=True)
class MemoryTableHandle:
    schema: str
    table: str


class MemoryMetadata(ConnectorMetadata):
    def __init__(self, connector: "MemoryConnector"):
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return sorted({h.schema for h in self._connector.tables})

    def list_tables(self, schema: str | None = None) -> list[str]:
        return sorted(
            h.table for h in self._connector.tables if schema in (None, h.schema)
        )

    def get_table_handle(self, schema: str, table: str) -> MemoryTableHandle | None:
        handle = MemoryTableHandle(schema, table)
        return handle if handle in self._connector.tables else None

    def get_table_metadata(self, handle: MemoryTableHandle) -> TableMetadata:
        return self._connector.table(handle).metadata

    def get_statistics(self, handle: MemoryTableHandle) -> TableStatistics:
        if not self._connector.statistics_enabled:
            return TableStatistics.empty()
        table = self._connector.table(handle)
        column_stats: dict[str, ColumnStatistics] = {}
        for i, column in enumerate(table.metadata.columns):
            values: list = []
            for page in table.pages:
                values.extend(page.block(i).to_values())
            column_stats[column.name] = compute_column_statistics(values)
        return TableStatistics(float(table.row_count), column_stats)

    def get_layouts(
        self,
        handle: MemoryTableHandle,
        constraint: TupleDomain,
        desired_columns: Sequence[str],
    ) -> list[ConnectorTableLayout]:
        table = self._connector.table(handle)
        return [
            ConnectorTableLayout(
                handle=handle,
                enforced_predicate=TupleDomain.all(),
                unenforced_predicate=constraint,
                partitioning=table.partitioning,
            )
        ]

    def create_table(self, metadata: TableMetadata) -> MemoryTableHandle:
        handle = MemoryTableHandle(metadata.name.schema, metadata.name.table)
        self._connector.tables[handle] = _MemoryTable(metadata)
        self.versions.bump_table(handle.schema, handle.table)
        return handle

    def begin_insert(self, handle: MemoryTableHandle) -> MemoryTableHandle:
        return handle

    def finish_insert(self, insert_handle: MemoryTableHandle, fragments: list) -> None:
        table = self._connector.table(insert_handle)
        with self._connector.lock:
            for pages in fragments:
                table.pages.extend(pages)
        self.versions.bump_table(insert_handle.schema, insert_handle.table)

    def drop_table(self, handle: MemoryTableHandle) -> None:
        self._connector.tables.pop(handle, None)
        self.versions.bump_table(handle.schema, handle.table)


class _MemorySink(PageSink):
    def __init__(self):
        self.pages: list[Page] = []

    def append(self, page: Page) -> None:
        self.pages.append(page)

    def finish(self) -> list[Page]:
        return self.pages


class _MemoryIndex(Index):
    def __init__(self, table: _MemoryTable, key_columns: Sequence[str], output_columns: Sequence[str]):
        meta = table.metadata
        key_idx = [meta.column_index(c) for c in key_columns]
        out_idx = [meta.column_index(c) for c in output_columns]
        self._map: dict[tuple, list[tuple]] = {}
        for page in table.pages:
            for row in page.rows():
                key = tuple(row[i] for i in key_idx)
                self._map.setdefault(key, []).append(tuple(row[i] for i in out_idx))

    def lookup(self, keys: list[tuple]) -> list[list[tuple]]:
        return [self._map.get(key, []) for key in keys]


class MemoryConnector(Connector):
    """Tables stored as pages in process memory."""

    name = "memory"

    def __init__(self, statistics_enabled: bool = True):
        self.tables: dict[MemoryTableHandle, _MemoryTable] = {}
        self.statistics_enabled = statistics_enabled
        self.lock = threading.Lock()
        self._metadata = MemoryMetadata(self)

    @property
    def metadata(self) -> MemoryMetadata:
        return self._metadata

    def table(self, handle: MemoryTableHandle) -> _MemoryTable:
        try:
            return self.tables[handle]
        except KeyError:
            raise TableNotFoundError(f"Table not found: {handle.schema}.{handle.table}")

    def split_source(self, layout: ConnectorTableLayout) -> FixedSplitSource:
        handle: MemoryTableHandle = layout.handle
        table = self.table(handle)
        splits = [
            Split(
                connector=self.name,
                payload=(handle, page_index),
                estimated_rows=page.row_count,
                estimated_bytes=page.size_bytes(),
            )
            for page_index, page in enumerate(table.pages)
        ]
        if not splits:
            # An empty table still needs one split so the scan operator runs.
            splits = [Split(connector=self.name, payload=(handle, None))]
        return FixedSplitSource(splits)

    def page_source(self, split: Split, columns: Sequence[str]) -> PageSource:
        handle, page_index = split.payload
        table = self.table(handle)
        if page_index is None:
            return IteratorPageSource(iter(()))
        page = table.pages[page_index]
        channels = [table.metadata.column_index(c) for c in columns]
        return IteratorPageSource(iter([page.select_channels(channels)]))

    def page_sink(self, insert_handle: MemoryTableHandle) -> _MemorySink:
        return _MemorySink()

    def get_index(self, handle, key_columns, output_columns) -> Index | None:
        return _MemoryIndex(self.table(handle), key_columns, output_columns)

    # -- convenience for tests / examples -----------------------------------

    def create_table_with_data(
        self,
        catalog: str,
        schema: str,
        table: str,
        columns: list[tuple[str, Type]],
        rows: list[tuple],
        partitioning: TablePartitioning | None = None,
    ) -> MemoryTableHandle:
        """Create a table and load row-oriented data, paged at 4K rows."""
        metadata = TableMetadata(
            QualifiedTableName(catalog, schema, table),
            tuple(Column(name, type_) for name, type_ in columns),
        )
        handle = self._metadata.create_table(metadata)
        types = [t for _, t in columns]
        stored = self.tables[handle]
        stored.partitioning = partitioning
        for start in range(0, len(rows), DEFAULT_PAGE_ROWS):
            chunk = rows[start : start + DEFAULT_PAGE_ROWS]
            stored.pages.append(page_from_rows(types, chunk))
        return handle
