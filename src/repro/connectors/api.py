"""The Connector API (paper Sec. III).

Four cooperating interfaces, exactly as the paper lays out:

- **Metadata API** (:class:`ConnectorMetadata`): tables, columns,
  statistics, and the data layouts the optimizer can exploit.
- **Data Location API** (:class:`SplitSource` via
  :meth:`Connector.split_source`): lazily enumerates *splits* — opaque
  handles to addressable chunks of data — in small batches
  (Sec. IV-D3 "Split Assignment").
- **Data Source API** (:class:`PageSource` via
  :meth:`Connector.page_source`): turns a split into a stream of
  columnar pages.
- **Data Sink API** (:class:`PageSink` via :meth:`Connector.page_sink`):
  accepts pages for writes (Sec. IV-E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.catalog import TableMetadata, TableStatistics
from repro.connectors.predicate import TupleDomain
from repro.exec.page import Page


@dataclass(frozen=True)
class Split:
    """An addressable chunk of data in an external storage system.

    ``addresses`` lists hosts that can serve the split locally; an empty
    tuple plus ``remotely_accessible=True`` means any worker may read it.
    The ``estimated_*`` fields feed the discrete-event cost model (our
    substitute for real cluster hardware, see DESIGN.md).
    """

    connector: str
    payload: object
    addresses: tuple[str, ...] = ()
    remotely_accessible: bool = True
    estimated_rows: int = 0
    estimated_bytes: int = 0
    # Simulated time to first byte for this split's storage system.
    read_latency_ms: float = 0.0
    # Runtime dynamic filters attached before assignment, as sorted
    # (column name, repro.exec.dynamic_filters.DynamicFilter) pairs.
    # Riding on the split keeps filtered reads a pure function of the
    # split itself, so task recovery's split-log replay stays bit-exact.
    dynamic_filters: tuple = ()


class SplitSource:
    """Lazy split enumeration (paper Sec. IV-D3).

    The coordinator asks for *small batches* of splits rather than the
    full list, which decouples query start-up from metadata enumeration
    and lets LIMIT queries finish before enumeration completes.
    """

    def get_next_batch(self, max_size: int) -> list[Split]:
        raise NotImplementedError

    def is_finished(self) -> bool:
        raise NotImplementedError


class FixedSplitSource(SplitSource):
    """A split source over a pre-computed list, still served in batches."""

    def __init__(self, splits: Sequence[Split]):
        self._splits = list(splits)
        self._offset = 0

    def get_next_batch(self, max_size: int) -> list[Split]:
        batch = self._splits[self._offset : self._offset + max_size]
        self._offset += len(batch)
        return batch

    def is_finished(self) -> bool:
        return self._offset >= len(self._splits)


class LazySplitSource(SplitSource):
    """Wraps a generator of splits; enumeration work happens per batch."""

    def __init__(self, generator: Iterator[Split]):
        self._generator = generator
        self._finished = False

    def get_next_batch(self, max_size: int) -> list[Split]:
        batch: list[Split] = []
        for _ in range(max_size):
            try:
                batch.append(next(self._generator))
            except StopIteration:
                self._finished = True
                break
        return batch

    def is_finished(self) -> bool:
        return self._finished


class PageSource:
    """A stream of pages for one split (Data Source API)."""

    completed_rows: int = 0
    completed_bytes: int = 0

    def next_page(self) -> Optional[Page]:
        """Return the next page, or None when the split is exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class IteratorPageSource(PageSource):
    """Adapts a python iterator of pages to the PageSource interface."""

    def __init__(self, pages: Iterator[Page]):
        self._pages = iter(pages)
        self.completed_rows = 0
        self.completed_bytes = 0

    def next_page(self) -> Optional[Page]:
        try:
            page = next(self._pages)
        except StopIteration:
            return None
        self.completed_rows += page.row_count
        self.completed_bytes += page.size_bytes()
        return page


class PageSink:
    """Accepts pages for a write (Data Sink API)."""

    def append(self, page: Page) -> None:
        raise NotImplementedError

    def finish(self) -> object:
        """Commit and return a connector-specific completion fragment."""
        raise NotImplementedError

    def abort(self) -> None:
        pass


@dataclass(frozen=True)
class TablePartitioning:
    """How a layout's data is partitioned across nodes.

    When two joined tables share a partitioning on the join columns, the
    optimizer plans a co-located join and elides the shuffle
    (paper Sec. IV-C3 "Data Layout Properties").
    """

    columns: tuple[str, ...]
    partition_count: int
    # Partition -> node assignment; None means partitions are not pinned.
    node_assignment: Optional[tuple[str, ...]] = None
    # Identifies compatible partitioning functions across tables.
    partitioning_handle: str = "hash"

    def is_compatible_with(self, other: "TablePartitioning") -> bool:
        return (
            self.partitioning_handle == other.partitioning_handle
            and self.partition_count == other.partition_count
            and len(self.columns) == len(other.columns)
            and self.node_assignment == other.node_assignment
        )


@dataclass(frozen=True)
class ConnectorTableLayout:
    """One physical layout of a table (paper Sec. IV-C1).

    Connectors can return multiple layouts for a single table, each with
    different properties; the optimizer selects the most efficient for
    the query.
    """

    handle: object
    # Constraint guaranteed by the layout (rows outside never returned).
    enforced_predicate: TupleDomain = field(default_factory=TupleDomain.all)
    # Constraint the engine must still apply.
    unenforced_predicate: TupleDomain = field(default_factory=TupleDomain.all)
    partitioning: Optional[TablePartitioning] = None
    sorted_by: tuple[str, ...] = ()
    # Column sets with index support (enables index nested-loop joins).
    indexes: tuple[tuple[str, ...], ...] = ()
    # Estimated fraction of table rows this layout will scan (after pruning).
    scan_fraction: float = 1.0


class Index:
    """Point-lookup interface backing index nested-loop joins (Sec. IV-C1)."""

    def lookup(self, keys: list[tuple]) -> list[list[tuple]]:
        """For each key tuple return the matching output-row tuples."""
        raise NotImplementedError


class MetadataVersions:
    """Monotonic version counters driving cache invalidation.

    Every DDL or committed insert bumps both a per-table counter and the
    catalog-wide counter, so the coordinator caches (metadata, plan,
    result — see src/repro/cache/) can validate an entry with a single
    integer comparison instead of re-reading connector state.
    """

    def __init__(self) -> None:
        self.catalog_version = 0
        self._tables: dict[tuple[str, str], int] = {}

    def table_version(self, schema: str, table: str) -> int:
        return self._tables.get((schema, table), 0)

    def bump_table(self, schema: str, table: str) -> None:
        key = (schema, table)
        self._tables[key] = self._tables.get(key, 0) + 1
        self.catalog_version += 1


class ConnectorMetadata:
    """Metadata API: schema, statistics, and layout discovery."""

    @property
    def versions(self) -> MetadataVersions:
        """Lazily-created per-connector version counters. Read-only
        connectors never bump them, so their tables stay at version 0."""
        versions = self.__dict__.get("_cache_versions")
        if versions is None:
            versions = self.__dict__["_cache_versions"] = MetadataVersions()
        return versions

    def list_schemas(self) -> list[str]:
        raise NotImplementedError

    def list_tables(self, schema: str | None = None) -> list[str]:
        raise NotImplementedError

    def get_table_handle(self, schema: str, table: str) -> object | None:
        raise NotImplementedError

    def get_table_metadata(self, handle: object) -> TableMetadata:
        raise NotImplementedError

    def get_statistics(self, handle: object) -> TableStatistics:
        """Table statistics; empty() when the connector has none."""
        return TableStatistics.empty()

    def get_layouts(
        self, handle: object, constraint: TupleDomain, desired_columns: Sequence[str]
    ) -> list[ConnectorTableLayout]:
        raise NotImplementedError

    # -- writes ------------------------------------------------------------

    def create_table(self, metadata: TableMetadata) -> object:
        raise NotImplementedError("connector does not support CREATE TABLE")

    def begin_insert(self, handle: object) -> object:
        raise NotImplementedError("connector does not support INSERT")

    def finish_insert(self, insert_handle: object, fragments: list[object]) -> None:
        raise NotImplementedError

    def drop_table(self, handle: object) -> None:
        raise NotImplementedError("connector does not support DROP TABLE")


class Connector:
    """A plugin that makes one data source queryable (paper Sec. III)."""

    #: connector name used in error messages and EXPLAIN output
    name: str = "connector"

    @property
    def metadata(self) -> ConnectorMetadata:
        raise NotImplementedError

    def split_source(self, layout: ConnectorTableLayout) -> SplitSource:
        raise NotImplementedError

    def page_source(self, split: Split, columns: Sequence[str]) -> PageSource:
        raise NotImplementedError

    def page_sink(self, insert_handle: object) -> PageSink:
        raise NotImplementedError("connector does not support writes")

    def get_index(
        self, handle: object, key_columns: Sequence[str], output_columns: Sequence[str]
    ) -> Index | None:
        """Return an Index for key_columns, or None if unsupported."""
        return None

    def split_cache_key(self, split: Split) -> object | None:
        """Stable identity of the immutable storage unit behind a split
        (Hive file path, Raptor shard id), or None when the connector's
        splits have no cacheable identity. Keys must never be reused for
        different bytes — the worker stripe cache relies on that to stay
        coherent without an invalidation protocol."""
        return None

    def prune_split(self, split: Split, filters: dict) -> bool:
        """True when the given runtime dynamic filters (column name ->
        DynamicFilter) prove the split holds no matching rows — e.g. a
        Hive partition value or every Raptor shard stripe falls outside
        a filter's domain. Must be conservative: only prune on proof."""
        return False

    # Characteristics used by the simulator's cost model.
    #: simulated per-split time-to-first-byte (remote storage pays more)
    base_read_latency_ms: float = 0.0
    #: simulated sequential read bandwidth per task, bytes per ms
    read_bandwidth_bytes_per_ms: float = float("inf")
