"""Stream connector: a Kafka-like append-only topic source.

The paper (Sec. I) lists stream processing systems such as Kafka among
the data sources Presto federates. Topics are partitioned append-only
logs; each message carries an offset, a timestamp, and typed payload
columns. Every table exposes the hidden columns ``_partition``,
``_offset`` and ``_timestamp`` alongside the declared schema, and scans
can be bounded by offset/timestamp predicates (enforced per partition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog import (
    Column,
    QualifiedTableName,
    TableMetadata,
    TableStatistics,
)
from repro.connectors.api import (
    Connector,
    ConnectorMetadata,
    ConnectorTableLayout,
    FixedSplitSource,
    IteratorPageSource,
    PageSource,
    Split,
)
from repro.connectors.predicate import TupleDomain
from repro.errors import TableNotFoundError
from repro.exec.page import DEFAULT_PAGE_ROWS, page_from_rows
from repro.types import BIGINT, TIMESTAMP, Type

HIDDEN_COLUMNS = [
    Column("_partition", BIGINT, hidden=False),
    Column("_offset", BIGINT, hidden=False),
    Column("_timestamp", TIMESTAMP, hidden=False),
]


@dataclass
class Topic:
    name: str
    schema: list[tuple[str, Type]]
    # One message list per partition: (offset, timestamp, *payload).
    partitions: list[list[tuple]] = field(default_factory=list)

    def append(self, partition: int, timestamp: int, values: tuple) -> int:
        log = self.partitions[partition]
        offset = len(log)
        log.append((offset, timestamp) + tuple(values))
        return offset


@dataclass(frozen=True)
class StreamTableHandle:
    topic: str


class StreamMetadata(ConnectorMetadata):
    def __init__(self, connector: "StreamConnector"):
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return ["default"]

    def list_tables(self, schema: str | None = None) -> list[str]:
        return sorted(self._connector.topics)

    def get_table_handle(self, schema: str, table: str):
        if table in self._connector.topics:
            return StreamTableHandle(table)
        return None

    def get_table_metadata(self, handle: StreamTableHandle) -> TableMetadata:
        topic = self._connector.topic(handle.topic)
        columns = list(HIDDEN_COLUMNS) + [Column(n, t) for n, t in topic.schema]
        return TableMetadata(
            QualifiedTableName(self._connector.catalog_name, "default", handle.topic),
            tuple(columns),
        )

    def get_statistics(self, handle: StreamTableHandle) -> TableStatistics:
        topic = self._connector.topic(handle.topic)
        total = sum(len(p) for p in topic.partitions)
        return TableStatistics(float(total), {})

    def get_layouts(self, handle, constraint: TupleDomain, desired_columns):
        enforced = constraint.filter_columns({"_partition", "_offset", "_timestamp"})
        unenforced = TupleDomain(
            {
                c: d
                for c, d in constraint.domains.items()
                if c not in ("_partition", "_offset", "_timestamp")
            }
        )
        return [
            ConnectorTableLayout(
                handle=(handle, enforced),
                enforced_predicate=enforced,
                unenforced_predicate=unenforced,
            )
        ]


class StreamConnector(Connector):
    name = "stream"

    base_read_latency_ms = 5.0
    read_bandwidth_bytes_per_ms = 512 * 1024

    def __init__(self, catalog_name: str = "stream", partitions_per_topic: int = 4):
        self.catalog_name = catalog_name
        self.partitions_per_topic = partitions_per_topic
        self.topics: dict[str, Topic] = {}
        self._metadata = StreamMetadata(self)

    @property
    def metadata(self) -> StreamMetadata:
        return self._metadata

    # -- producer API -------------------------------------------------------

    def create_topic(self, name: str, schema: Sequence[tuple[str, Type]]) -> Topic:
        topic = Topic(
            name, list(schema), [[] for _ in range(self.partitions_per_topic)]
        )
        self.topics[name] = topic
        return topic

    def produce(self, topic_name: str, timestamp: int, values: tuple,
                partition: int | None = None) -> int:
        topic = self.topic(topic_name)
        if partition is None:
            from repro.connectors.hashing import stable_hash

            partition = stable_hash(values[0] if values else timestamp) % len(
                topic.partitions
            )
        return topic.append(partition, timestamp, values)

    def topic(self, name: str) -> Topic:
        try:
            return self.topics[name]
        except KeyError:
            raise TableNotFoundError(f"Topic not found: {name}")

    # -- Connector API ----------------------------------------------------------

    def split_source(self, layout: ConnectorTableLayout) -> FixedSplitSource:
        handle, enforced = layout.handle
        topic = self.topic(handle.topic)
        partition_domain = enforced.domain("_partition")
        splits = []
        for partition_id, log in enumerate(topic.partitions):
            if not partition_domain.contains_value(partition_id):
                continue
            splits.append(
                Split(
                    connector=self.catalog_name,
                    payload=(handle.topic, partition_id, enforced),
                    estimated_rows=len(log),
                    estimated_bytes=len(log) * 64,
                    read_latency_ms=self.base_read_latency_ms,
                )
            )
        if not splits:
            splits = [Split(connector=self.catalog_name, payload=(handle.topic, None, None))]
        return FixedSplitSource(splits)

    def page_source(self, split: Split, columns: Sequence[str]) -> PageSource:
        topic_name, partition_id, enforced = split.payload
        if partition_id is None:
            return IteratorPageSource(iter(()))
        topic = self.topic(topic_name)
        log = topic.partitions[partition_id]
        offset_domain = enforced.domain("_offset")
        ts_domain = enforced.domain("_timestamp")
        column_names = ["_partition", "_offset", "_timestamp"] + [n for n, _ in topic.schema]
        types = {"_partition": BIGINT, "_offset": BIGINT, "_timestamp": TIMESTAMP}
        types.update(dict(topic.schema))
        rows = []
        for offset, timestamp, *payload in log:
            if not offset_domain.contains_value(offset):
                continue
            if not ts_domain.contains_value(timestamp):
                continue
            full = (partition_id, offset, timestamp, *payload)
            rows.append(full)
        indexes = [column_names.index(c) for c in columns]
        out_types = [types[c] for c in columns]
        pages = []
        for start in range(0, len(rows), DEFAULT_PAGE_ROWS):
            chunk = rows[start : start + DEFAULT_PAGE_ROWS]
            pages.append(
                page_from_rows(out_types, [tuple(r[i] for i in indexes) for r in chunk])
            )
        return IteratorPageSource(iter(pages))
