"""Connector implementations and the Connector API.

The Connector API (paper Sec. III) is composed of four parts: the
Metadata API, Data Location API, Data Source API, and Data Sink API.
Connectors shipped with the reproduction:

- ``memory``   — in-memory tables (tests, examples, quickstart)
- ``tpch``     — on-the-fly TPC-H-style data generator (benchmarks)
- ``hive``     — simulated shared-storage warehouse: distributed
  filesystem + metastore + ORC-like columnar files
- ``raptor``   — shared-nothing storage engine (A/B testing use case)
- ``shardedsql`` — sharded row-store with shard-level predicate pushdown
  and secondary indexes (Developer/Advertiser Analytics use case)
- ``stream``   — Kafka-like append-only topic source
"""
