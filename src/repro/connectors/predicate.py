"""Tuple domains: the constraint language connectors understand.

The optimizer converts WHERE conjuncts into per-column :class:`Domain`
objects (unions of ranges and/or discrete values) so connectors can
prune partitions, shards, or file stripes (paper Sec. IV-C2). This
mirrors Presto's ``TupleDomain``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


_INF = object()  # sentinel for unbounded range ends


@dataclass(frozen=True)
class Range:
    """A contiguous interval over an orderable type.

    ``low``/``high`` of None mean unbounded. Bounds are inclusive when the
    corresponding ``*_inclusive`` flag is set.
    """

    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    @staticmethod
    def equal(value) -> "Range":
        return Range(value, value, True, True)

    @staticmethod
    def greater_than(value, inclusive: bool = False) -> "Range":
        return Range(value, None, inclusive, True)

    @staticmethod
    def less_than(value, inclusive: bool = False) -> "Range":
        return Range(None, value, True, inclusive)

    def is_single_value(self) -> bool:
        return (
            self.low is not None
            and self.low == self.high
            and self.low_inclusive
            and self.high_inclusive
        )

    def contains_value(self, value) -> bool:
        if value is None:
            return False
        if self.low is not None:
            if value < self.low:
                return False
            if value == self.low and not self.low_inclusive:
                return False
        if self.high is not None:
            if value > self.high:
                return False
            if value == self.high and not self.high_inclusive:
                return False
        return True

    def overlaps(self, other: "Range") -> bool:
        if self.low is not None and other.high is not None:
            if self.low > other.high:
                return False
            if self.low == other.high and not (self.low_inclusive and other.high_inclusive):
                return False
        if self.high is not None and other.low is not None:
            if other.low > self.high:
                return False
            if other.low == self.high and not (self.high_inclusive and other.low_inclusive):
                return False
        return True

    def intersect(self, other: "Range") -> "Range | None":
        if not self.overlaps(other):
            return None
        low, low_inc = self.low, self.low_inclusive
        if other.low is not None and (low is None or other.low > low):
            low, low_inc = other.low, other.low_inclusive
        elif other.low is not None and other.low == low:
            low_inc = low_inc and other.low_inclusive
        high, high_inc = self.high, self.high_inclusive
        if other.high is not None and (high is None or other.high < high):
            high, high_inc = other.high, other.high_inclusive
        elif other.high is not None and other.high == high:
            high_inc = high_inc and other.high_inclusive
        return Range(low, high, low_inc, high_inc)


@dataclass(frozen=True)
class Domain:
    """The set of allowed values for one column: ranges plus nullability."""

    ranges: tuple[Range, ...] = (Range(),)  # default: all values
    null_allowed: bool = True

    # -- constructors -------------------------------------------------------

    @staticmethod
    def all() -> "Domain":
        return Domain((Range(),), True)

    @staticmethod
    def none() -> "Domain":
        return Domain((), False)

    @staticmethod
    def single_value(value) -> "Domain":
        return Domain((Range.equal(value),), False)

    @staticmethod
    def multiple_values(values: Iterable) -> "Domain":
        return Domain(tuple(Range.equal(v) for v in sorted(set(values))), False)

    @staticmethod
    def range(range_: Range) -> "Domain":
        return Domain((range_,), False)

    @staticmethod
    def only_null() -> "Domain":
        return Domain((), True)

    @staticmethod
    def not_null() -> "Domain":
        return Domain((Range(),), False)

    # -- predicates ----------------------------------------------------------

    def is_all(self) -> bool:
        return self.null_allowed and len(self.ranges) == 1 and self.ranges[0] == Range()

    def is_none(self) -> bool:
        return not self.null_allowed and not self.ranges

    def contains_value(self, value) -> bool:
        if value is None:
            return self.null_allowed
        return any(r.contains_value(value) for r in self.ranges)

    def overlaps_range(self, other: Range) -> bool:
        """True if any allowed value could fall in ``other`` (stripe skipping)."""
        return any(r.overlaps(other) for r in self.ranges)

    def single_values(self) -> list | None:
        """If the domain is a finite value set, return it; else None."""
        if self.null_allowed:
            return None
        values = []
        for r in self.ranges:
            if not r.is_single_value():
                return None
            values.append(r.low)
        return values

    def intersect(self, other: "Domain") -> "Domain":
        ranges = []
        for a in self.ranges:
            for b in other.ranges:
                merged = a.intersect(b)
                if merged is not None:
                    ranges.append(merged)
        return Domain(tuple(ranges), self.null_allowed and other.null_allowed)

    def union(self, other: "Domain") -> "Domain":
        # Kept simple: concatenate range lists (no normalization needed for
        # pruning correctness, only precision).
        return Domain(
            tuple(self.ranges) + tuple(other.ranges),
            self.null_allowed or other.null_allowed,
        )


class TupleDomain:
    """A conjunction of per-column domains. Immutable."""

    __slots__ = ("domains", "_none")

    def __init__(self, domains: dict[str, Domain] | None = None, none: bool = False):
        self.domains: dict[str, Domain] = dict(domains or {})
        self._none = none or any(d.is_none() for d in self.domains.values())

    @staticmethod
    def all() -> "TupleDomain":
        return TupleDomain()

    @staticmethod
    def none() -> "TupleDomain":
        return TupleDomain(none=True)

    def is_all(self) -> bool:
        return not self._none and not self.domains

    def is_none(self) -> bool:
        return self._none

    def domain(self, column: str) -> Domain:
        if self._none:
            return Domain.none()
        return self.domains.get(column, Domain.all())

    def intersect(self, other: "TupleDomain") -> "TupleDomain":
        if self._none or other._none:
            return TupleDomain.none()
        merged = dict(self.domains)
        for column, domain in other.domains.items():
            if column in merged:
                merged[column] = merged[column].intersect(domain)
            else:
                merged[column] = domain
        return TupleDomain(merged)

    def contains_row(self, row: dict[str, object]) -> bool:
        """True if a row (column -> value) satisfies every domain.

        Columns missing from ``row`` are unconstrained-by-absence: they
        pass. Used for partition and shard pruning.
        """
        if self._none:
            return False
        for column, domain in self.domains.items():
            if column in row and not domain.contains_value(row[column]):
                return False
        return True

    def filter_columns(self, columns: set[str]) -> "TupleDomain":
        """Keep only domains on the given columns."""
        if self._none:
            return TupleDomain.none()
        return TupleDomain({c: d for c, d in self.domains.items() if c in columns})

    def __eq__(self, other) -> bool:
        if not isinstance(other, TupleDomain):
            return NotImplemented
        return self._none == other._none and self.domains == other.domains

    def __repr__(self) -> str:
        if self._none:
            return "TupleDomain.none()"
        if not self.domains:
            return "TupleDomain.all()"
        return f"TupleDomain({self.domains!r})"
