"""Raptor connector: a shared-nothing storage engine (paper Sec. IV-D2,
VI-A).

"Raptor is a storage engine optimized for Presto with a shared-nothing
architecture that stores ORC files on flash disks and metadata in
MySQL." Here: shards are ORC-like files pinned to specific worker
hosts; shard metadata lives in an in-memory "MySQL" table. Tables may
be *bucketed* — hash-distributed on bucket columns across a fixed
bucket count with a stable bucket→host assignment — which the optimizer
exploits for co-located joins (Sec. IV-C3), and shards may be sorted.

Reads are node-local: splits carry a single address and are not
remotely accessible, so the task scheduler must co-locate work with
storage. Latency is low (local flash), unlike the shared-storage Hive
deployment — the contrast Fig. 6 measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog import (
    Column,
    QualifiedTableName,
    TableMetadata,
    TableStatistics,
    compute_column_statistics,
)
from repro.connectors.api import (
    Connector,
    ConnectorMetadata,
    ConnectorTableLayout,
    FixedSplitSource,
    IteratorPageSource,
    PageSink,
    PageSource,
    Split,
    TablePartitioning,
)
from repro.connectors.hive.format import OrcLikeFile, OrcReader, OrcWriter, ReadStats
from repro.connectors.predicate import TupleDomain
from repro.errors import TableNotFoundError
from repro.exec import kernels
from repro.exec.page import Page

import numpy as np


@dataclass
class RaptorShard:
    shard_id: int
    bucket: Optional[int]
    host: str
    file: OrcLikeFile


@dataclass
class RaptorTable:
    schema: str
    name: str
    columns: list[Column]
    bucket_columns: list[str] = field(default_factory=list)
    bucket_count: int = 0
    sorted_by: list[str] = field(default_factory=list)
    shards: list[RaptorShard] = field(default_factory=list)
    statistics: TableStatistics = field(default_factory=TableStatistics.empty)


@dataclass(frozen=True)
class RaptorTableHandle:
    schema: str
    table: str


class RaptorMetadata(ConnectorMetadata):
    def __init__(self, connector: "RaptorConnector"):
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return sorted({t.schema for t in self._connector.tables.values()})

    def list_tables(self, schema: str | None = None) -> list[str]:
        return sorted(
            t.name
            for t in self._connector.tables.values()
            if schema in (None, t.schema)
        )

    def get_table_handle(self, schema: str, table: str):
        handle = RaptorTableHandle(schema, table)
        return handle if handle in self._connector.tables else None

    def get_table_metadata(self, handle: RaptorTableHandle) -> TableMetadata:
        table = self._connector.table(handle)
        return TableMetadata(
            QualifiedTableName(self._connector.catalog_name, handle.schema, handle.table),
            tuple(table.columns),
        )

    def get_statistics(self, handle: RaptorTableHandle) -> TableStatistics:
        if not self._connector.statistics_enabled:
            return TableStatistics.empty()
        return self._connector.table(handle).statistics

    def get_layouts(self, handle, constraint: TupleDomain, desired_columns):
        table = self._connector.table(handle)
        partitioning = None
        if table.bucket_columns and table.bucket_count:
            hosts = self._connector.hosts
            assignment = tuple(
                hosts[bucket % len(hosts)] for bucket in range(table.bucket_count)
            )
            partitioning = TablePartitioning(
                tuple(table.bucket_columns),
                table.bucket_count,
                node_assignment=assignment,
                partitioning_handle=f"raptor-bucket-{table.bucket_count}",
            )
        return [
            ConnectorTableLayout(
                handle=handle,
                enforced_predicate=TupleDomain.all(),
                unenforced_predicate=constraint,
                partitioning=partitioning,
                sorted_by=tuple(table.sorted_by),
            )
        ]

    def create_table(self, metadata: TableMetadata) -> RaptorTableHandle:
        properties = metadata.properties or {}

        def name_list(value) -> list[str]:
            if value is None:
                return []
            return [value] if isinstance(value, str) else list(value)

        table = RaptorTable(
            schema=metadata.name.schema,
            name=metadata.name.table,
            columns=list(metadata.columns),
            bucket_columns=name_list(properties.get("bucketed_by")),
            bucket_count=int(properties.get("bucket_count", 0) or 0),
            sorted_by=name_list(properties.get("sorted_by")),
        )
        handle = RaptorTableHandle(metadata.name.schema, metadata.name.table)
        self._connector.tables[handle] = table
        self.versions.bump_table(handle.schema, handle.table)
        return handle

    def begin_insert(self, handle: RaptorTableHandle) -> RaptorTableHandle:
        return handle

    def finish_insert(self, insert_handle: RaptorTableHandle, fragments: list) -> None:
        table = self._connector.table(insert_handle)
        for shards in fragments:
            table.shards.extend(shards)
        self.versions.bump_table(insert_handle.schema, insert_handle.table)
        if self._connector.auto_analyze:
            self._connector.analyze_table(insert_handle)

    def drop_table(self, handle: RaptorTableHandle) -> None:
        self._connector.tables.pop(handle, None)
        self.versions.bump_table(handle.schema, handle.table)


class RaptorPageSink(PageSink):
    def __init__(self, connector: "RaptorConnector", handle: RaptorTableHandle):
        self.connector = connector
        self.handle = handle
        self.table = connector.table(handle)
        self.schema = [(c.name, c.type) for c in self.table.columns]
        self.column_names = [c.name for c in self.table.columns]
        self._rows_by_bucket: dict[Optional[int], list[tuple]] = {}

    def append(self, page: Page) -> None:
        """Batch ingest: columns materialize once via ``to_values`` (a
        batch gather even for dictionary/RLE blocks) and bucket
        assignment hashes whole pages through :func:`kernels.hash_rows`
        (bit-exact with ``stable_bucket``). Buckets are visited in
        first-occurrence order, so shard ids are later assigned exactly
        as the per-row loop would have."""
        table = self.table
        if page.column_count:
            rows = list(zip(*(block.to_values() for block in page.blocks)))
        else:
            rows = [()] * page.row_count
        if table.bucket_columns and table.bucket_count:
            indexes = [self.column_names.index(c) for c in table.bucket_columns]
            hashes = kernels.hash_rows(
                [page.block(i) for i in indexes], page.row_count
            )
            if hashes is not None:
                buckets = (hashes % np.uint64(table.bucket_count)).astype(np.int64)
                uniq, first = np.unique(buckets, return_index=True)
                for bucket in uniq[np.argsort(first, kind="stable")]:
                    positions = np.flatnonzero(buckets == bucket)
                    self._rows_by_bucket.setdefault(int(bucket), []).extend(
                        rows[position] for position in positions
                    )
                return
            from repro.connectors.hashing import stable_bucket

            # row-path: object-typed bucket keys or REPRO_KERNELS=row
            for row in rows:
                bucket = stable_bucket((row[i] for i in indexes), table.bucket_count)
                self._rows_by_bucket.setdefault(bucket, []).append(row)
        else:
            self._rows_by_bucket.setdefault(None, []).extend(rows)

    def finish(self) -> list[RaptorShard]:
        shards = []
        sort_indexes = [self.column_names.index(c) for c in self.table.sorted_by]
        max_rows = self.connector.max_rows_per_shard
        for bucket, rows in self._rows_by_bucket.items():
            if sort_indexes:
                rows = sorted(
                    rows,
                    key=lambda r: tuple(
                        (r[i] is None, r[i]) for i in sort_indexes
                    ),
                )
            for start in range(0, max(1, len(rows)), max_rows):
                chunk = rows[start : start + max_rows]
                writer = OrcWriter(self.schema, stripe_rows=self.connector.stripe_rows)
                writer.add_rows(chunk)
                file = writer.finish()
                shard_id = next(self.connector.shard_counter)
                hosts = self.connector.hosts
                if bucket is not None:
                    host = hosts[bucket % len(hosts)]
                else:
                    host = hosts[shard_id % len(hosts)]
                shards.append(RaptorShard(shard_id, bucket, host, file))
        return shards


class RaptorConnector(Connector):
    name = "raptor"

    # Local flash: negligible time-to-first-byte, high bandwidth.
    base_read_latency_ms = 0.3
    read_bandwidth_bytes_per_ms = 2 * 1024 * 1024

    def __init__(
        self,
        hosts: Sequence[str] = ("localhost",),
        catalog_name: str = "raptor",
        statistics_enabled: bool = True,
        stripe_rows: int = 10_000,
        auto_analyze: bool = True,
        max_rows_per_shard: int = 2_048,
    ):
        self.max_rows_per_shard = max_rows_per_shard
        self.hosts = list(hosts)
        self.catalog_name = catalog_name
        self.statistics_enabled = statistics_enabled
        self.stripe_rows = stripe_rows
        self.auto_analyze = auto_analyze
        self.tables: dict[RaptorTableHandle, RaptorTable] = {}
        self.shard_counter = itertools.count()
        self.read_stats = ReadStats()
        self._metadata = RaptorMetadata(self)

    @property
    def metadata(self) -> RaptorMetadata:
        return self._metadata

    def table(self, handle: RaptorTableHandle) -> RaptorTable:
        try:
            return self.tables[handle]
        except KeyError:
            raise TableNotFoundError(f"Table not found: {handle.schema}.{handle.table}")

    def split_source(self, layout: ConnectorTableLayout) -> FixedSplitSource:
        handle: RaptorTableHandle = layout.handle
        table = self.table(handle)
        splits = [
            Split(
                connector=self.catalog_name,
                payload=(handle, shard.shard_id, layout.unenforced_predicate),
                addresses=(shard.host,),
                remotely_accessible=False,  # shared-nothing: read locally
                estimated_rows=shard.file.row_count,
                estimated_bytes=shard.file.size_bytes(),
                read_latency_ms=self.base_read_latency_ms,
            )
            for shard in table.shards
        ]
        if not splits:
            splits = [
                Split(connector=self.catalog_name, payload=(handle, None, None))
            ]
        return FixedSplitSource(splits)

    def page_source(self, split: Split, columns: Sequence[str]) -> PageSource:
        handle, shard_id, constraint = split.payload
        if shard_id is None:
            return IteratorPageSource(iter(()))
        table = self.table(handle)
        shard = next(s for s in table.shards if s.shard_id == shard_id)
        if split.dynamic_filters:
            # Fold runtime dynamic-filter domains into the stripe-skipping
            # constraint (same mechanism as Hive stripe pruning).
            from repro.exec.dynamic_filters import constraint_from

            df_constraint = constraint_from(split.dynamic_filters)
            constraint = (
                df_constraint if constraint is None else constraint.intersect(df_constraint)
            )
        reader = OrcReader(
            shard.file, columns, constraint, lazy=True, stats=self.read_stats
        )
        return IteratorPageSource(reader.pages())

    def split_cache_key(self, split: Split) -> object | None:
        # Shard ids are allocated once and never reused; the placeholder
        # split for an empty table (shard_id None) is not cacheable.
        return split.payload[1]

    def prune_split(self, split: Split, filters: dict) -> bool:
        """Prune a shard when every stripe's statistics (min/max + Bloom)
        prove it holds no build-side join keys."""
        handle, shard_id, _constraint = split.payload
        if shard_id is None:
            return False
        table = self.table(handle)
        shard = next((s for s in table.shards if s.shard_id == shard_id), None)
        if shard is None or not shard.file.stripes:
            return False
        for column, filter_ in filters.items():
            chunks = [stripe.columns.get(column) for stripe in shard.file.stripes]
            if all(
                chunk is not None and not filter_.might_match_chunk(chunk)
                for chunk in chunks
            ):
                return True
        return False

    def page_sink(self, insert_handle: RaptorTableHandle) -> RaptorPageSink:
        return RaptorPageSink(self, insert_handle)

    def analyze_table(self, handle: RaptorTableHandle) -> TableStatistics:
        table = self.table(handle)
        columns = [c.name for c in table.columns]
        values: dict[str, list] = {c: [] for c in columns}
        row_count = 0
        for shard in table.shards:
            reader = OrcReader(shard.file, columns, lazy=False)
            for page in reader.pages():
                row_count += page.row_count
                for i, name in enumerate(columns):
                    values[name].extend(page.block(i).to_values())
        table.statistics = TableStatistics(
            float(row_count),
            {name: compute_column_statistics(vals) for name, vals in values.items()},
        )
        self._metadata.versions.bump_table(handle.schema, handle.table)
        return table.statistics
