"""TPC-H-style data generator connector.

Generates the classic warehouse star schema deterministically and
on-the-fly: any split can synthesize its rows independently from the
row index, so scans parallelize without materialized storage. This is
the reproduction's stand-in for the paper's TPC-DS @ 30 TB corpus
(Fig. 6) — scaled down for a Python substrate, same relational shape
(fact tables joined to dimensions, skewed value distributions,
selective predicates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.catalog import (
    Column,
    ColumnStatistics,
    QualifiedTableName,
    TableMetadata,
    TableStatistics,
)
from repro.connectors.api import (
    Connector,
    ConnectorMetadata,
    ConnectorTableLayout,
    FixedSplitSource,
    IteratorPageSource,
    PageSource,
    Split,
)
from repro.connectors.predicate import TupleDomain
from repro.errors import TableNotFoundError
from repro.exec.blocks import make_block
from repro.exec.page import Page
from repro.types import BIGINT, DATE, DOUBLE, VARCHAR

_SCHEMA = "tiny"

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
SHIP_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]
SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "TAKE BACK RETURN", "NONE"]
PART_TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]

# Epoch-day bounds of the order date range (1992-01-01 .. 1998-08-02).
MIN_ORDER_DATE = 8035
MAX_ORDER_DATE = 10440

_ROWS_PER_SPLIT = 8192


def _mix(value: int) -> int:
    """SplitMix64 — deterministic per-row randomness."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _rand(key: int, salt: int, modulus: int) -> int:
    return _mix(key * 1000003 + salt) % modulus


@dataclass(frozen=True)
class TpchTableHandle:
    table: str


class TpchMetadata(ConnectorMetadata):
    def __init__(self, connector: "TpchConnector"):
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return [_SCHEMA]

    def list_tables(self, schema: str | None = None) -> list[str]:
        return sorted(self._connector.row_counts)

    def get_table_handle(self, schema: str, table: str) -> TpchTableHandle | None:
        if table in self._connector.row_counts:
            return TpchTableHandle(table)
        return None

    def get_table_metadata(self, handle: TpchTableHandle) -> TableMetadata:
        columns = self._connector.columns(handle.table)
        return TableMetadata(
            QualifiedTableName("tpch", _SCHEMA, handle.table), tuple(columns)
        )

    def get_statistics(self, handle: TpchTableHandle) -> TableStatistics:
        if not self._connector.statistics_enabled:
            return TableStatistics.empty()
        return self._connector.statistics(handle.table)

    def get_layouts(self, handle, constraint: TupleDomain, desired_columns):
        return [
            ConnectorTableLayout(
                handle=handle,
                enforced_predicate=TupleDomain.all(),
                unenforced_predicate=constraint,
            )
        ]


class TpchConnector(Connector):
    """Scale-factor-parameterized generator for the TPC-H schema."""

    name = "tpch"

    _COLUMNS = {
        "region": [("regionkey", BIGINT), ("name", VARCHAR)],
        "nation": [("nationkey", BIGINT), ("name", VARCHAR), ("regionkey", BIGINT)],
        "supplier": [
            ("suppkey", BIGINT), ("name", VARCHAR), ("nationkey", BIGINT),
            ("acctbal", DOUBLE),
        ],
        "customer": [
            ("custkey", BIGINT), ("name", VARCHAR), ("nationkey", BIGINT),
            ("mktsegment", VARCHAR), ("acctbal", DOUBLE),
        ],
        "part": [
            ("partkey", BIGINT), ("name", VARCHAR), ("brand", VARCHAR),
            ("type", VARCHAR), ("size", BIGINT), ("retailprice", DOUBLE),
        ],
        "partsupp": [
            ("partkey", BIGINT), ("suppkey", BIGINT), ("availqty", BIGINT),
            ("supplycost", DOUBLE),
        ],
        "orders": [
            ("orderkey", BIGINT), ("custkey", BIGINT), ("orderstatus", VARCHAR),
            ("totalprice", DOUBLE), ("orderdate", DATE), ("orderpriority", VARCHAR),
            ("shippriority", BIGINT),
        ],
        "lineitem": [
            ("orderkey", BIGINT), ("partkey", BIGINT), ("suppkey", BIGINT),
            ("linenumber", BIGINT), ("quantity", DOUBLE), ("extendedprice", DOUBLE),
            ("discount", DOUBLE), ("tax", DOUBLE), ("returnflag", VARCHAR),
            ("linestatus", VARCHAR), ("shipdate", DATE), ("shipinstruct", VARCHAR),
            ("shipmode", VARCHAR),
        ],
    }

    def __init__(self, scale_factor: float = 0.01, statistics_enabled: bool = True):
        self.scale_factor = scale_factor
        self.statistics_enabled = statistics_enabled
        sf = scale_factor
        self.row_counts = {
            "region": 5,
            "nation": 25,
            "supplier": max(1, int(10_000 * sf)),
            "customer": max(1, int(150_000 * sf)),
            "part": max(1, int(200_000 * sf)),
            "partsupp": max(1, int(800_000 * sf)),
            "orders": max(1, int(1_500_000 * sf)),
            "lineitem": max(1, int(6_000_000 * sf)),
        }
        self._metadata = TpchMetadata(self)

    @property
    def metadata(self) -> TpchMetadata:
        return self._metadata

    def columns(self, table: str) -> list[Column]:
        try:
            return [Column(n, t) for n, t in self._COLUMNS[table]]
        except KeyError:
            raise TableNotFoundError(f"Unknown tpch table: {table}")

    def statistics(self, table: str) -> TableStatistics:
        """Analytic statistics: known row counts and value ranges."""
        rows = float(self.row_counts[table])
        stats: dict[str, ColumnStatistics] = {}
        for name, type_ in self._COLUMNS[table]:
            if name.endswith("key") and name != "orderkey":
                base = name.removesuffix("key")
                referenced = {
                    "cust": "customer", "part": "part", "supp": "supplier",
                    "nation": "nation", "region": "region",
                }.get(base)
                distinct = float(self.row_counts.get(referenced, int(rows)))
                stats[name] = ColumnStatistics(min(distinct, rows) if table != referenced else rows, 0.0, 0, distinct, 8.0)
            elif name == "orderkey":
                distinct = float(self.row_counts["orders"])
                stats[name] = ColumnStatistics(distinct, 0.0, 0, distinct, 8.0)
            elif type_ == DOUBLE:
                stats[name] = ColumnStatistics(rows / 3, 0.0, 0.0, 500_000.0, 8.0)
            elif type_ == DATE:
                stats[name] = ColumnStatistics(
                    float(MAX_ORDER_DATE - MIN_ORDER_DATE), 0.0,
                    MIN_ORDER_DATE, MAX_ORDER_DATE, 8.0,
                )
            else:
                distinct_by_column = {
                    "orderstatus": 3.0, "orderpriority": 5.0, "mktsegment": 5.0,
                    "returnflag": 3.0, "linestatus": 2.0, "shipmode": 7.0,
                    "shipinstruct": 4.0, "brand": 25.0, "type": 150.0,
                    "name": rows,
                }
                stats[name] = ColumnStatistics(
                    distinct_by_column.get(name, rows), 0.0, None, None, 12.0
                )
        return TableStatistics(rows, stats)

    # -- split / page sources -------------------------------------------------

    def split_source(self, layout: ConnectorTableLayout) -> FixedSplitSource:
        handle: TpchTableHandle = layout.handle
        total = self.row_counts[handle.table]
        splits = []
        for start in range(0, total, _ROWS_PER_SPLIT):
            count = min(_ROWS_PER_SPLIT, total - start)
            splits.append(
                Split(
                    connector=self.name,
                    payload=(handle.table, start, count),
                    estimated_rows=count,
                    estimated_bytes=count * 64,
                )
            )
        return FixedSplitSource(splits)

    def page_source(self, split: Split, columns: Sequence[str]) -> PageSource:
        table, start, count = split.payload
        return IteratorPageSource(iter([self.generate_page(table, start, count, columns)]))

    def generate_page(
        self, table: str, start: int, count: int, columns: Sequence[str]
    ) -> Page:
        generator = getattr(self, f"_row_{table}")
        rows = [generator(i) for i in range(start, start + count)]
        schema = dict(self._COLUMNS[table])
        blocks = []
        for column in columns:
            index = [n for n, _ in self._COLUMNS[table]].index(column)
            blocks.append(make_block(schema[column], [r[index] for r in rows]))
        return Page(blocks, count)

    def generate_rows(self, table: str) -> list[tuple]:
        """Materialize the whole table (used to load other connectors)."""
        generator = getattr(self, f"_row_{table}")
        return [generator(i) for i in range(self.row_counts[table])]

    # -- row generators ------------------------------------------------------------

    def _row_region(self, i: int) -> tuple:
        return (i, REGIONS[i])

    def _row_nation(self, i: int) -> tuple:
        name, region = NATIONS[i]
        return (i, name, region)

    def _row_supplier(self, i: int) -> tuple:
        return (
            i,
            f"Supplier#{i:09d}",
            _rand(i, 11, 25),
            round(_rand(i, 12, 1_099_999) / 100 - 999.99, 2),
        )

    def _row_customer(self, i: int) -> tuple:
        return (
            i,
            f"Customer#{i:09d}",
            _rand(i, 21, 25),
            SEGMENTS[_rand(i, 22, 5)],
            round(_rand(i, 23, 1_099_999) / 100 - 999.99, 2),
        )

    def _row_part(self, i: int) -> tuple:
        return (
            i,
            f"part {i}",
            BRANDS[_rand(i, 31, 25)],
            PART_TYPES[_rand(i, 32, len(PART_TYPES))],
            1 + _rand(i, 33, 50),
            round(900 + (i % 1000) + _rand(i, 34, 10000) / 100, 2),
        )

    def _row_partsupp(self, i: int) -> tuple:
        part_count = self.row_counts["part"]
        supp_count = self.row_counts["supplier"]
        return (
            i % part_count,
            _rand(i, 41, supp_count),
            1 + _rand(i, 42, 9999),
            round(_rand(i, 43, 100000) / 100, 2),
        )

    def _row_orders(self, i: int) -> tuple:
        customer_count = self.row_counts["customer"]
        # Customer popularity is skewed: a third of customers get most orders.
        if _rand(i, 51, 3) == 0:
            custkey = _rand(i, 52, max(1, customer_count // 3))
        else:
            custkey = _rand(i, 53, customer_count)
        status = "FOP"[_rand(i, 54, 3)]
        return (
            i,
            custkey,
            status,
            round(1000 + _rand(i, 55, 45_000_000) / 100, 2),
            MIN_ORDER_DATE + _rand(i, 56, MAX_ORDER_DATE - MIN_ORDER_DATE),
            PRIORITIES[_rand(i, 57, 5)],
            _rand(i, 58, 2),
        )

    def _row_lineitem(self, i: int) -> tuple:
        order_count = self.row_counts["orders"]
        part_count = self.row_counts["part"]
        supp_count = self.row_counts["supplier"]
        orderkey = i % order_count
        linenumber = (i // order_count) + 1
        quantity = 1 + _rand(i, 61, 50)
        price = round(quantity * (900 + _rand(i, 62, 20000) / 100), 2)
        ship_offset = _rand(i, 63, 120)
        return (
            orderkey,
            _rand(i, 64, part_count),
            _rand(i, 65, supp_count),
            linenumber,
            float(quantity),
            price,
            _rand(i, 66, 11) / 100.0,   # discount 0.00-0.10
            _rand(i, 67, 9) / 100.0,    # tax 0.00-0.08
            RETURN_FLAGS[_rand(i, 68, 3)],
            LINE_STATUSES[_rand(i, 69, 2)],
            MIN_ORDER_DATE + _rand(i, 70, MAX_ORDER_DATE - MIN_ORDER_DATE) + ship_offset % 90,
            SHIP_INSTRUCTIONS[_rand(i, 71, 4)],
            SHIP_MODES[_rand(i, 72, 7)],
        )


def load_into(
    connector_loader,
    tables: Sequence[str] | None = None,
    scale_factor: float = 0.01,
) -> None:
    """Copy generated TPC-H data into another connector.

    ``connector_loader(table_name, columns, rows)`` receives each table.
    """
    source = TpchConnector(scale_factor)
    for table in tables or list(source.row_counts):
        columns = [(c.name, c.type) for c in source.columns(table)]
        rows = source.generate_rows(table)
        connector_loader(table, columns, rows)
