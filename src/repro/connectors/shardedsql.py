"""Sharded-SQL connector (paper Sec. IV-C2, II-D).

Models the proprietary connector behind the Developer/Advertiser
Analytics use case: "The connector divides data into shards that are
stored in individual MySQL instances, and can push range or point
predicates all the way down to individual shards, ensuring that only
matching data is ever read." Tables are hash-sharded on a shard key;
secondary indexes give each shard B-tree-style point/range access and
are exposed through the layout API so the optimizer can plan index
nested-loop joins (Sec. IV-C1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog import (
    Column,
    QualifiedTableName,
    TableMetadata,
    TableStatistics,
    compute_column_statistics,
)
from repro.connectors.api import (
    Connector,
    ConnectorMetadata,
    ConnectorTableLayout,
    FixedSplitSource,
    Index,
    IteratorPageSource,
    PageSink,
    PageSource,
    Split,
)
from repro.connectors.hashing import stable_hash
from repro.connectors.predicate import Domain, TupleDomain
from repro.errors import TableNotFoundError
from repro.exec.page import DEFAULT_PAGE_ROWS, Page, page_from_rows
from repro.types import Type


@dataclass
class _ShardIndex:
    """A sorted secondary index over one column within one shard."""

    column: str
    # Sorted list of (value, row_position) over non-null values.
    entries: list[tuple] = field(default_factory=list)

    def rebuild(self, rows: list[tuple], column_index: int) -> None:
        self.entries = sorted(
            (row[column_index], position)
            for position, row in enumerate(rows)
            if row[column_index] is not None
        )

    def positions_for_domain(self, domain: Domain) -> list[int]:
        positions: set[int] = set()
        keys = [e[0] for e in self.entries]
        for r in domain.ranges:
            lo = 0
            if r.low is not None:
                lo = bisect.bisect_left(keys, r.low)
                if not r.low_inclusive:
                    lo = bisect.bisect_right(keys, r.low)
            hi = len(keys)
            if r.high is not None:
                hi = bisect.bisect_right(keys, r.high)
                if not r.high_inclusive:
                    hi = bisect.bisect_left(keys, r.high)
            for i in range(lo, hi):
                positions.add(self.entries[i][1])
        return sorted(positions)


@dataclass
class _Shard:
    rows: list[tuple] = field(default_factory=list)
    indexes: dict[str, _ShardIndex] = field(default_factory=dict)
    # Number of index lookups / scans served (for instrumentation).
    point_queries: int = 0
    scans: int = 0


@dataclass
class ShardedTable:
    schema: str
    name: str
    columns: list[Column]
    shard_key: str
    indexed_columns: list[str]
    shards: list[_Shard]
    statistics: TableStatistics = field(default_factory=TableStatistics.empty)

    def column_index(self, name: str) -> int:
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise KeyError(name)


@dataclass(frozen=True)
class ShardedTableHandle:
    schema: str
    table: str


class ShardedSqlMetadata(ConnectorMetadata):
    def __init__(self, connector: "ShardedSqlConnector"):
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return sorted({t.schema for t in self._connector.tables.values()})

    def list_tables(self, schema: str | None = None) -> list[str]:
        return sorted(
            t.name for t in self._connector.tables.values() if schema in (None, t.schema)
        )

    def get_table_handle(self, schema: str, table: str):
        handle = ShardedTableHandle(schema, table)
        return handle if handle in self._connector.tables else None

    def get_table_metadata(self, handle: ShardedTableHandle) -> TableMetadata:
        table = self._connector.table(handle)
        return TableMetadata(
            QualifiedTableName(self._connector.catalog_name, handle.schema, handle.table),
            tuple(table.columns),
        )

    def get_statistics(self, handle: ShardedTableHandle) -> TableStatistics:
        if not self._connector.statistics_enabled:
            return TableStatistics.empty()
        return self._connector.table(handle).statistics

    def get_layouts(self, handle, constraint: TupleDomain, desired_columns):
        table = self._connector.table(handle)
        # Predicates on indexed columns (and the shard key) are enforced by
        # shard-local index access; everything else is unenforced.
        enforceable = set(table.indexed_columns) | {table.shard_key}
        enforced = constraint.filter_columns(enforceable)
        unenforced = TupleDomain(
            {
                column: domain
                for column, domain in constraint.domains.items()
                if column not in enforceable
            }
        )
        # Shard pruning: point predicates on the shard key restrict which
        # shard can hold matching rows.
        shard_domain = constraint.domain(table.shard_key)
        shard_values = shard_domain.single_values()
        shard_count = len(table.shards)
        if shard_values is not None:
            matched = sorted(
                {stable_hash(v) % shard_count for v in shard_values}
            )
            fraction = len(matched) / shard_count
        else:
            matched = list(range(shard_count))
            # Index-enforced predicates still reduce the read fraction.
            fraction = 0.05 if not enforced.is_all() else 1.0
        indexes = tuple((c,) for c in table.indexed_columns)
        return [
            ConnectorTableLayout(
                handle=(handle, tuple(matched), enforced),
                enforced_predicate=enforced,
                unenforced_predicate=unenforced,
                indexes=indexes + ((table.shard_key,),),
                scan_fraction=fraction,
            )
        ]

    def create_table(self, metadata: TableMetadata) -> ShardedTableHandle:
        properties = metadata.properties or {}
        shard_key = properties.get("shard_by") or metadata.columns[0].name
        indexed = properties.get("indexes") or []
        if isinstance(indexed, str):
            indexed = [indexed]
        table = ShardedTable(
            schema=metadata.name.schema,
            name=metadata.name.table,
            columns=list(metadata.columns),
            shard_key=shard_key,
            indexed_columns=list(indexed),
            shards=[_Shard() for _ in range(self._connector.shard_count)],
        )
        handle = ShardedTableHandle(metadata.name.schema, metadata.name.table)
        self._connector.tables[handle] = table
        return handle

    def begin_insert(self, handle: ShardedTableHandle) -> ShardedTableHandle:
        return handle

    def finish_insert(self, insert_handle: ShardedTableHandle, fragments: list) -> None:
        table = self._connector.table(insert_handle)
        key_index = table.column_index(table.shard_key)
        for rows in fragments:
            for row in rows:
                shard = table.shards[stable_hash(row[key_index]) % len(table.shards)]
                shard.rows.append(tuple(row))
        self._connector.rebuild_indexes(table)
        if self._connector.statistics_enabled:
            self._connector.analyze_table(insert_handle)

    def drop_table(self, handle: ShardedTableHandle) -> None:
        self._connector.tables.pop(handle, None)


class _ShardedSink(PageSink):
    def __init__(self):
        self.rows: list[tuple] = []

    def append(self, page: Page) -> None:
        self.rows.extend(page.rows())

    def finish(self) -> list[tuple]:
        return self.rows


class _ShardedSqlIndex(Index):
    """Cross-shard point-lookup used by index nested-loop joins."""

    def __init__(self, connector: "ShardedSqlConnector", table: ShardedTable,
                 key_columns: Sequence[str], output_columns: Sequence[str]):
        self.connector = connector
        self.table = table
        self.key_columns = list(key_columns)
        self.key_indexes = [table.column_index(c) for c in key_columns]
        self.output_indexes = [table.column_index(c) for c in output_columns]
        self.uses_shard_key = key_columns[0] == table.shard_key

    def lookup(self, keys: list[tuple]) -> list[list[tuple]]:
        table = self.table
        results: list[list[tuple]] = []
        for key in keys:
            self.connector.index_lookups += 1
            matches: list[tuple] = []
            if any(k is None for k in key):
                results.append(matches)
                continue
            if self.uses_shard_key:
                shards = [table.shards[stable_hash(key[0]) % len(table.shards)]]
            else:
                shards = table.shards
            first_column = self.key_columns[0]
            for shard in shards:
                shard.point_queries += 1
                index = shard.indexes.get(first_column)
                if index is not None:
                    positions = index.positions_for_domain(Domain.single_value(key[0]))
                    candidates = [shard.rows[p] for p in positions]
                else:
                    candidates = shard.rows
                for row in candidates:
                    if all(
                        row[self.key_indexes[i]] == key[i] for i in range(len(key))
                    ):
                        matches.append(tuple(row[i] for i in self.output_indexes))
            results.append(matches)
        return results


class ShardedSqlConnector(Connector):
    name = "shardedsql"

    # MySQL point reads: very low latency, bounded per-query throughput.
    base_read_latency_ms = 1.0
    read_bandwidth_bytes_per_ms = 512 * 1024

    def __init__(
        self,
        shard_count: int = 8,
        catalog_name: str = "shardedsql",
        statistics_enabled: bool = True,
    ):
        self.shard_count = shard_count
        self.catalog_name = catalog_name
        self.statistics_enabled = statistics_enabled
        self.tables: dict[ShardedTableHandle, ShardedTable] = {}
        self.index_lookups = 0
        self._metadata = ShardedSqlMetadata(self)

    @property
    def metadata(self) -> ShardedSqlMetadata:
        return self._metadata

    def table(self, handle: ShardedTableHandle) -> ShardedTable:
        try:
            return self.tables[handle]
        except KeyError:
            raise TableNotFoundError(f"Table not found: {handle.schema}.{handle.table}")

    def rebuild_indexes(self, table: ShardedTable) -> None:
        for shard in table.shards:
            for column in set(table.indexed_columns) | {table.shard_key}:
                index = _ShardIndex(column)
                index.rebuild(shard.rows, table.column_index(column))
                shard.indexes[column] = index

    def split_source(self, layout: ConnectorTableLayout) -> FixedSplitSource:
        handle, matched_shards, enforced = layout.handle
        table = self.table(handle)
        splits = [
            Split(
                connector=self.catalog_name,
                payload=(handle, shard_id, enforced),
                estimated_rows=len(table.shards[shard_id].rows),
                estimated_bytes=len(table.shards[shard_id].rows) * 48,
                read_latency_ms=self.base_read_latency_ms,
            )
            for shard_id in matched_shards
        ]
        if not splits:
            splits = [Split(connector=self.catalog_name, payload=(handle, None, None))]
        return FixedSplitSource(splits)

    def page_source(self, split: Split, columns: Sequence[str]) -> PageSource:
        handle, shard_id, enforced = split.payload
        if shard_id is None:
            return IteratorPageSource(iter(()))
        table = self.table(handle)
        shard = table.shards[shard_id]
        rows = self._shard_rows(table, shard, enforced)
        column_indexes = [table.column_index(c) for c in columns]
        types = [table.columns[i].type for i in column_indexes]
        pages = []
        for start in range(0, len(rows), DEFAULT_PAGE_ROWS):
            chunk = rows[start : start + DEFAULT_PAGE_ROWS]
            pages.append(
                page_from_rows(
                    types, [tuple(r[i] for i in column_indexes) for r in chunk]
                )
            )
        return IteratorPageSource(iter(pages))

    def _shard_rows(self, table, shard: _Shard, enforced: TupleDomain | None) -> list[tuple]:
        if enforced is None or enforced.is_all():
            shard.scans += 1
            return shard.rows
        # Serve via the most selective index, then verify remaining domains.
        best_positions: list[int] | None = None
        for column, domain in enforced.domains.items():
            index = shard.indexes.get(column)
            if index is None:
                continue
            positions = index.positions_for_domain(domain)
            if best_positions is None or len(positions) < len(best_positions):
                best_positions = positions
        if best_positions is None:
            shard.scans += 1
            candidates = shard.rows
        else:
            shard.point_queries += 1
            candidates = [shard.rows[p] for p in best_positions]
        out = []
        column_indexes = {c.name: i for i, c in enumerate(table.columns)}
        for row in candidates:
            values = {name: row[i] for name, i in column_indexes.items()}
            if enforced.contains_row(values):
                out.append(row)
        return out

    def page_sink(self, insert_handle: ShardedTableHandle) -> _ShardedSink:
        return _ShardedSink()

    def get_index(self, handle, key_columns, output_columns) -> Index | None:
        # The layout handle is (handle, shards, enforced) for scans but a
        # bare handle for index joins resolved from the table handle.
        if isinstance(handle, tuple):
            handle = handle[0]
        table = self.table(handle)
        usable = set(table.indexed_columns) | {table.shard_key}
        if key_columns and key_columns[0] in usable:
            return _ShardedSqlIndex(self, table, key_columns, output_columns)
        return None

    def analyze_table(self, handle: ShardedTableHandle) -> TableStatistics:
        table = self.table(handle)
        columns = [c.name for c in table.columns]
        values: dict[str, list] = {c: [] for c in columns}
        row_count = 0
        for shard in table.shards:
            for row in shard.rows:
                row_count += 1
                for i, name in enumerate(columns):
                    values[name].append(row[i])
        table.statistics = TableStatistics(
            float(row_count),
            {name: compute_column_statistics(vals) for name, vals in values.items()},
        )
        return table.statistics
