"""Stable (process-independent) hashing for bucketing and sharding.

Python's built-in ``hash`` is salted for strings, so connector bucket
assignments would differ between runs; these helpers are deterministic.
"""

from __future__ import annotations


def stable_hash(value) -> int:
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1 if value else 2
    if isinstance(value, int):
        v = (value ^ (value >> 33)) * 0xFF51AFD7ED558CCD
        v &= 0xFFFFFFFFFFFFFFFF
        return (v ^ (v >> 33)) & 0x7FFFFFFFFFFFFFFF
    if isinstance(value, float):
        return stable_hash(int(value * 1_000_003))
    if isinstance(value, str):
        h = 1469598103934665603
        for ch in value:
            h = ((h ^ ord(ch)) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        return h & 0x7FFFFFFFFFFFFFFF
    if isinstance(value, (tuple, list)):
        h = 17
        for item in value:
            h = (h * 31 + stable_hash(item)) & 0x7FFFFFFFFFFFFFFF
        return h
    return stable_hash(str(value))


def stable_bucket(values, bucket_count: int) -> int:
    """Bucket a key tuple into ``bucket_count`` buckets."""
    return stable_hash(tuple(values)) % bucket_count
