"""Plan statistics estimation for cost-based decisions.

Presto's cost-based optimizations — join strategy selection and join
re-ordering (paper Sec. IV-C) — "take table and column statistics into
account". This estimator propagates connector statistics through the
plan with textbook selectivity heuristics; when the connector exposes
no statistics (the Fig. 6 "no stats" configuration), estimates are
unknown and the optimizer falls back to syntactic choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.metadata import Metadata
from repro.catalog.schema import ColumnStatistics
from repro.planner import expressions as ir
from repro.planner import nodes as plan

_EQUALITY_SELECTIVITY = 0.05   # fallback when NDV is unknown
_RANGE_SELECTIVITY = 0.25
_DEFAULT_SELECTIVITY = 0.5


@dataclass
class PlanEstimate:
    """Estimated output of a plan node."""

    row_count: float | None = None
    # per-symbol column statistics, where derivable
    symbols: dict[str, ColumnStatistics] = field(default_factory=dict)

    @property
    def known(self) -> bool:
        return self.row_count is not None

    def output_bytes(self, symbol_count: int = 1) -> float | None:
        if self.row_count is None:
            return None
        width = 0.0
        for stats in self.symbols.values():
            width += stats.avg_size_bytes or 8.0
        if not self.symbols:
            width = 8.0 * max(1, symbol_count)
        return self.row_count * width


class StatsEstimator:
    def __init__(self, metadata: Metadata):
        self.metadata = metadata
        self._cache: dict[int, PlanEstimate] = {}

    def estimate(self, node: plan.PlanNode) -> PlanEstimate:
        cached = self._cache.get(node.id)
        if cached is None:
            cached = self._compute(node)
            self._cache[node.id] = cached
        return cached

    def invalidate(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------

    def _compute(self, node: plan.PlanNode) -> PlanEstimate:
        if isinstance(node, plan.TableScanNode):
            return self._scan(node)
        if isinstance(node, plan.ValuesNode):
            return PlanEstimate(float(len(node.rows)))
        if isinstance(node, plan.FilterNode):
            source = self.estimate(node.source)
            if not source.known:
                return PlanEstimate()
            selectivity = self._selectivity(node.predicate, source)
            return PlanEstimate(source.row_count * selectivity, source.symbols)
        if isinstance(node, plan.ProjectNode):
            source = self.estimate(node.source)
            symbols = {}
            for out, expr in node.assignments.items():
                if isinstance(expr, ir.Variable) and expr.name in source.symbols:
                    symbols[out.name] = source.symbols[expr.name]
            return PlanEstimate(source.row_count, symbols)
        if isinstance(node, plan.LimitNode):
            source = self.estimate(node.source)
            if not source.known:
                return PlanEstimate(float(node.count))
            return PlanEstimate(min(source.row_count, node.count), source.symbols)
        if isinstance(node, plan.TopNNode):
            source = self.estimate(node.source)
            rows = float(node.count)
            if source.known:
                rows = min(source.row_count, rows)
            return PlanEstimate(rows, source.symbols)
        if isinstance(node, (plan.SortNode, plan.ExchangeNode, plan.EnforceSingleRowNode)):
            return self.estimate(node.sources[0])
        if isinstance(node, plan.SetOperationNode):
            left = self.estimate(node.sources_[0])
            right = self.estimate(node.sources_[1])
            if not left.known:
                return PlanEstimate()
            if node.kind == "INTERSECT":
                # Bounded by the smaller (distinct) input.
                rows = left.row_count
                if right.known:
                    rows = min(rows, right.row_count)
                return PlanEstimate(rows)
            # EXCEPT: bounded by the left (distinct) input.
            return PlanEstimate(left.row_count)
        if isinstance(node, plan.DistinctNode):
            source = self.estimate(node.source)
            if not source.known:
                return PlanEstimate()
            ndv = 1.0
            known_any = False
            for symbol in node.output_symbols:
                stats = source.symbols.get(symbol.name)
                if stats is not None and stats.distinct_count is not None:
                    ndv *= stats.distinct_count
                    known_any = True
            if not known_any:
                return PlanEstimate(source.row_count * 0.1, source.symbols)
            return PlanEstimate(min(source.row_count, ndv), source.symbols)
        if isinstance(node, plan.AggregationNode):
            return self._aggregation(node)
        if isinstance(node, plan.JoinNode):
            return self._join(node)
        if isinstance(node, plan.SemiJoinNode):
            source = self.estimate(node.source)
            return PlanEstimate(source.row_count, source.symbols)
        if isinstance(node, plan.UnionNode):
            total = 0.0
            for source in node.sources:
                estimate = self.estimate(source)
                if not estimate.known:
                    return PlanEstimate()
                total += estimate.row_count
            return PlanEstimate(total)
        if isinstance(node, plan.WindowNode):
            source = self.estimate(node.source)
            return PlanEstimate(source.row_count, source.symbols)
        if isinstance(node, plan.UnnestNode):
            source = self.estimate(node.source)
            if not source.known:
                return PlanEstimate()
            return PlanEstimate(source.row_count * 10.0)
        if isinstance(node, plan.IndexJoinNode):
            source = self.estimate(node.probe)
            return PlanEstimate(source.row_count, source.symbols)
        sources = node.sources
        if len(sources) == 1:
            return self.estimate(sources[0])
        return PlanEstimate()

    def _scan(self, node: plan.TableScanNode) -> PlanEstimate:
        stats = self.metadata.table_statistics(node.table)
        if stats.is_empty():
            return PlanEstimate()
        symbols = {}
        for symbol, column in node.assignments.items():
            column_stats = stats.column(column)
            if not column_stats.is_empty():
                symbols[symbol.name] = column_stats
        rows = stats.row_count
        if node.layout is not None:
            rows = rows * node.layout.scan_fraction
        elif not node.constraint.is_all():
            rows = rows * 0.25
        return PlanEstimate(rows, symbols)

    def _aggregation(self, node: plan.AggregationNode) -> PlanEstimate:
        source = self.estimate(node.source)
        if node.is_global:
            return PlanEstimate(1.0)
        if not source.known:
            return PlanEstimate()
        ndv = 1.0
        known_any = False
        for symbol in node.group_by:
            stats = source.symbols.get(symbol.name)
            if stats is not None and stats.distinct_count is not None:
                ndv *= max(1.0, stats.distinct_count)
                known_any = True
        if not known_any:
            return PlanEstimate(max(1.0, source.row_count * 0.1))
        return PlanEstimate(max(1.0, min(source.row_count, ndv)), source.symbols)

    def _join(self, node: plan.JoinNode) -> PlanEstimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        if not left.known or not right.known:
            return PlanEstimate()
        symbols = {**left.symbols, **right.symbols}
        if node.join_type is plan.JoinType.CROSS or not node.criteria:
            return PlanEstimate(left.row_count * right.row_count, symbols)
        # Classic equi-join estimate: |L| * |R| / max(ndv(l), ndv(r)).
        selectivity_divisor = 1.0
        for clause in node.criteria:
            left_stats = left.symbols.get(clause.left.name)
            right_stats = right.symbols.get(clause.right.name)
            ndv_left = left_stats.distinct_count if left_stats else None
            ndv_right = right_stats.distinct_count if right_stats else None
            candidates = [n for n in (ndv_left, ndv_right) if n]
            divisor = max(candidates) if candidates else (
                max(left.row_count, right.row_count) * _EQUALITY_SELECTIVITY or 1.0
            )
            selectivity_divisor *= max(1.0, divisor)
        rows = left.row_count * right.row_count / selectivity_divisor
        if node.join_type is plan.JoinType.LEFT:
            rows = max(rows, left.row_count)
        elif node.join_type is plan.JoinType.RIGHT:
            rows = max(rows, right.row_count)
        elif node.join_type is plan.JoinType.FULL:
            rows = max(rows, left.row_count, right.row_count)
        if node.filter is not None:
            rows *= _DEFAULT_SELECTIVITY
        return PlanEstimate(rows, symbols)

    # ------------------------------------------------------------------

    def _selectivity(self, predicate: ir.RowExpression, source: PlanEstimate) -> float:
        total = 1.0
        for conjunct in ir.extract_conjuncts(predicate):
            total *= self._conjunct_selectivity(conjunct, source)
        return max(0.0, min(1.0, total))

    def _conjunct_selectivity(self, conjunct: ir.RowExpression, source: PlanEstimate) -> float:
        if isinstance(conjunct, ir.SpecialForm):
            if conjunct.form == ir.COMPARISON:
                return self._comparison_selectivity(conjunct, source)
            if conjunct.form == ir.BETWEEN:
                return _RANGE_SELECTIVITY
            if conjunct.form == ir.IN:
                value = conjunct.arguments[0]
                count = len(conjunct.arguments) - 1
                if isinstance(value, ir.Variable):
                    stats = source.symbols.get(value.name)
                    if stats is not None and stats.distinct_count:
                        return min(1.0, count / stats.distinct_count)
                return min(1.0, count * _EQUALITY_SELECTIVITY)
            if conjunct.form == ir.IS_NULL:
                value = conjunct.arguments[0]
                if isinstance(value, ir.Variable):
                    stats = source.symbols.get(value.name)
                    if stats is not None and stats.null_fraction is not None:
                        return stats.null_fraction
                return 0.05
            if conjunct.form == ir.OR:
                inverse = 1.0
                for term in conjunct.arguments:
                    inverse *= 1.0 - self._conjunct_selectivity(term, source)
                return 1.0 - inverse
            if conjunct.form == ir.NOT:
                return 1.0 - self._conjunct_selectivity(conjunct.arguments[0], source)
            if conjunct.form == ir.LIKE:
                return _RANGE_SELECTIVITY
        return _DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, conjunct: ir.SpecialForm, source: PlanEstimate) -> float:
        op = conjunct.form_data
        left, right = conjunct.arguments
        variable, constant = None, None
        if isinstance(left, ir.Variable) and isinstance(right, ir.Constant):
            variable, constant = left, right
        elif isinstance(right, ir.Variable) and isinstance(left, ir.Constant):
            variable, constant = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if variable is None:
            return _EQUALITY_SELECTIVITY if op == "=" else _DEFAULT_SELECTIVITY
        stats = source.symbols.get(variable.name)
        if op == "=":
            if stats is not None and stats.distinct_count:
                return 1.0 / stats.distinct_count
            return _EQUALITY_SELECTIVITY
        if op in ("<>", "!="):
            if stats is not None and stats.distinct_count:
                return 1.0 - 1.0 / stats.distinct_count
            return 1.0 - _EQUALITY_SELECTIVITY
        # Range comparison with min/max interpolation where available.
        if (
            stats is not None
            and constant is not None
            and stats.min_value is not None
            and stats.max_value is not None
            and isinstance(constant.value, (int, float))
            and not isinstance(constant.value, bool)
        ):
            low, high = float(stats.min_value), float(stats.max_value)
            if high > low:
                fraction = (float(constant.value) - low) / (high - low)
                fraction = max(0.0, min(1.0, fraction))
                return fraction if op in ("<", "<=") else 1.0 - fraction
        return _RANGE_SELECTIVITY
