"""Extract TupleDomains from predicates (paper Sec. IV-C2).

``extract_domains`` splits a conjunction into (a) per-column domains a
connector can enforce — range/point predicates over single columns with
constant operands — and (b) the residual conjuncts the engine must still
evaluate.
"""

from __future__ import annotations

from repro.connectors.predicate import Domain, Range, TupleDomain
from repro.planner import expressions as ir


def extract_domains(
    predicate: ir.RowExpression | None,
) -> tuple[TupleDomain, list[ir.RowExpression]]:
    """Return (enforceable tuple domain, residual conjuncts)."""
    if predicate is None:
        return TupleDomain.all(), []
    domain = TupleDomain.all()
    residual: list[ir.RowExpression] = []
    for conjunct in ir.extract_conjuncts(predicate):
        extracted = _extract_one(conjunct)
        if extracted is None:
            residual.append(conjunct)
        else:
            column, column_domain = extracted
            domain = domain.intersect(TupleDomain({column: column_domain}))
    return domain, residual


def _extract_one(conjunct: ir.RowExpression) -> tuple[str, Domain] | None:
    if isinstance(conjunct, ir.SpecialForm):
        form = conjunct.form
        args = conjunct.arguments
        if form == ir.COMPARISON:
            return _from_comparison(conjunct.form_data, args[0], args[1])
        if form == ir.BETWEEN:
            value, low, high = args
            if (
                isinstance(value, ir.Variable)
                and isinstance(low, ir.Constant)
                and isinstance(high, ir.Constant)
                and low.value is not None
                and high.value is not None
            ):
                return value.name, Domain.range(
                    Range(low.value, high.value, True, True)
                )
            return None
        if form == ir.IN:
            value = args[0]
            items = args[1:]
            if isinstance(value, ir.Variable) and all(
                isinstance(i, ir.Constant) for i in items
            ):
                constants = [i.value for i in items if i.value is not None]
                if len(constants) != len(items):
                    return None  # IN with NULL has three-valued semantics
                try:
                    return value.name, Domain.multiple_values(constants)
                except TypeError:
                    return None
            return None
        if form == ir.IS_NULL and isinstance(args[0], ir.Variable):
            return args[0].name, Domain.only_null()
        if form == ir.NOT:
            inner = args[0]
            if (
                isinstance(inner, ir.SpecialForm)
                and inner.form == ir.IS_NULL
                and isinstance(inner.arguments[0], ir.Variable)
            ):
                return inner.arguments[0].name, Domain.not_null()
    return None


def _from_comparison(op, left, right) -> tuple[str, Domain] | None:
    if isinstance(left, ir.Constant) and isinstance(right, ir.Variable):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}
        return _from_comparison(flipped[op], right, left)
    if not (isinstance(left, ir.Variable) and isinstance(right, ir.Constant)):
        return None
    value = right.value
    if value is None:
        return None
    column = left.name
    if op == "=":
        return column, Domain.single_value(value)
    try:
        if op == "<":
            return column, Domain.range(Range.less_than(value))
        if op == "<=":
            return column, Domain.range(Range.less_than(value, inclusive=True))
        if op == ">":
            return column, Domain.range(Range.greater_than(value))
        if op == ">=":
            return column, Domain.range(Range.greater_than(value, inclusive=True))
    except TypeError:
        return None
    return None  # <> is rarely worth enforcing; leave as residual


def domain_to_predicate(column: str, domain: Domain, type_) -> ir.RowExpression | None:
    """Reconstruct a predicate equivalent to ``domain`` (for unenforced
    residues). Must be *faithful*: dropping part of the domain here means
    the engine silently stops filtering rows the connector did not prune.
    """
    from repro.types import BOOLEAN

    if domain.is_all():
        return None
    if domain.is_none():
        return ir.false_literal()
    variable = ir.Variable(type_, column)

    def compare(op: str, value) -> ir.RowExpression:
        return ir.SpecialForm(
            BOOLEAN, ir.COMPARISON, (variable, ir.Constant(type_, value)), op
        )

    disjuncts: list[ir.RowExpression] = []
    values = domain.single_values()
    if values is not None and values:
        if len(values) == 1:
            disjuncts.append(compare("=", values[0]))
        else:
            disjuncts.append(
                ir.SpecialForm(
                    BOOLEAN,
                    ir.IN,
                    tuple([variable] + [ir.Constant(type_, v) for v in values]),
                )
            )
    else:
        for r in domain.ranges:
            if r.is_single_value():
                disjuncts.append(compare("=", r.low))
                continue
            bounds: list[ir.RowExpression] = []
            if r.low is not None:
                bounds.append(compare(">=" if r.low_inclusive else ">", r.low))
            if r.high is not None:
                bounds.append(compare("<=" if r.high_inclusive else "<", r.high))
            if not bounds:
                # Unbounded range: any non-null value qualifies.
                bounds.append(
                    ir.SpecialForm(
                        BOOLEAN,
                        ir.NOT,
                        (ir.SpecialForm(BOOLEAN, ir.IS_NULL, (variable,)),),
                    )
                )
            combined = ir.combine_conjuncts(bounds)
            if combined is not None:
                disjuncts.append(combined)
    if domain.null_allowed:
        disjuncts.append(ir.SpecialForm(BOOLEAN, ir.IS_NULL, (variable,)))
    if not disjuncts:
        return ir.false_literal()
    if len(disjuncts) == 1:
        return disjuncts[0]
    return ir.SpecialForm(BOOLEAN, ir.OR, tuple(disjuncts))
