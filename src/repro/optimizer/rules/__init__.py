"""Optimizer transformation rules.

Each rule is a function ``(root, context) -> (new_root, changed)``; the
optimizer applies the rule set greedily until a fixed point is reached
(paper Sec. IV-C).
"""
