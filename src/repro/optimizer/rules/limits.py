"""Limit pushdown and TopN formation (paper Sec. IV-C)."""

from __future__ import annotations

from dataclasses import replace

from repro.planner import nodes as plan


def pushdown_limits(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if isinstance(node, plan.LimitNode):
            source = node.source
            if isinstance(source, plan.SortNode):
                # Sort + Limit => TopN (bounded memory instead of full sort).
                changed[0] = True
                return plan.TopNNode(
                    source.source, node.count, source.order_by, source.is_partial
                )
            if isinstance(source, plan.LimitNode):
                changed[0] = True
                return plan.LimitNode(
                    source.source, min(node.count, source.count)
                )
            if isinstance(source, plan.ProjectNode):
                changed[0] = True
                return plan.ProjectNode(
                    plan.LimitNode(source.source, node.count, node.is_partial),
                    source.assignments,
                )
            if isinstance(source, plan.UnionNode):
                # Keep the limit on top, add partial limits in branches.
                if all(
                    isinstance(branch, plan.LimitNode) and branch.count <= node.count
                    for branch in source.sources_
                ):
                    return None
                changed[0] = True
                limited = [
                    plan.LimitNode(branch, node.count, is_partial=True)
                    for branch in source.sources_
                ]
                return plan.LimitNode(
                    plan.UnionNode(limited, source.outputs, source.symbol_mapping),
                    node.count,
                )
            if isinstance(source, plan.TopNNode) and source.count <= node.count:
                changed[0] = True
                return source
        if isinstance(node, plan.TopNNode) and isinstance(node.source, plan.ProjectNode):
            project = node.source
            order_names = {o.symbol.name for o in node.order_by}
            produced = {s.name for s in project.assignments}
            inputs = {s.name for s in project.source.output_symbols}
            # TopN can move below the projection only if all sort keys are
            # produced unchanged by the projection.
            from repro.planner import expressions as ir

            mapping = {}
            ok = True
            for symbol, expr in project.assignments.items():
                if symbol.name in order_names:
                    if isinstance(expr, ir.Variable):
                        mapping[symbol.name] = expr.name
                    else:
                        ok = False
                        break
            if ok and order_names <= set(mapping):
                changed[0] = True
                new_order = [
                    plan.Ordering(
                        _find_symbol(project.source, mapping[o.symbol.name]),
                        o.ascending,
                        o.nulls_first,
                    )
                    for o in node.order_by
                ]
                return plan.ProjectNode(
                    plan.TopNNode(project.source, node.count, new_order, node.is_partial),
                    project.assignments,
                )
        return None

    return plan.rewrite_plan(root, rewrite), changed[0]


def _find_symbol(node: plan.PlanNode, name: str):
    for symbol in node.output_symbols:
        if symbol.name == name:
            return symbol
    raise KeyError(name)
