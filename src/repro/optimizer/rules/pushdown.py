"""Predicate pushdown (paper Sec. IV-C: "well-known optimizations such
as predicate and limit pushdown").

Pushes filter conjuncts through projections, below joins (converting
outer joins to inner where a conjunct is null-rejecting on the nullable
side), below aggregations (on grouping keys), into union branches, and
merges adjacent filters. TupleDomain extraction into table scans is
handled by the layout rule.
"""

from __future__ import annotations

from repro.planner import expressions as ir
from repro.planner import nodes as plan


def pushdown_predicates(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if not isinstance(node, plan.FilterNode):
            return None
        replacement = _push_filter(node, context)
        if replacement is not None:
            changed[0] = True
        return replacement

    new_root = plan.rewrite_plan(root, rewrite)
    return new_root, changed[0]


def _push_filter(node: plan.FilterNode, context) -> plan.PlanNode | None:
    source = node.source
    if isinstance(source, plan.FilterNode):
        combined = ir.combine_conjuncts(
            ir.extract_conjuncts(source.predicate) + ir.extract_conjuncts(node.predicate)
        )
        return plan.FilterNode(source.source, combined)
    if isinstance(source, plan.ProjectNode):
        return _through_project(node, source)
    if isinstance(source, plan.JoinNode):
        return _through_join(node, source)
    if isinstance(source, plan.AggregationNode):
        return _through_aggregation(node, source)
    if isinstance(source, plan.UnionNode):
        return _through_union(node, source)
    if isinstance(source, plan.SortNode):
        return plan.SortNode(
            plan.FilterNode(source.source, node.predicate),
            source.order_by,
            source.is_partial,
        )
    if isinstance(source, plan.SemiJoinNode):
        return _through_semijoin(node, source)
    if isinstance(source, plan.UnnestNode):
        return _through_unnest(node, source)
    if isinstance(source, plan.ExchangeNode):
        return plan.ExchangeNode(
            plan.FilterNode(source.source, node.predicate),
            source.scope,
            source.kind,
            source.partition_keys,
            source.ordering,
        )
    return None


def _inlineable(source: plan.ProjectNode) -> dict[str, ir.RowExpression]:
    return {symbol.name: expr for symbol, expr in source.assignments.items()}


def _through_project(node: plan.FilterNode, source: plan.ProjectNode):
    mapping = _inlineable(source)
    # Do not inline through non-deterministic expressions.
    for expr in mapping.values():
        for sub in ir.walk_expression(expr):
            if isinstance(sub, ir.Call) and not sub.function.deterministic:
                return None
    rewritten = ir.replace_variables(node.predicate, mapping)
    return plan.ProjectNode(
        plan.FilterNode(source.source, rewritten), source.assignments
    )


def _null_rejecting(conjunct: ir.RowExpression, symbols: set[str]) -> bool:
    """True if the conjunct cannot evaluate to TRUE when every symbol in
    ``symbols`` is NULL (enables outer->inner conversion).

    Decided by actually evaluating the conjunct with the nullable side's
    symbols bound to NULL — this is exact for conjuncts that reference
    only the nullable side, and correctly rejects null-defeating
    constructs such as ``coalesce(x, 0) = 0``.
    """
    referenced = ir.referenced_variables(conjunct)
    if not (referenced & symbols):
        return False
    if not referenced <= symbols:
        # References both sides; evaluating would need arbitrary values
        # for the other side. Be conservative.
        return False
    from repro.errors import PrestoError
    from repro.exec import interpreter

    try:
        value = interpreter.evaluate(conjunct, {name: None for name in referenced})
    except PrestoError:
        return False
    except Exception:
        return False
    return value is not True


def _through_join(node: plan.FilterNode, source: plan.JoinNode):
    left_names = {s.name for s in source.left.output_symbols}
    right_names = {s.name for s in source.right.output_symbols}
    conjuncts = ir.extract_conjuncts(node.predicate)

    join_type = source.join_type
    # Outer-to-inner conversion for null-rejecting predicates.
    if join_type is plan.JoinType.LEFT and any(
        _null_rejecting(c, right_names) for c in conjuncts
    ):
        join_type = plan.JoinType.INNER
    elif join_type is plan.JoinType.RIGHT and any(
        _null_rejecting(c, left_names) for c in conjuncts
    ):
        join_type = plan.JoinType.INNER
    elif join_type is plan.JoinType.FULL:
        reject_left = any(_null_rejecting(c, left_names) for c in conjuncts)
        reject_right = any(_null_rejecting(c, right_names) for c in conjuncts)
        if reject_left and reject_right:
            join_type = plan.JoinType.INNER
        elif reject_left:
            # Rejecting NULL left symbols kills the left-padded
            # (right-unmatched) rows; what survives is a LEFT join.
            join_type = plan.JoinType.LEFT
        elif reject_right:
            join_type = plan.JoinType.RIGHT

    push_left: list[ir.RowExpression] = []
    push_right: list[ir.RowExpression] = []
    remaining: list[ir.RowExpression] = []
    can_push_left = join_type in (plan.JoinType.INNER, plan.JoinType.CROSS, plan.JoinType.LEFT)
    can_push_right = join_type in (plan.JoinType.INNER, plan.JoinType.CROSS, plan.JoinType.RIGHT)
    for conjunct in conjuncts:
        refs = ir.referenced_variables(conjunct)
        if refs <= left_names and can_push_left:
            push_left.append(conjunct)
        elif refs <= right_names and can_push_right:
            push_right.append(conjunct)
        else:
            remaining.append(conjunct)
    if not push_left and not push_right and join_type is source.join_type:
        return None
    left = source.left
    right = source.right
    if push_left:
        left = plan.FilterNode(left, ir.combine_conjuncts(push_left))
    if push_right:
        right = plan.FilterNode(right, ir.combine_conjuncts(push_right))
    new_join = plan.JoinNode(
        join_type, left, right, source.criteria, source.filter, source.distribution
    )
    residual = ir.combine_conjuncts(remaining)
    if residual is None:
        return new_join
    return plan.FilterNode(new_join, residual)


def _through_aggregation(node: plan.FilterNode, source: plan.AggregationNode):
    group_names = {s.name for s in source.group_by}
    push: list[ir.RowExpression] = []
    keep: list[ir.RowExpression] = []
    for conjunct in ir.extract_conjuncts(node.predicate):
        if ir.referenced_variables(conjunct) <= group_names:
            push.append(conjunct)
        else:
            keep.append(conjunct)
    if not push:
        return None
    pushed = plan.AggregationNode(
        plan.FilterNode(source.source, ir.combine_conjuncts(push)),
        source.group_by,
        source.aggregations,
        source.step,
    )
    residual = ir.combine_conjuncts(keep)
    if residual is None:
        return pushed
    return plan.FilterNode(pushed, residual)


def _through_union(node: plan.FilterNode, source: plan.UnionNode):
    new_sources = []
    for branch, mapping in zip(source.sources_, source.symbol_mapping):
        substitution = {
            out.name: ir.Variable(inner.type, inner.name)
            for out, inner in mapping.items()
        }
        branch_predicate = ir.replace_variables(node.predicate, substitution)
        new_sources.append(plan.FilterNode(branch, branch_predicate))
    return plan.UnionNode(new_sources, source.outputs, source.symbol_mapping)


def _through_semijoin(node: plan.FilterNode, source: plan.SemiJoinNode):
    source_names = {s.name for s in source.source.output_symbols}
    push: list[ir.RowExpression] = []
    keep: list[ir.RowExpression] = []
    for conjunct in ir.extract_conjuncts(node.predicate):
        if ir.referenced_variables(conjunct) <= source_names:
            push.append(conjunct)
        else:
            keep.append(conjunct)
    if not push:
        return None
    new_semi = plan.SemiJoinNode(
        plan.FilterNode(source.source, ir.combine_conjuncts(push)),
        source.filtering_source,
        source.source_keys,
        source.filtering_keys,
        source.output,
    )
    residual = ir.combine_conjuncts(keep)
    if residual is None:
        return new_semi
    return plan.FilterNode(new_semi, residual)


def _through_unnest(node: plan.FilterNode, source: plan.UnnestNode):
    replicated = {s.name for s in source.replicate_symbols}
    push: list[ir.RowExpression] = []
    keep: list[ir.RowExpression] = []
    for conjunct in ir.extract_conjuncts(node.predicate):
        if ir.referenced_variables(conjunct) <= replicated:
            push.append(conjunct)
        else:
            keep.append(conjunct)
    if not push:
        return None
    from dataclasses import replace

    pushed = replace(
        source, source=plan.FilterNode(source.source, ir.combine_conjuncts(push))
    )
    residual = ir.combine_conjuncts(keep)
    if residual is None:
        return pushed
    return plan.FilterNode(pushed, residual)
