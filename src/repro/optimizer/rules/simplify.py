"""Expression simplification and constant folding."""

from __future__ import annotations

from repro.errors import PrestoError
from repro.exec import interpreter
from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.types import BOOLEAN


def fold_constants(expr: ir.RowExpression) -> ir.RowExpression:
    """Bottom-up constant folding with SQL null/logic simplifications."""

    def rewrite(node: ir.RowExpression) -> ir.RowExpression | None:
        if isinstance(node, ir.Call):
            if node.function.deterministic and all(
                isinstance(a, ir.Constant) for a in node.arguments
            ):
                return _try_evaluate(node)
            return None
        if isinstance(node, ir.SpecialForm):
            return _simplify_special(node)
        return None

    return ir.rewrite_expression(expr, rewrite)


def _try_evaluate(node: ir.RowExpression) -> ir.Constant | None:
    try:
        value = interpreter.evaluate(node, {})
    except PrestoError:
        return None  # leave runtime errors to execution time
    except Exception:
        return None
    return ir.Constant(node.type, value)


def _simplify_special(node: ir.SpecialForm) -> ir.RowExpression | None:
    form = node.form
    args = node.arguments
    if form == ir.AND:
        terms = []
        for term in args:
            if isinstance(term, ir.Constant):
                if term.value is False:
                    return ir.Constant(BOOLEAN, False)
                if term.value is True:
                    continue
            terms.append(term)
        if not terms:
            return ir.Constant(BOOLEAN, True)
        if len(terms) == 1:
            return terms[0]
        if len(terms) != len(args):
            return ir.SpecialForm(BOOLEAN, ir.AND, tuple(terms))
        return None
    if form == ir.OR:
        terms = []
        for term in args:
            if isinstance(term, ir.Constant):
                if term.value is True:
                    return ir.Constant(BOOLEAN, True)
                if term.value is False:
                    continue
            terms.append(term)
        if not terms:
            return ir.Constant(BOOLEAN, False)
        if len(terms) == 1:
            return terms[0]
        if len(terms) != len(args):
            return ir.SpecialForm(BOOLEAN, ir.OR, tuple(terms))
        return None
    if form == ir.NOT and isinstance(args[0], ir.Constant):
        value = args[0].value
        return ir.Constant(BOOLEAN, None if value is None else not value)
    if form == ir.IF and isinstance(args[0], ir.Constant):
        return args[1] if args[0].value is True else args[2]
    if form == ir.CAST and isinstance(args[0], ir.Constant):
        return _try_evaluate(node)
    if form == ir.COALESCE:
        kept: list[ir.RowExpression] = []
        for arg in args:
            if isinstance(arg, ir.Constant) and arg.value is None:
                continue
            kept.append(arg)
            if isinstance(arg, ir.Constant):
                break  # later args are unreachable
        if not kept:
            return ir.Constant(node.type, None)
        if len(kept) == 1:
            return kept[0] if kept[0].type == node.type else None
        if len(kept) != len(args):
            return ir.SpecialForm(node.type, ir.COALESCE, tuple(kept))
        return None
    if all(isinstance(a, ir.Constant) for a in args) and form not in (
        ir.ROW_CONSTRUCTOR,
        ir.ARRAY_CONSTRUCTOR,
    ):
        return _try_evaluate(node)
    return None


def simplify_expressions(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    """Fold constants in all node expressions; prune always-true filters
    and replace always-false filters with empty values."""
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if isinstance(node, plan.FilterNode):
            predicate = fold_constants(node.predicate)
            if isinstance(predicate, ir.Constant):
                if predicate.value is True:
                    changed[0] = True
                    return node.source
                changed[0] = True
                return plan.ValuesNode(list(node.output_symbols), [])
            if predicate is not node.predicate:
                changed[0] = True
                return plan.FilterNode(node.source, predicate)
            return None
        if isinstance(node, plan.ProjectNode):
            new_assignments = {}
            any_changed = False
            for symbol, expr in node.assignments.items():
                folded = fold_constants(expr)
                new_assignments[symbol] = folded
                if folded is not expr:
                    any_changed = True
            if any_changed:
                changed[0] = True
                return plan.ProjectNode(node.source, new_assignments)
            return None
        if isinstance(node, plan.JoinNode) and node.filter is not None:
            folded = fold_constants(node.filter)
            if isinstance(folded, ir.Constant) and folded.value is True:
                changed[0] = True
                return plan.JoinNode(
                    node.join_type, node.left, node.right, node.criteria, None,
                    node.distribution,
                )
            if folded is not node.filter:
                changed[0] = True
                return plan.JoinNode(
                    node.join_type, node.left, node.right, node.criteria, folded,
                    node.distribution,
                )
            return None
        return None

    new_root = plan.rewrite_plan(root, rewrite)
    return new_root, changed[0]
