"""Column pruning and projection cleanup (paper Sec. IV-C: "column
pruning" among the well-known optimizations)."""

from __future__ import annotations

from dataclasses import replace

from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.symbols import Symbol


def prune_columns(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    """Top-down pass removing unused outputs from scans, projections,
    aggregations, and join inputs."""
    changed = [False]
    if not isinstance(root, plan.OutputNode):
        return root, False
    required = set(s.name for s in root.outputs)
    new_source = _prune(root.source, required, changed)
    if changed[0]:
        return replace(root, source=new_source), True
    return root, False


def _needed(exprs, base: set[str]) -> set[str]:
    needed = set(base)
    for expr in exprs:
        needed |= ir.referenced_variables(expr)
    return needed


def _prune(node: plan.PlanNode, required: set[str], changed) -> plan.PlanNode:
    if isinstance(node, plan.ProjectNode):
        kept = {
            symbol: expr
            for symbol, expr in node.assignments.items()
            if symbol.name in required
        }
        if not kept:
            # Keep one column to preserve cardinality.
            first = next(iter(node.assignments), None)
            if first is not None:
                kept = {first: node.assignments[first]}
        child_required = _needed(kept.values(), set())
        new_source = _prune(node.source, child_required, changed)
        if len(kept) != len(node.assignments) or new_source is not node.source:
            changed[0] = True
            return plan.ProjectNode(new_source, kept)
        return node
    if isinstance(node, plan.FilterNode):
        child_required = _needed([node.predicate], required)
        new_source = _prune(node.source, child_required, changed)
        if new_source is not node.source:
            return replace(node, source=new_source)
        return node
    if isinstance(node, plan.TableScanNode):
        kept = [s for s in node.outputs if s.name in required]
        if not kept and node.outputs:
            kept = [node.outputs[0]]
        if len(kept) != len(node.outputs):
            changed[0] = True
            return plan.TableScanNode(
                node.table,
                {s: node.assignments[s] for s in kept},
                kept,
                node.constraint,
                node.layout,
            )
        return node
    if isinstance(node, plan.AggregationNode):
        kept_aggs = {
            symbol: call
            for symbol, call in node.aggregations.items()
            if symbol.name in required
        }
        if not kept_aggs and not node.group_by and node.aggregations:
            # A global aggregation must keep one output for cardinality.
            first = next(iter(node.aggregations))
            kept_aggs = {first: node.aggregations[first]}
        child_required = {s.name for s in node.group_by}
        for call in kept_aggs.values():
            for arg in call.arguments:
                child_required |= ir.referenced_variables(arg)
            if call.filter is not None:
                child_required |= ir.referenced_variables(call.filter)
        new_source = _prune(node.source, child_required, changed)
        if len(kept_aggs) != len(node.aggregations) or new_source is not node.source:
            changed[0] = True
            return plan.AggregationNode(new_source, node.group_by, kept_aggs, node.step)
        return node
    if isinstance(node, plan.JoinNode):
        child_required = set(required)
        for clause in node.criteria:
            child_required.add(clause.left.name)
            child_required.add(clause.right.name)
        if node.filter is not None:
            child_required |= ir.referenced_variables(node.filter)
        new_left = _prune(node.left, child_required, changed)
        new_right = _prune(node.right, child_required, changed)
        if new_left is not node.left or new_right is not node.right:
            return replace(node, left=new_left, right=new_right)
        return node
    if isinstance(node, plan.SemiJoinNode):
        child_required = set(required) | {k.name for k in node.source_keys}
        new_source = _prune(node.source, child_required, changed)
        new_filtering = _prune(
            node.filtering_source, {k.name for k in node.filtering_keys}, changed
        )
        if new_source is not node.source or new_filtering is not node.filtering_source:
            return replace(node, source=new_source, filtering_source=new_filtering)
        return node
    if isinstance(node, (plan.SortNode, plan.TopNNode)):
        child_required = set(required) | {o.symbol.name for o in node.order_by}
        new_source = _prune(node.source, child_required, changed)
        if new_source is not node.source:
            return replace(node, source=new_source)
        return node
    if isinstance(node, plan.WindowNode):
        kept_functions = {
            symbol: call
            for symbol, call in node.functions.items()
            if symbol.name in required
        }
        # Window passes through every input column, so all source outputs
        # remain required; this rule only drops unused window functions.
        child_required = {s.name for s in node.source.output_symbols}
        new_source = _prune(node.source, child_required, changed)
        if len(kept_functions) != len(node.functions):
            changed[0] = True
            return plan.WindowNode(
                new_source, node.partition_by, node.order_by, kept_functions, node.frame
            )
        if new_source is not node.source:
            return replace(node, source=new_source)
        return node
    if isinstance(node, plan.ExchangeNode):
        child_required = set(required) | {s.name for s in node.partition_keys}
        child_required |= {o.symbol.name for o in node.ordering}
        new_source = _prune(node.source, child_required, changed)
        if new_source is not node.source:
            return replace(node, source=new_source)
        return node
    if isinstance(node, (plan.LimitNode, plan.DistinctNode, plan.EnforceSingleRowNode)):
        # Distinct semantics depend on all columns; pass everything through.
        pass_through = (
            required
            if isinstance(node, (plan.LimitNode, plan.EnforceSingleRowNode))
            else {s.name for s in node.output_symbols}
        )
        new_source = _prune(node.sources[0], set(pass_through), changed)
        if new_source is not node.sources[0]:
            return node.replace_sources([new_source])
        return node
    # Default: require everything the node outputs from its children.
    new_sources = []
    any_changed = False
    for source in node.sources:
        child_required = {s.name for s in source.output_symbols}
        new_source = _prune(source, child_required, changed)
        any_changed = any_changed or new_source is not source
        new_sources.append(new_source)
    if any_changed:
        return node.replace_sources(new_sources)
    return node


def remove_identity_projections(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if isinstance(node, plan.ProjectNode) and node.is_identity():
            changed[0] = True
            return node.source
        return None

    return plan.rewrite_plan(root, rewrite), changed[0]


def merge_adjacent_projections(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    """Project(Project(x)) -> Project(x) by inlining, when safe."""
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if not (
            isinstance(node, plan.ProjectNode)
            and isinstance(node.source, plan.ProjectNode)
        ):
            return None
        inner = node.source
        mapping = {s.name: e for s, e in inner.assignments.items()}
        # Count references to avoid duplicating expensive expressions.
        reference_counts: dict[str, int] = {}
        for expr in node.assignments.values():
            for name in ir.referenced_variables(expr):
                reference_counts[name] = reference_counts.get(name, 0) + 1
        for name, expr in mapping.items():
            if isinstance(expr, (ir.Variable, ir.Constant)):
                continue
            if reference_counts.get(name, 0) > 1:
                return None
            for sub in ir.walk_expression(expr):
                if isinstance(sub, ir.Call) and not sub.function.deterministic:
                    return None
        merged = {
            symbol: ir.replace_variables(expr, mapping)
            for symbol, expr in node.assignments.items()
        }
        changed[0] = True
        return plan.ProjectNode(inner.source, merged)

    return plan.rewrite_plan(root, rewrite), changed[0]
