"""Planning pass for runtime dynamic filtering.

Decides which join edges get dynamic filters and annotates the plan:
the producing :class:`~repro.planner.nodes.JoinNode` /
:class:`~repro.planner.nodes.SemiJoinNode` records ``filter id ->
build-key clause index``, and the probe-side
:class:`~repro.planner.nodes.TableScanNode` records ``filter id ->
connector column name`` plus the bounded wait policy. Execution
(:mod:`repro.exec.dynamic_filters`) and the coordinator
(:mod:`repro.cluster.query`) consume the annotations; the plan itself
is otherwise unchanged, so the pass runs last, after the join order and
distribution are final.

Edge selection is soundness-first:

- Only INNER joins (probe side) qualify — outer-join probe sides must
  keep unmatched rows. Semi joins qualify only when the enclosing
  FilterNode provably keeps just matching rows (the plain
  ``x IN (subquery)`` shape), since SemiJoinNode itself emits *every*
  source row with a match flag.
- The probe key must trace to a scan column through Filter and
  identity-Project nodes only. Anything that changes the row multiset
  semantics (LIMIT, aggregations, ...) stops the trace.
- Stats gate (:mod:`repro.optimizer.stats`): the build side must be
  small enough to summarize, and when NDVs are known the filter must
  be expected to drop probe keys (build NDV / probe NDV below the
  configured threshold). Unknown stats enable optimistically — a
  useless filter costs one page-mask per batch, and the wait policy
  bounds scheduling delay.
"""

from __future__ import annotations

from repro.optimizer.context import OptimizerContext
from repro.planner import nodes as plan
from repro.planner.expressions import Variable, extract_conjuncts


def plan_dynamic_filters(root: plan.PlanNode, context: OptimizerContext):
    config = context.config
    if not config.dynamic_filtering_enabled:
        return root, False
    state = {"next_id": 0, "changed": False}
    _visit(root, None, context, state)
    return root, state["changed"]


def _visit(node: plan.PlanNode, parent, context, state) -> None:
    if isinstance(node, plan.JoinNode):
        _annotate_join(node, context, state)
    elif isinstance(node, plan.SemiJoinNode):
        _annotate_semi_join(node, parent, context, state)
    for source in node.sources:
        _visit(source, node, context, state)


def _annotate_join(node: plan.JoinNode, context, state) -> None:
    if node.dynamic_filter_ids or node.join_type is not plan.JoinType.INNER:
        return
    if not node.criteria:
        return
    build = context.stats.estimate(node.right)
    config = context.config
    if build.row_count is not None and (
        build.row_count > config.dynamic_filter_max_build_rows
    ):
        return
    probe = context.stats.estimate(node.left)
    for index, clause in enumerate(node.criteria):
        if not _selective_enough(
            build, clause.right.name, probe, clause.left.name, config
        ):
            continue
        target = _resolve_scan_column(node.left, clause.left.name)
        if target is None:
            continue
        _attach(node, target, index, config, state)


def _annotate_semi_join(node: plan.SemiJoinNode, parent, context, state) -> None:
    if node.dynamic_filter_ids:
        return
    # SemiJoinNode emits every source row plus a match flag; prefiltering
    # the source is sound only when the parent filter keeps matching
    # rows exclusively.
    if not isinstance(parent, plan.FilterNode):
        return
    if not any(
        isinstance(conjunct, Variable) and conjunct.name == node.output.name
        for conjunct in extract_conjuncts(parent.predicate)
    ):
        return
    build = context.stats.estimate(node.filtering_source)
    config = context.config
    if build.row_count is not None and (
        build.row_count > config.dynamic_filter_max_build_rows
    ):
        return
    probe = context.stats.estimate(node.source)
    for index, (source_key, filtering_key) in enumerate(
        zip(node.source_keys, node.filtering_keys)
    ):
        if not _selective_enough(
            build, filtering_key.name, probe, source_key.name, config
        ):
            continue
        target = _resolve_scan_column(node.source, source_key.name)
        if target is None:
            continue
        _attach(node, target, index, config, state)


def _attach(producer, target, clause_index, config, state) -> None:
    scan, column = target
    filter_id = f"df_{state['next_id']}"
    state["next_id"] += 1
    producer.dynamic_filter_ids[filter_id] = clause_index
    scan.dynamic_filters[filter_id] = column
    scan.dynamic_filter_wait_ms = config.dynamic_filter_wait_ms
    state["changed"] = True


def _selective_enough(build, build_key: str, probe, probe_key: str, config) -> bool:
    """NDV-containment estimate of the fraction of probe keys the filter
    keeps; unknown stats pass (optimistic)."""
    build_stats = build.symbols.get(build_key)
    probe_stats = probe.symbols.get(probe_key)
    ndv_build = build_stats.distinct_count if build_stats else None
    ndv_probe = probe_stats.distinct_count if probe_stats else None
    if ndv_build is not None and build.row_count is not None:
        ndv_build = min(ndv_build, build.row_count)
    if ndv_build is None or not ndv_probe:
        return True
    return ndv_build / ndv_probe <= config.dynamic_filter_selectivity_threshold


def _resolve_scan_column(node: plan.PlanNode, symbol_name: str):
    """Trace a probe key symbol down to ``(TableScanNode, column)``
    through Filter and identity-Project nodes; None when it does not
    reach a scan unchanged."""
    while True:
        if isinstance(node, plan.TableScanNode):
            for symbol, column in node.assignments.items():
                if symbol.name == symbol_name:
                    return node, column
            return None
        if isinstance(node, plan.FilterNode):
            node = node.source
            continue
        if isinstance(node, plan.ProjectNode):
            expression = None
            for symbol, expr in node.assignments.items():
                if symbol.name == symbol_name:
                    expression = expr
                    break
            if not isinstance(expression, Variable):
                return None
            symbol_name = expression.name
            node = node.source
            continue
        return None
