"""Data-layout selection and predicate pushdown into connectors
(paper Sec. IV-C1/C2).

Converts filter conjuncts above table scans into TupleDomains, asks the
connector for matching layouts through the Data Layout API, picks the
most efficient one (e.g. a layout indexed on the predicate columns),
and keeps only the unenforced remainder as an engine-side filter.
"""

from __future__ import annotations

from repro.connectors.predicate import TupleDomain
from repro.optimizer.domains import domain_to_predicate, extract_domains
from repro.planner import expressions as ir
from repro.planner import nodes as plan


def pick_table_layouts(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    """Top-down so a Filter directly above a scan is seen *with* the scan
    (the filter's domains must reach the Data Layout API)."""
    changed = [False]

    def visit(node: plan.PlanNode) -> plan.PlanNode:
        if isinstance(node, plan.FilterNode) and isinstance(
            node.source, plan.TableScanNode
        ) and node.source.layout is None:
            replacement = _apply(node.source, node.predicate, context)
            if replacement is not None:
                changed[0] = True
                return replacement
            return node
        if isinstance(node, plan.TableScanNode) and node.layout is None:
            replacement = _apply(node, None, context)
            if replacement is not None:
                changed[0] = True
                return replacement
            return node
        new_sources = [visit(s) for s in node.sources]
        if new_sources != node.sources:
            return node.replace_sources(new_sources)
        return node

    return visit(root), changed[0]


def _apply(scan: plan.TableScanNode, predicate, context):
    symbol_to_column = {s.name: c for s, c in scan.assignments.items()}
    column_to_symbol = {c: s for s, c in scan.assignments.items()}
    domain, residual_conjuncts = extract_domains(predicate)
    # Rename domains from symbol names to connector column names; domains
    # over computed symbols cannot be pushed.
    column_domains: dict = {}
    unpushable: list[ir.RowExpression] = []
    for name, column_domain in domain.domains.items():
        column = symbol_to_column.get(name)
        if column is None:
            symbol = _symbol_by_name(scan, name)
            rebuilt = domain_to_predicate(name, column_domain, symbol.type if symbol else None)
            if rebuilt is not None:
                unpushable.append(rebuilt)
            continue
        column_domains[column] = column_domain
    constraint = TupleDomain(column_domains) if not domain.is_none() else TupleDomain.none()
    constraint = constraint.intersect(scan.constraint)
    if domain.is_none() or constraint.is_none():
        # The predicate is unsatisfiable (e.g. `k IN (1, 3) AND k IN (2, 4)`):
        # the scan produces no rows. TupleDomain.none() carries no per-column
        # domains, so it must never reach the residual-rebuild path below —
        # the filter would silently vanish.
        return plan.ValuesNode(scan.outputs, [])

    layouts = context.metadata.table_layouts(
        scan.table, constraint, list(symbol_to_column.values())
    )
    if not layouts:
        return None
    # Prefer the layout that scans the smallest fraction of the table.
    layout = min(layouts, key=lambda candidate: candidate.scan_fraction)
    new_scan = plan.TableScanNode(
        scan.table, scan.assignments, scan.outputs, constraint, layout
    )
    # Residual = non-extractable conjuncts + domains the layout could not
    # enforce, mapped back to symbols.
    residual = list(residual_conjuncts) + unpushable
    for column, column_domain in layout.unenforced_predicate.domains.items():
        symbol = column_to_symbol.get(column)
        if symbol is None:
            continue
        rebuilt = domain_to_predicate(symbol.name, column_domain, symbol.type)
        if rebuilt is not None:
            residual.append(rebuilt)
    predicate_out = ir.combine_conjuncts(residual)
    if predicate_out is None:
        return new_scan
    return plan.FilterNode(new_scan, predicate_out)


def _symbol_by_name(scan: plan.TableScanNode, name: str):
    for symbol in scan.outputs:
        if symbol.name == name:
            return symbol
    return None
