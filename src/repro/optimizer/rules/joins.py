"""Cost-based join optimizations (paper Sec. IV-C).

Three rules:

- :func:`reorder_joins` — re-orders chains of inner equi-joins using
  table/column statistics (greedy smallest-intermediate-first), one of
  the two cost-based optimizations the paper calls out.
- :func:`select_join_distribution` — the other one: chooses
  REPLICATED (broadcast) vs PARTITIONED per join from the estimated
  build-side size, COLOCATED when both inputs share a compatible
  connector partitioning on the join keys (Sec. IV-C3), and keeps the
  build side the smaller input.
- :func:`select_index_joins` — rewrites a join into an index
  nested-loop join when the inner side is a bare scan over a layout
  that indexes the join columns and the probe side is small
  (Sec. IV-C1: "extremely efficient to operate on normalized data ...
  by joining against production data stores").
"""

from __future__ import annotations

from dataclasses import replace

from repro.optimizer.properties import derive_partitioning
from repro.planner import expressions as ir
from repro.planner import nodes as plan


# ---------------------------------------------------------------------------
# Join re-ordering
# ---------------------------------------------------------------------------


def reorder_joins(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    if not context.config.use_cost_based_optimizations:
        return root, False
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if not _is_reorderable(node):
            return None
        # Only fire on the topmost join of a chain.
        sources, clauses = _flatten(node)
        if len(sources) < 3:
            return None
        estimates = [context.stats.estimate(s).row_count for s in sources]
        if any(e is None for e in estimates):
            return None  # no stats: keep the syntactic order
        ordered = _greedy_order(sources, clauses, estimates, context)
        if ordered is None:
            return None
        new_node = ordered
        if _same_shape(node, new_node):
            return None
        changed[0] = True
        context.invalidate_stats()
        return _restore_output_order(new_node, node)

    # Top-down: rewrite the highest join first, skip its descendants.
    new_root = _rewrite_topdown(root, rewrite)
    return new_root, changed[0]


def _rewrite_topdown(node: plan.PlanNode, fn) -> plan.PlanNode:
    replacement = fn(node)
    if replacement is not None:
        node = replacement
        return node  # do not descend into freshly reordered joins
    new_sources = [_rewrite_topdown(s, fn) for s in node.sources]
    if new_sources != node.sources:
        node = node.replace_sources(new_sources)
    return node


def _is_reorderable(node: plan.PlanNode) -> bool:
    return (
        isinstance(node, plan.JoinNode)
        and node.join_type is plan.JoinType.INNER
        and bool(node.criteria)
        and node.filter is None
        and node.distribution is plan.JoinDistribution.AUTOMATIC
    )


def _flatten(node: plan.PlanNode):
    """Flatten a tree of inner equi-joins into (sources, clauses)."""
    sources: list[plan.PlanNode] = []
    clauses: list[plan.EquiJoinClause] = []

    def visit(current: plan.PlanNode) -> None:
        if _is_reorderable(current):
            clauses.extend(current.criteria)
            visit(current.left)
            visit(current.right)
        else:
            sources.append(current)

    visit(node)
    return sources, clauses


def _greedy_order(sources, clauses, estimates, context):
    """Left-deep greedy: start from the smallest relation, repeatedly add
    the connected relation minimizing the estimated intermediate size."""
    symbol_owner: dict[str, int] = {}
    for i, source in enumerate(sources):
        for symbol in source.output_symbols:
            symbol_owner[symbol.name] = i

    def clause_endpoints(clause):
        return symbol_owner.get(clause.left.name), symbol_owner.get(clause.right.name)

    remaining = set(range(len(sources)))
    start = min(remaining, key=lambda i: estimates[i])
    joined = {start}
    remaining.discard(start)
    current: plan.PlanNode = sources[start]
    used_clauses: set[int] = set()

    while remaining:
        # Candidates connected to the joined set by at least one clause.
        candidates = []
        for i in remaining:
            connecting = [
                (ci, c)
                for ci, c in enumerate(clauses)
                if ci not in used_clauses
                and _connects(clause_endpoints(c), joined, i)
            ]
            if connecting:
                candidates.append((i, connecting))
        if not candidates:
            return None  # disconnected graph (cross join in chain): bail out
        best = None
        for i, connecting in candidates:
            trial = _make_join(current, sources[i], connecting, joined, symbol_owner)
            cost = context.stats.estimate(trial).row_count
            if cost is None:
                cost = float("inf")
            if best is None or cost < best[0]:
                best = (cost, i, connecting, trial)
        _, index, connecting, trial = best
        current = trial
        joined.add(index)
        remaining.discard(index)
        used_clauses.update(ci for ci, _ in connecting)
    return current


def _connects(endpoints, joined: set[int], candidate: int) -> bool:
    a, b = endpoints
    return (a in joined and b == candidate) or (b in joined and a == candidate)


def _make_join(left, right, connecting, joined, symbol_owner):
    criteria = []
    right_names = {s.name for s in right.output_symbols}
    for _, clause in connecting:
        if clause.left.name in right_names:
            criteria.append(plan.EquiJoinClause(clause.right, clause.left))
        else:
            criteria.append(clause)
    return plan.JoinNode(plan.JoinType.INNER, left, right, criteria)


def _same_shape(a: plan.PlanNode, b: plan.PlanNode) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, plan.JoinNode):
        return (
            _same_shape(a.left, b.left)
            and _same_shape(a.right, b.right)
        )
    return a is b


def _restore_output_order(new_node: plan.PlanNode, original: plan.PlanNode):
    """Re-ordering permutes output symbols; restore the original order."""
    wanted = original.output_symbols
    produced = new_node.output_symbols
    if [s.name for s in wanted] == [s.name for s in produced]:
        return new_node
    assignments = {s: ir.Variable(s.type, s.name) for s in wanted}
    return plan.ProjectNode(new_node, assignments)


# ---------------------------------------------------------------------------
# Distribution selection
# ---------------------------------------------------------------------------


def select_join_distribution(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if not isinstance(node, plan.JoinNode):
            return None
        if node.distribution is not plan.JoinDistribution.AUTOMATIC:
            return None
        changed[0] = True
        if node.join_type is plan.JoinType.CROSS or not node.criteria:
            # Cross joins always replicate the (hopefully small) build side.
            return replace(node, distribution=plan.JoinDistribution.REPLICATED)
        # Co-located join: compatible connector partitionings on join keys.
        if context.config.colocated_joins_enabled:
            left_part = derive_partitioning(node.left)
            right_part = derive_partitioning(node.right)
            if (
                left_part is not None
                and right_part is not None
                and not left_part.single
                and left_part.is_compatible_with(right_part)
                and _keys_match(node, left_part.columns, right_part.columns)
            ):
                return replace(node, distribution=plan.JoinDistribution.COLOCATED)
        if node.join_type in (plan.JoinType.RIGHT, plan.JoinType.FULL):
            # The build side is preserved: every task flushes the build
            # rows it saw no match for, so a replicated build would emit
            # each unmatched build row once per task. Only a partitioned
            # build keeps that flush globally correct.
            return replace(node, distribution=plan.JoinDistribution.PARTITIONED)
        if not context.config.use_cost_based_optimizations:
            return replace(node, distribution=plan.JoinDistribution.PARTITIONED)
        left_estimate = context.stats.estimate(node.left)
        right_estimate = context.stats.estimate(node.right)
        if not right_estimate.known or not left_estimate.known:
            return replace(node, distribution=plan.JoinDistribution.PARTITIONED)
        right_bytes = right_estimate.output_bytes(len(node.right.output_symbols))
        left_bytes = left_estimate.output_bytes(len(node.left.output_symbols))
        # Keep the smaller side as the build side where legal.
        flipped = node
        if (
            left_bytes is not None
            and right_bytes is not None
            and left_bytes < right_bytes
            and node.join_type in (plan.JoinType.INNER,)
        ):
            flipped = plan.JoinNode(
                node.join_type,
                node.right,
                node.left,
                [plan.EquiJoinClause(c.right, c.left) for c in node.criteria],
                node.filter,
                plan.JoinDistribution.AUTOMATIC,
            )
            flipped = _restore_output_order(flipped, node)
            inner = flipped.source if isinstance(flipped, plan.ProjectNode) else flipped
            # After the flip, the original left side is the build side.
            inner.distribution = _distribution_for(
                context,
                build_bytes=left_bytes,
                build_rows=left_estimate.row_count,
                probe_rows=right_estimate.row_count,
            )
            return flipped
        return replace(
            node,
            distribution=_distribution_for(
                context,
                build_bytes=right_bytes,
                build_rows=right_estimate.row_count,
                probe_rows=left_estimate.row_count,
            ),
        )

    return plan.rewrite_plan(root, rewrite), changed[0]


def _distribution_for(context, build_bytes, build_rows, probe_rows) -> plan.JoinDistribution:
    """Cost-based replicated-vs-partitioned choice: broadcasting builds
    the hash table on every task, so the replicated build work
    (build_rows x fan-out) must stay below the probe work it saves from
    shuffling — and below the absolute size threshold."""
    config = context.config
    if build_bytes is None or build_rows is None:
        return plan.JoinDistribution.PARTITIONED
    if build_bytes > config.broadcast_join_threshold_bytes:
        return plan.JoinDistribution.PARTITIONED
    if probe_rows is not None and build_rows * config.replication_factor > probe_rows:
        return plan.JoinDistribution.PARTITIONED
    return plan.JoinDistribution.REPLICATED


def _keys_match(node: plan.JoinNode, left_columns, right_columns) -> bool:
    """The layouts' partition columns must be exactly the join keys (in
    the same partition-function order on both sides)."""
    if len(left_columns) != len(right_columns):
        return False
    pairs = {(c.left.name, c.right.name) for c in node.criteria}
    return all(
        (l, r) in pairs for l, r in zip(left_columns, right_columns)
    ) and len(left_columns) > 0


# ---------------------------------------------------------------------------
# Index joins
# ---------------------------------------------------------------------------


def select_index_joins(root: plan.PlanNode, context) -> tuple[plan.PlanNode, bool]:
    if not context.config.index_joins_enabled:
        return root, False
    changed = [False]

    def rewrite(node: plan.PlanNode) -> plan.PlanNode | None:
        if not isinstance(node, plan.JoinNode):
            return None
        if node.join_type not in (plan.JoinType.INNER, plan.JoinType.LEFT):
            return None
        if not node.criteria or node.filter is not None:
            return None
        if node.distribution not in (
            plan.JoinDistribution.AUTOMATIC,
            plan.JoinDistribution.PARTITIONED,
            plan.JoinDistribution.REPLICATED,
        ):
            return None
        scan = _bare_scan(node.right)
        if scan is None or scan.layout is None:
            return None
        symbol_to_column = {s.name: c for s, c in scan.assignments.items()}
        key_columns = []
        for clause in node.criteria:
            column = symbol_to_column.get(clause.right.name)
            if column is None:
                return None
            key_columns.append(column)
        if tuple(key_columns) not in {tuple(i) for i in scan.layout.indexes}:
            return None
        probe_estimate = context.stats.estimate(node.left)
        if (
            probe_estimate.known
            and probe_estimate.row_count > context.config.index_join_probe_limit
        ):
            return None
        build_estimate = context.stats.estimate(node.right)
        if (
            probe_estimate.known
            and build_estimate.known
            and build_estimate.row_count <= probe_estimate.row_count
        ):
            return None  # hash join is at least as good
        changed[0] = True
        key_mapping = [
            (clause.left, symbol_to_column[clause.right.name])
            for clause in node.criteria
        ]
        index_outputs = {s: scan.assignments[s] for s in scan.outputs}
        return plan.IndexJoinNode(
            node.left, scan.table, key_mapping, index_outputs, node.join_type
        )

    return plan.rewrite_plan(root, rewrite), changed[0]


def _bare_scan(node: plan.PlanNode) -> plan.TableScanNode | None:
    """The inner side must be a table scan (identity projections allowed)."""
    if isinstance(node, plan.TableScanNode):
        return node
    if isinstance(node, plan.ProjectNode) and node.is_identity():
        return _bare_scan(node.source)
    return None
