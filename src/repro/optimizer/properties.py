"""Plan-property derivation (paper Sec. IV-C3).

"Like connectors, nodes in the plan tree can express properties of
their outputs (i.e. the partitioning, sorting, bucketing, and grouping
characteristics of the data)." The optimizer and fragmenter use these
properties to elide or downgrade shuffles: a co-located join needs both
inputs partitioned compatibly on the join columns; an aggregation over
data already partitioned on the grouping keys needs no repartition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.connectors.api import TablePartitioning
from repro.planner import expressions as ir
from repro.planner import nodes as plan


@dataclass(frozen=True)
class PartitioningProperty:
    """Data is partitioned on ``columns`` (plan symbol names, ordered).

    ``connector_partitioning`` identifies the physical partitioning
    function when the data came from a connector layout (needed to prove
    two tables are co-partitioned); engine-made partitionings use the
    ``"system-hash"`` handle.
    """

    columns: tuple[str, ...]
    connector_partitioning: Optional[TablePartitioning] = None
    # True when all data is on a single node/stream (e.g. after GATHER).
    single: bool = False

    def is_compatible_with(self, other: "PartitioningProperty") -> bool:
        if self.single and other.single:
            return True
        if self.connector_partitioning is None or other.connector_partitioning is None:
            return False
        return self.connector_partitioning.is_compatible_with(
            other.connector_partitioning
        )


def derive_partitioning(node: plan.PlanNode) -> Optional[PartitioningProperty]:
    """Best-effort derivation of the output partitioning of ``node``."""
    if isinstance(node, plan.TableScanNode):
        layout = node.layout
        if layout is None or layout.partitioning is None:
            return None
        column_to_symbol = {c: s.name for s, c in node.assignments.items()}
        symbols = []
        for column in layout.partitioning.columns:
            symbol = column_to_symbol.get(column)
            if symbol is None:
                return None
            symbols.append(symbol)
        return PartitioningProperty(tuple(symbols), layout.partitioning)
    if isinstance(node, plan.ValuesNode):
        return PartitioningProperty((), None, single=True)
    if isinstance(node, (plan.FilterNode, plan.LimitNode, plan.SortNode,
                         plan.TopNNode, plan.DistinctNode, plan.WindowNode,
                         plan.EnforceSingleRowNode, plan.UnnestNode,
                         plan.SemiJoinNode)):
        return derive_partitioning(node.sources[0])
    if isinstance(node, plan.ProjectNode):
        inner = derive_partitioning(node.source)
        if inner is None:
            return None
        if inner.single:
            return inner
        renames: dict[str, str] = {}
        for out, expr in node.assignments.items():
            if isinstance(expr, ir.Variable):
                renames.setdefault(expr.name, out.name)
        new_columns = []
        for column in inner.columns:
            renamed = renames.get(column)
            if renamed is None:
                return None
            new_columns.append(renamed)
        return PartitioningProperty(
            tuple(new_columns), inner.connector_partitioning, inner.single
        )
    if isinstance(node, plan.AggregationNode):
        inner = derive_partitioning(node.source)
        if inner is None:
            return None
        if inner.single:
            return inner
        group_names = {s.name for s in node.group_by}
        if set(inner.columns) <= group_names:
            return inner
        return None
    if isinstance(node, plan.JoinNode):
        if node.distribution in (plan.JoinDistribution.COLOCATED,
                                 plan.JoinDistribution.REPLICATED,
                                 plan.JoinDistribution.INDEX):
            return derive_partitioning(node.left)
        return None
    if isinstance(node, plan.IndexJoinNode):
        return derive_partitioning(node.probe)
    if isinstance(node, plan.ExchangeNode):
        if node.kind is plan.ExchangeKind.GATHER:
            return PartitioningProperty((), None, single=True)
        if node.kind is plan.ExchangeKind.REPARTITION:
            return PartitioningProperty(
                tuple(s.name for s in node.partition_keys), None
            )
        return None
    return None
