"""The optimizer driver: applies rule sets greedily to a fixed point
(paper Sec. IV-C)."""

from __future__ import annotations

from repro.catalog.metadata import Metadata
from repro.optimizer.context import OptimizerConfig, OptimizerContext
from repro.optimizer.rules.dynamic_filters import plan_dynamic_filters
from repro.optimizer.rules.joins import (
    reorder_joins,
    select_index_joins,
    select_join_distribution,
)
from repro.optimizer.rules.layouts import pick_table_layouts
from repro.optimizer.rules.limits import pushdown_limits
from repro.optimizer.rules.pruning import (
    merge_adjacent_projections,
    prune_columns,
    remove_identity_projections,
)
from repro.optimizer.rules.pushdown import pushdown_predicates
from repro.optimizer.rules.simplify import simplify_expressions
from repro.planner.planner import Plan
from repro.planner.symbols import SymbolAllocator

# The iterative rule set; each entry runs until none of them changes the
# plan (the greedy fixed point the paper describes).
_ITERATIVE_RULES = (
    simplify_expressions,
    pushdown_predicates,
    merge_adjacent_projections,
    remove_identity_projections,
    pushdown_limits,
    prune_columns,
)


def optimize_plan(
    plan: Plan,
    metadata: Metadata,
    symbols: SymbolAllocator | None = None,
    config: OptimizerConfig | None = None,
    trace=None,
) -> Plan:
    context = OptimizerContext(
        metadata, symbols or SymbolAllocator(), config or OptimizerConfig()
    )
    context.trace = trace
    root = plan.root

    root = _fixed_point(root, context)
    # The rewrite-rule pack runs before layout selection so scan
    # consolidation sees un-pruned scans and the semi joins it plants
    # are visible to plan_dynamic_filters below. Each firing can expose
    # new work for the iterative rules (and vice versa), so alternate
    # to a fixed point.
    from repro.planner.rules import run_rewrite_rules

    for _ in range(context.config.max_optimizer_iterations):
        root, fired = run_rewrite_rules(root, context)
        if not fired:
            break
        root = _fixed_point(root, context)
    # Layout selection (pushes TupleDomains into connectors) may leave
    # residual filters; re-run the iterative rules afterwards.
    root, _ = pick_table_layouts(root, context)
    root = _fixed_point(root, context)
    # Cost-based join transformations run once the plan is stable.
    root, changed = reorder_joins(root, context)
    if changed:
        root = _fixed_point(root, context)
        # Reordering may enable better layouts for moved filters.
        root, layout_changed = pick_table_layouts(root, context)
        if layout_changed:
            root = _fixed_point(root, context)
    root, _ = select_index_joins(root, context)
    root, _ = select_join_distribution(root, context)
    root = _fixed_point(root, context)
    # Annotate runtime dynamic filters once the plan shape is final
    # (join order, distribution, and column pruning all settled).
    root, _ = plan_dynamic_filters(root, context)

    return Plan(root, plan.column_names, plan.column_types)


def _fixed_point(root, context):
    for _ in range(context.config.max_optimizer_iterations):
        any_changed = False
        for rule in _ITERATIVE_RULES:
            root, changed = rule(root, context)
            if changed:
                any_changed = True
                context.invalidate_stats()
        if not any_changed:
            return root
    return root
