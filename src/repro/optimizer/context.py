"""Shared state passed to optimizer rules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.metadata import Metadata
from repro.optimizer.stats import StatsEstimator
from repro.planner.symbols import SymbolAllocator


@dataclass
class OptimizerConfig:
    """Session-level optimizer settings (paper Sec. IV-C, VI-A)."""

    # Broadcast the build side when its estimated size is below this.
    broadcast_join_threshold_bytes: float = 32 * 1024 * 1024
    # Estimated task fan-out: replicating the build side costs roughly
    # build_bytes * replication_factor, which must beat shuffling the
    # probe side for a broadcast join to win.
    replication_factor: float = 8.0
    # Use cost-based join re-ordering / distribution when stats exist.
    use_cost_based_optimizations: bool = True
    # Allow co-located joins when layouts share partitioning (Sec. IV-C3).
    colocated_joins_enabled: bool = True
    # Allow index nested-loop joins when a connector exposes an index.
    index_joins_enabled: bool = True
    # Probe row bound for choosing an index join over a hash join.
    index_join_probe_limit: float = 100_000.0
    max_optimizer_iterations: int = 20
    # Runtime dynamic filtering (build-side join domains pushed into
    # probe scans and split pruning). The planning pass annotates a
    # join edge only when the build side is small enough to summarize
    # and stats suggest the filter keeps at most
    # ``dynamic_filter_selectivity_threshold`` of the probe's distinct
    # keys (unknown stats enable optimistically — the wait policy
    # bounds the downside).
    dynamic_filtering_enabled: bool = True
    dynamic_filter_max_build_rows: float = 1_000_000.0
    dynamic_filter_selectivity_threshold: float = 0.9
    # How long a probe scan's split scheduling may stall waiting for
    # build-side filters before degrading to unfiltered reads
    # (virtual-clock ms; 0 = apply filters opportunistically, never
    # stall).
    dynamic_filter_wait_ms: float = 0.0
    # -- rewrite-rule pack (repro.planner.rules; docs/OPTIMIZER.md) ----
    # Per-rule gates for the QueryTorque-taxonomy rewrites. The two
    # decorrelation rules run at plan time (the planner consults this
    # config); the rest run inside the optimizer's rewrite engine.
    rule_decorrelate_subquery: bool = True
    rule_decorrelate_scalar: bool = True
    rule_consolidate_scans: bool = True
    rule_setop_semijoin: bool = True
    rule_cte_pushdown: bool = True
    # When False, enabled rules fire without consulting their stats
    # cost guards (the `rewrites` fuzz config uses this to maximize
    # rewrite coverage; guard skips are still recorded in the trace).
    rewrite_cost_guards: bool = True
    # Total rule applications allowed per query; the engine stops
    # rewriting (and records budget exhaustion) once spent.
    rewrite_budget: int = 64
    # setop_semijoin guard: skip the rewrite when the filtering side is
    # estimated larger than this many rows (<= 0 means "skip unless the
    # estimate proves the build side small" — conservative mode).
    setop_semijoin_max_build_rows: float = 10_000_000.0
    # cte_pushdown guard: skip when the predicate is estimated to keep
    # more than this fraction of rows (pushing a non-filtering
    # predicate below a window/distinct boundary just moves work).
    cte_pushdown_max_selectivity: float = 0.98


@dataclass
class OptimizerContext:
    metadata: Metadata
    symbols: SymbolAllocator
    config: OptimizerConfig = field(default_factory=OptimizerConfig)
    # Per-query rewrite-rule record (repro.planner.rules.engine.RuleTrace);
    # shared with the planner so plan-time rules land in the same trace.
    trace: object | None = None
    _stats: StatsEstimator | None = None

    @property
    def stats(self) -> StatsEstimator:
        if self._stats is None:
            self._stats = StatsEstimator(self.metadata)
        return self._stats

    def invalidate_stats(self) -> None:
        if self._stats is not None:
            self._stats.invalidate()
