"""Query optimizer (paper Sec. IV-C).

"The process works by evaluating a set of transformation rules greedily
until a fixed point is reached." Rules implemented here: expression
simplification/constant folding, predicate pushdown (including TupleDomain
extraction into connector layouts), column pruning, limit pushdown and
TopN formation, identity-projection removal, cost-based join re-ordering
and join strategy (distribution) selection, co-located and index join
selection.
"""

from repro.optimizer.optimizer import optimize_plan

__all__ = ["optimize_plan"]
