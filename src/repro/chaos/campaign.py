"""Deterministic chaos campaigns: concurrent queries + injected faults.

A campaign takes one :class:`ChaosPlan` and plays it out on a fresh
fault-tolerant SimCluster:

1. The fuzz grammar's fixed-schema tables (``t0``/``t1``) are generated
   from the plan seed and loaded once; queries come from consecutive
   grammar seeds, so every campaign runs a different-but-reproducible
   workload against shared data.
2. Expected results are computed up front with the fuzz reference
   oracle (errors are outcomes too, compared by class).
3. Queries are submitted at staggered virtual times; crashes, degraded
   workers, transient transfer failures, and duplicated deliveries are
   injected from the same seeded PRNG.
4. Every query's outcome is compared against the oracle:
   ``normalize_rows`` equality for rows (float rounding + multiset
   order), error-class equality for errors.

With recovery enabled the acceptance bar is: at least
``threshold`` (default 95%) of queries complete without query-level
failure AND zero finished queries disagree with the oracle. With
recovery disabled the same plan reproduces the paper's fail-the-query
behaviour (Sec. IV-G) for queries touching the crashed node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.metadata import Metadata
from repro.cluster import ClusterConfig, FaultToleranceConfig, SimCluster
from repro.connectors.memory import MemoryConnector
from repro.errors import error_category
from repro.fuzz.grammar import generate_case
from repro.fuzz.oracle import run_oracle
from repro.fuzz.runner import load_tables, normalize_rows


@dataclass
class ChaosPlan:
    """One campaign's full specification; results are a pure function
    of this object."""

    seed: int = 0
    queries: int = 8
    worker_count: int = 4
    # Faults: how many workers to crash (capped so at least
    # ``min_survivors`` remain), when, and how many nodes to degrade.
    crash_count: int = 1
    crash_window_ms: tuple[float, float] = (0.5, 8.0)
    min_survivors: int = 2
    slow_worker_count: int = 1
    slow_factor: float = 4.0
    transient_failure_rate: float = 0.02
    transfer_duplicate_rate: float = 0.02
    # Memory pressure: when set, shrinks the per-node user memory limit
    # so heavy queries are killed with ExceededMemoryLimitError (a
    # deterministic, non-retryable kill — an acceptable outcome, never
    # a correctness one).
    per_node_memory_limit_bytes: Optional[int] = None
    # Queries are submitted at uniform times in [0, submit_window_ms).
    submit_window_ms: float = 20.0
    recovery_enabled: bool = True
    heartbeat_interval_ms: float = 50.0
    heartbeat_timeout_ms: float = 200.0
    # Network partitions: how many (non-crashed) workers to cut off,
    # when, and whether/when each partition heals. one_way severs only
    # the inbound direction (the classic asymmetric partition: the node
    # looks dead but keeps emitting stale output that must be fenced).
    # All draws are gated on partition_count so legacy plans keep their
    # PRNG sequences byte-identical.
    partition_count: int = 0
    partition_window_ms: tuple[float, float] = (0.5, 8.0)
    partition_heal_after_ms: Optional[float] = 300.0
    one_way_partitions: bool = False
    # Coordinator kill/restart: crash the coordinator at a fixed virtual
    # time (None disables) and bring it back after a fixed delay; every
    # journaled-incomplete query is re-admitted and re-planned.
    coordinator_kill_at_ms: Optional[float] = None
    coordinator_restart_after_ms: float = 100.0
    # Durable spooling + checkpoint cadence (repro.cluster.spool/fault).
    spool_enabled: bool = False
    checkpoint_interval_ms: Optional[float] = None


@dataclass
class QueryReport:
    seed: int
    sql: str
    expected: tuple
    actual: tuple
    state: str
    error_category: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.actual == self.expected

    @property
    def mismatch(self) -> bool:
        """Finished, but with rows that disagree with the oracle — the
        one outcome chaos must never produce."""
        return (
            self.state == "finished"
            and self.expected[0] == "rows"
            and not self.ok
        )


@dataclass
class CampaignReport:
    plan: ChaosPlan
    reports: list[QueryReport] = field(default_factory=list)
    crashed_workers: list[str] = field(default_factory=list)
    slowed_workers: list[str] = field(default_factory=list)
    partitioned_workers: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def survival_rate(self) -> float:
        if not self.reports:
            return 1.0
        return sum(1 for r in self.reports if r.ok) / len(self.reports)

    @property
    def mismatches(self) -> list[QueryReport]:
        return [r for r in self.reports if r.mismatch]

    @property
    def resource_kills(self) -> list[QueryReport]:
        """Queries killed by deterministic resource limits (memory /
        time) — acceptable under injected pressure, never retried."""
        return [
            r
            for r in self.reports
            if r.state == "failed" and r.error_category == "INSUFFICIENT_RESOURCES"
        ]

    def ok(self, threshold: float = 0.95) -> bool:
        return not self.mismatches and self.survival_rate >= threshold

    def summary(self) -> str:
        failed = [r for r in self.reports if not r.ok]
        lines = [
            f"campaign seed={self.plan.seed}: {len(self.reports)} queries, "
            f"survival {self.survival_rate:.0%}, "
            f"{len(self.mismatches)} result mismatch(es); "
            f"crashed {self.crashed_workers or 'none'}, "
            f"slowed {self.slowed_workers or 'none'}, "
            f"partitioned {self.partitioned_workers or 'none'}, "
            f"recovered {self.stats.get('ft.tasks_recovered', 0)} task(s), "
            f"retried {self.stats.get('ft.transfers_retried', 0)} transfer(s), "
            f"dropped {self.stats.get('chaos.duplicates_dropped', 0)} duplicate(s)"
        ]
        for r in failed:
            lines.append(
                f"  seed {r.seed} [{r.state}"
                + (f"/{r.error_category}" if r.error_category else "")
                + f"] expected {r.expected[0]}, got {r.actual[0]}: {r.sql[:100]}"
            )
        return "\n".join(lines)


def _build_cluster(plan: ChaosPlan, tables) -> SimCluster:
    memory_overrides = {}
    if plan.per_node_memory_limit_bytes is not None:
        memory_overrides["per_node_user_limit_bytes"] = plan.per_node_memory_limit_bytes
    config = ClusterConfig(
        worker_count=plan.worker_count,
        **memory_overrides,
        default_catalog="memory",
        default_schema="default",
        transient_failure_rate=plan.transient_failure_rate,
        transfer_duplicate_rate=plan.transfer_duplicate_rate,
        fault_tolerance=FaultToleranceConfig(
            enabled=True,
            task_recovery_enabled=plan.recovery_enabled,
            heartbeat_interval_ms=plan.heartbeat_interval_ms,
            heartbeat_timeout_ms=plan.heartbeat_timeout_ms,
            spool_enabled=plan.spool_enabled,
            checkpoint_interval_ms=plan.checkpoint_interval_ms,
        ),
    )
    cluster = SimCluster(config)
    connector = MemoryConnector()
    load_tables(connector, tables)
    cluster.register_catalog("memory", connector)
    return cluster


def run_campaign(plan: ChaosPlan) -> CampaignReport:
    rng = random.Random(plan.seed * 0x9E3779B1 + 0xC0FFEE)
    # Shared data: the grammar always emits t0/t1 with fixed schemas
    # (only the rows vary by seed), so one seed's tables serve every
    # query in the campaign.
    tables = generate_case(plan.seed).tables
    cases = [generate_case(plan.seed + 1 + i) for i in range(plan.queries)]

    # Expected outcomes from the reference oracle.
    metadata = Metadata()
    oracle_connector = MemoryConnector()
    load_tables(oracle_connector, tables)
    metadata.register_catalog("memory", oracle_connector)
    expected: list[tuple] = []
    for case in cases:
        try:
            rows = run_oracle(metadata, case.sql)[1]
            expected.append(("rows", tuple(normalize_rows(rows))))
        except Exception as exc:
            expected.append(("error", type(exc).__name__))

    cluster = _build_cluster(plan, tables)
    handles: list = [None] * len(cases)
    submit_errors: list = [None] * len(cases)

    def submit(index: int, sql: str, retries: int = 10) -> None:
        # A client that finds the coordinator down retries later (the
        # paper's stance on coordinator failure); every other submit
        # error is a real outcome.
        if not cluster.coordinator_alive and retries > 0:
            cluster.sim.schedule(
                25.0, lambda: submit(index, sql, retries - 1)
            )
            return
        try:
            handles[index] = cluster.submit(sql)
        except Exception as exc:
            submit_errors[index] = exc

    for i, case in enumerate(cases):
        at = rng.uniform(0.0, plan.submit_window_ms)
        cluster.sim.schedule(at, lambda i=i, sql=case.sql: submit(i, sql))

    # Fault schedule: crashes first (capped to keep min_survivors),
    # then degrade some survivors.
    names = list(cluster.workers)
    crash_count = max(0, min(plan.crash_count, plan.worker_count - plan.min_survivors))
    victims = rng.sample(names, crash_count)
    for name in victims:
        at = rng.uniform(*plan.crash_window_ms)
        cluster.sim.schedule(at, lambda n=name: cluster.crash_worker(n))
    survivors = [n for n in names if n not in victims]
    slowed = rng.sample(survivors, min(plan.slow_worker_count, len(survivors)))
    for name in slowed:
        at = rng.uniform(*plan.crash_window_ms)
        cluster.sim.schedule(
            at, lambda n=name: cluster.degrade_worker(n, plan.slow_factor)
        )

    # Asymmetric/symmetric partitions against non-crashed workers. Every
    # draw is inside this branch so partition-free plans reproduce the
    # historic PRNG sequence exactly.
    partitioned: list[str] = []
    if plan.partition_count > 0:
        candidates = [n for n in survivors if n not in slowed] or survivors
        partitioned = rng.sample(
            candidates, min(plan.partition_count, len(candidates))
        )
        for name in partitioned:
            at = rng.uniform(*plan.partition_window_ms)
            cluster.sim.schedule(
                at,
                lambda n=name: cluster.partition_worker(
                    n, one_way=plan.one_way_partitions
                ),
            )
            if plan.partition_heal_after_ms is not None:
                cluster.sim.schedule(
                    at + plan.partition_heal_after_ms,
                    lambda n=name: cluster.heal_partition(n),
                )

    if plan.coordinator_kill_at_ms is not None:
        cluster.sim.schedule(
            plan.coordinator_kill_at_ms, cluster.crash_coordinator
        )
        cluster.sim.schedule(
            plan.coordinator_kill_at_ms + plan.coordinator_restart_after_ms,
            cluster.restart_coordinator,
        )

    cluster.run()

    report = CampaignReport(
        plan,
        crashed_workers=victims,
        slowed_workers=slowed,
        partitioned_workers=partitioned,
    )
    duplicates_dropped = 0
    for i, case in enumerate(cases):
        handle = handles[i]
        if handle is None:
            error = submit_errors[i]
            actual = ("error", type(error).__name__ if error else "NotSubmitted")
            state = "submit-failed"
            category = error_category(error) if error else None
        elif handle.state == "finished":
            actual = ("rows", tuple(normalize_rows(handle.rows())))
            state = "finished"
            category = None
            duplicates_dropped += sum(
                client.duplicates_dropped
                for stage in handle.stages.values()
                for task in stage.tasks
                for client in task.exchange_clients.values()
            )
        else:
            actual = ("error", type(handle.error).__name__)
            state = handle.state
            category = error_category(handle.error)
        report.reports.append(
            QueryReport(case.seed, case.sql, expected[i], actual, state, category)
        )
    report.stats = cluster.stats_snapshot()
    report.stats["chaos.duplicates_dropped"] = duplicates_dropped
    return report


# ---------------------------------------------------------------------------
# Canned scenarios (docs/FAULT_TOLERANCE.md)
# ---------------------------------------------------------------------------


def run_partition(
    seed: int = 0,
    queries: int = 6,
    worker_count: int = 4,
    one_way: bool = False,
) -> CampaignReport:
    """Partition campaign: one worker crashes while another is cut off
    the network (asymmetric if ``one_way``) and later healed. Durable
    spooling is on, so drained streams survive both fault kinds; the
    healed worker's stale task attempts must be fenced, never merged."""
    plan = ChaosPlan(
        seed=seed,
        queries=queries,
        worker_count=worker_count,
        crash_count=1,
        slow_worker_count=0,
        partition_count=1,
        one_way_partitions=one_way,
        partition_heal_after_ms=300.0,
        spool_enabled=True,
    )
    return run_campaign(plan)


def run_coordinator_kill(
    seed: int = 0,
    queries: int = 6,
    worker_count: int = 4,
    kill_at_ms: float = 10.0,
    restart_after_ms: float = 100.0,
) -> CampaignReport:
    """Coordinator kill/restart campaign: the coordinator dies in the
    middle of the submit window and restarts later, replaying its
    write-ahead journal. In-flight queries are re-planned from SQL and
    must still match the oracle bit-exactly; clients that hit the dead
    coordinator resubmit; checkpoints carry the spent retry budgets
    across the restart."""
    plan = ChaosPlan(
        seed=seed,
        queries=queries,
        worker_count=worker_count,
        crash_count=0,
        slow_worker_count=0,
        transient_failure_rate=0.0,
        transfer_duplicate_rate=0.0,
        coordinator_kill_at_ms=kill_at_ms,
        coordinator_restart_after_ms=restart_after_ms,
        spool_enabled=True,
        checkpoint_interval_ms=10.0,
    )
    return run_campaign(plan)


# ---------------------------------------------------------------------------
# Affinity-kill scenario (caching tier, docs/CACHING.md)
# ---------------------------------------------------------------------------


@dataclass
class AffinityKillReport:
    """Outcome of one affinity-kill run: the affinity-preferred worker
    (the one holding the most cached stripes) is crashed mid-query."""

    victim: str
    expected: tuple
    cold: tuple
    warm: tuple
    killed: tuple
    rewarmed: tuple
    #: stripe-cache hits observed during each phase
    warm_hit_delta: int
    killed_hit_delta: int
    rewarm_hit_delta: int
    killed_state: str
    stats: dict = field(default_factory=dict)

    @property
    def bit_exact(self) -> bool:
        return (
            self.cold == self.expected
            and self.warm == self.expected
            and self.killed == self.expected
            and self.rewarmed == self.expected
        )

    @property
    def degraded_gracefully(self) -> bool:
        """Hits dip when the holder dies, without the query failing, and
        recover once the survivors re-warm."""
        return (
            self.killed_state == "finished"
            and self.killed_hit_delta < self.warm_hit_delta
            and self.rewarm_hit_delta > self.killed_hit_delta
        )


def _affinity_cluster(tables, worker_count: int, cache_config) -> SimCluster:
    from repro.connectors.hive import HiveConnector
    from repro.workload.datasets import _load_table

    config = ClusterConfig(
        worker_count=worker_count,
        default_catalog="hive",
        default_schema="default",
        fault_tolerance=FaultToleranceConfig(
            enabled=True,
            task_recovery_enabled=True,
            heartbeat_interval_ms=50.0,
            heartbeat_timeout_ms=200.0,
        ),
        cache=cache_config,
    )
    cluster = SimCluster(config)
    connector = HiveConnector(
        catalog_name="hive", stripe_rows=32, max_rows_per_file=64
    )
    for name, columns, rows in tables:
        _load_table(connector, "hive", "default", name, columns, rows)
    cluster.register_catalog("hive", connector)
    return cluster


def run_affinity_kill(
    seed: int = 0, worker_count: int = 4, row_count: int = 2000
) -> AffinityKillReport:
    """Kill the affinity-preferred worker mid-query.

    Cold run warms the stripe caches, a warm run proves they hit, then
    the worker holding the most stripes is crashed while a third run is
    in flight: task recovery must finish it with exact rows while
    ``cache.stripe_hits`` degrades (the victim's stripes are gone), and
    a final run re-warms the survivors. Results are a pure function of
    ``seed``."""
    from repro.cache import CacheConfig
    from repro.types import BIGINT, DOUBLE, VARCHAR

    rng = random.Random(seed * 0x9E3779B1 + 0xAFF1)
    rows = [
        (
            i,
            rng.randrange(1_000),
            round(rng.uniform(0.0, 500.0), 3),
            rng.choice(("a", "b", "c", "d", "e")),
        )
        for i in range(row_count)
    ]
    tables = [
        ("events", [("k", BIGINT), ("v", BIGINT), ("x", DOUBLE), ("s", VARCHAR)], rows)
    ]
    sql = "SELECT s, count(*), sum(v), sum(x) FROM events GROUP BY 1"

    # The result cache must stay OFF here: a result-cache hit would serve
    # the killed run from the coordinator without touching a single
    # worker, and the scenario exists to exercise the worker-side path.
    cache_config = CacheConfig(
        stripe_cache_enabled=True,
        affinity_scheduling_enabled=True,
        result_cache_enabled=False,
        metadata_latency_ms=0.5,
    )
    cluster = _affinity_cluster(tables, worker_count, cache_config)
    plain = _affinity_cluster(tables, worker_count, CacheConfig.disabled())
    expected = ("rows", tuple(normalize_rows(plain.run_query(sql, drain=True).rows())))

    def stripe_hits() -> int:
        return cluster.stats_snapshot()["cache.stripe_hits"]

    def outcome(handle) -> tuple:
        if handle.state == "finished":
            return ("rows", tuple(normalize_rows(handle.rows())))
        return ("error", type(handle.error).__name__)

    cold = cluster.run_query(sql, drain=True)
    base = stripe_hits()
    warm = cluster.run_query(sql, drain=True)
    warm_delta = stripe_hits() - base

    # The affinity-preferred worker is the one holding the most stripes.
    victim = max(
        cluster.workers.values(),
        key=lambda w: (len(w.stripe_cache.entries), w.name),
    ).name
    killed = cluster.submit(sql)
    cluster.sim.run(until_ms=cluster.sim.now + 1.0)
    before_kill = stripe_hits()
    cluster.crash_worker(victim)
    cluster.run()
    killed_delta = stripe_hits() - before_kill

    before_rewarm = stripe_hits()
    rewarmed = cluster.run_query(sql, drain=True)
    rewarm_delta = stripe_hits() - before_rewarm

    stats = cluster.stats_snapshot()
    return AffinityKillReport(
        victim=victim,
        expected=expected,
        cold=outcome(cold),
        warm=outcome(warm),
        killed=outcome(killed),
        rewarmed=outcome(rewarmed),
        warm_hit_delta=warm_delta,
        killed_hit_delta=killed_delta,
        rewarm_hit_delta=rewarm_delta,
        killed_state=killed.state,
        stats=stats,
    )


def run_campaigns(
    seed: int, campaigns: int, **plan_overrides
) -> list[CampaignReport]:
    """Run ``campaigns`` independent campaigns at consecutive seeds
    (each gets fresh tables, queries, and fault schedule)."""
    reports = []
    for i in range(campaigns):
        plan = ChaosPlan(seed=seed + i * 1000, **plan_overrides)
        reports.append(run_campaign(plan))
    return reports
