"""Chaos campaign harness for the fault-tolerant simulated cluster.

Runs concurrent multi-query campaigns against a SimCluster while
injecting worker crashes mid-query, slow (degraded) workers, and
lost/duplicated transfers — then verifies every surviving query's
results bit-exactly against the fuzz reference oracle. Everything runs
on the virtual clock from seeded PRNGs, so a campaign is a pure
function of its plan: failures reproduce from the seed alone.

    python -m repro.chaos --seed 0 --queries 8 --campaigns 5
"""

from repro.chaos.campaign import (
    AffinityKillReport,
    CampaignReport,
    ChaosPlan,
    QueryReport,
    run_affinity_kill,
    run_campaign,
    run_campaigns,
    run_coordinator_kill,
    run_partition,
)

__all__ = [
    "AffinityKillReport",
    "CampaignReport",
    "ChaosPlan",
    "QueryReport",
    "run_affinity_kill",
    "run_campaign",
    "run_campaigns",
    "run_coordinator_kill",
    "run_partition",
]
