"""CLI for chaos campaigns.

    python -m repro.chaos --seed 0 --campaigns 5 --queries 8
    python -m repro.chaos --seed 0 --no-recovery   # fail-the-query mode

Exit code 0 iff every campaign meets the acceptance bar: zero result
mismatches and survival rate >= --threshold (with recovery disabled the
threshold check is skipped — crashed queries are *expected* to fail;
only correctness of the finished ones is enforced).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.chaos.campaign import run_campaigns


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run deterministic chaos campaigns against the "
        "fault-tolerant simulated cluster.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base campaign seed")
    parser.add_argument(
        "--campaigns", type=int, default=3, help="number of independent campaigns"
    )
    parser.add_argument(
        "--queries", type=int, default=8, help="concurrent queries per campaign"
    )
    parser.add_argument("--workers", type=int, default=4, help="cluster size")
    parser.add_argument(
        "--crashes", type=int, default=1, help="workers to crash mid-campaign"
    )
    parser.add_argument(
        "--slow", type=int, default=1, help="surviving workers to degrade"
    )
    parser.add_argument(
        "--transient-rate",
        type=float,
        default=0.02,
        help="per-transfer transient failure probability",
    )
    parser.add_argument(
        "--duplicate-rate",
        type=float,
        default=0.02,
        help="per-transfer duplicated-delivery probability",
    )
    parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-node user memory limit; small values inject "
        "memory-pressure kills (ExceededMemoryLimitError)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=0,
        help="workers to cut off the network mid-campaign (healed later)",
    )
    parser.add_argument(
        "--one-way",
        action="store_true",
        help="make injected partitions asymmetric (inbound-only severed)",
    )
    parser.add_argument(
        "--coordinator-kill",
        type=float,
        default=None,
        metavar="MS",
        help="crash the coordinator at this virtual time and restart it "
        "100ms later (journal replay re-admits in-flight queries)",
    )
    parser.add_argument(
        "--spool",
        action="store_true",
        help="enable the durable output spool (repro.cluster.spool)",
    )
    parser.add_argument(
        "--no-recovery",
        action="store_true",
        help="disable task recovery (failure detection still on): queries "
        "touching a crashed worker fail, reproducing paper Sec. IV-G",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.95,
        help="minimum survival rate per campaign (recovery mode only)",
    )
    args = parser.parse_args(argv)

    started = time.time()
    reports = run_campaigns(
        args.seed,
        args.campaigns,
        queries=args.queries,
        worker_count=args.workers,
        crash_count=args.crashes,
        slow_worker_count=args.slow,
        transient_failure_rate=args.transient_rate,
        transfer_duplicate_rate=args.duplicate_rate,
        per_node_memory_limit_bytes=args.memory_limit,
        recovery_enabled=not args.no_recovery,
        partition_count=args.partitions,
        one_way_partitions=args.one_way,
        coordinator_kill_at_ms=args.coordinator_kill,
        spool_enabled=args.spool or args.coordinator_kill is not None,
        checkpoint_interval_ms=10.0 if args.coordinator_kill is not None else None,
    )
    elapsed = time.time() - started

    failures = 0
    for report in reports:
        if args.no_recovery or args.memory_limit is not None:
            # Query-level failures are expected in these modes; only
            # correctness of whatever finished is enforced.
            passed = not report.mismatches
        else:
            passed = report.ok(args.threshold)
        if not passed:
            failures += 1
        print(("PASS " if passed else "FAIL ") + report.summary())

    total = sum(len(r.reports) for r in reports)
    survived = sum(sum(1 for q in r.reports if q.ok) for r in reports)
    print(
        f"{len(reports)} campaign(s), {total} queries, {survived} survived, "
        f"{failures} campaign failure(s), {elapsed:.1f}s"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
