"""Global metadata manager: routes catalog names to connectors.

The coordinator holds one of these; resolving ``catalog.schema.table``
dispatches to the Metadata API of the registered connector (paper
Sec. III: the extensible, federated design lets a single cluster process
data from many data sources, even within a single query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.catalog.schema import QualifiedTableName, TableMetadata, TableStatistics
from repro.connectors.api import Connector, ConnectorTableLayout
from repro.connectors.predicate import TupleDomain
from repro.errors import CatalogNotFoundError, TableNotFoundError


@dataclass(frozen=True)
class TableHandle:
    """Engine-level handle: catalog name plus connector-specific handle."""

    catalog: str
    connector_handle: object
    name: QualifiedTableName


class Metadata:
    """Registry of connectors keyed by catalog name."""

    def __init__(self):
        self._connectors: dict[str, Connector] = {}
        # Read-path calls that actually reached a connector's Metadata
        # API. The caching subclass (src/repro/cache/metadata_cache.py)
        # only falls through here on a miss, so for a cached coordinator
        # this counts misses and for a plain one it counts every lookup.
        self.connector_calls = 0

    def register_catalog(self, catalog: str, connector: Connector) -> None:
        self._connectors[catalog] = connector

    def catalogs(self) -> list[str]:
        return sorted(self._connectors)

    def connectors(self) -> list[Connector]:
        """Registered connectors in catalog-name order (stats export)."""
        return [self._connectors[catalog] for catalog in self.catalogs()]

    def connector(self, catalog: str) -> Connector:
        try:
            return self._connectors[catalog]
        except KeyError:
            raise CatalogNotFoundError(f"Catalog not found: {catalog}")

    def resolve_table(self, catalog: str, schema: str, table: str) -> TableHandle | None:
        connector = self.connector(catalog)
        self.connector_calls += 1
        handle = connector.metadata.get_table_handle(schema, table)
        if handle is None:
            return None
        return TableHandle(catalog, handle, QualifiedTableName(catalog, schema, table))

    def require_table(self, catalog: str, schema: str, table: str) -> TableHandle:
        handle = self.resolve_table(catalog, schema, table)
        if handle is None:
            raise TableNotFoundError(f"Table not found: {catalog}.{schema}.{table}")
        return handle

    def table_metadata(self, handle: TableHandle) -> TableMetadata:
        self.connector_calls += 1
        return self.connector(handle.catalog).metadata.get_table_metadata(
            handle.connector_handle
        )

    def table_statistics(self, handle: TableHandle) -> TableStatistics:
        self.connector_calls += 1
        return self.connector(handle.catalog).metadata.get_statistics(
            handle.connector_handle
        )

    def table_layouts(
        self, handle: TableHandle, constraint: TupleDomain, desired_columns: Sequence[str]
    ) -> list[ConnectorTableLayout]:
        self.connector_calls += 1
        return self.connector(handle.catalog).metadata.get_layouts(
            handle.connector_handle, constraint, desired_columns
        )

    def create_table(self, catalog: str, metadata: TableMetadata) -> TableHandle:
        handle = self.connector(catalog).metadata.create_table(metadata)
        return TableHandle(catalog, handle, metadata.name)

    def begin_insert(self, handle: TableHandle) -> object:
        return self.connector(handle.catalog).metadata.begin_insert(
            handle.connector_handle
        )

    def finish_insert(
        self, handle: TableHandle, insert_handle: object, fragments: list
    ) -> None:
        self.connector(handle.catalog).metadata.finish_insert(insert_handle, fragments)

    def drop_table(self, handle: TableHandle) -> None:
        self.connector(handle.catalog).metadata.drop_table(handle.connector_handle)
