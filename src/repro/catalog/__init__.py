"""Catalog metadata: tables, columns, statistics, qualified names."""

from repro.catalog.schema import (
    Column,
    ColumnStatistics,
    QualifiedTableName,
    TableMetadata,
    TableStatistics,
    compute_column_statistics,
)

__all__ = [
    "Column",
    "TableMetadata",
    "QualifiedTableName",
    "TableStatistics",
    "ColumnStatistics",
    "compute_column_statistics",
]
