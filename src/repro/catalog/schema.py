"""Table/column metadata and statistics.

Statistics feed the cost-based optimizations the paper evaluates in
Fig. 6 (join strategy selection and join re-ordering, Sec. IV-C): when a
connector provides no statistics the optimizer falls back to syntactic
choices, which is exactly the "Hive/HDFS (no stats)" configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.types import Type


@dataclass(frozen=True)
class QualifiedTableName:
    """catalog.schema.table, fully resolved."""

    catalog: str
    schema: str
    table: str

    def __str__(self) -> str:
        return f"{self.catalog}.{self.schema}.{self.table}"


@dataclass(frozen=True)
class Column:
    name: str
    type: Type
    comment: str | None = None
    hidden: bool = False


@dataclass(frozen=True)
class TableMetadata:
    name: QualifiedTableName
    columns: tuple[Column, ...]
    # Connector-specific properties (e.g. partitioning / bucketing keys).
    properties: dict = field(default_factory=dict, hash=False, compare=False)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(name)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(name)


@dataclass(frozen=True)
class ColumnStatistics:
    """Per-column statistics used by the cost model."""

    distinct_count: float | None = None
    null_fraction: float | None = None
    min_value: object = None
    max_value: object = None
    avg_size_bytes: float | None = None

    @staticmethod
    def empty() -> "ColumnStatistics":
        return ColumnStatistics()

    def is_empty(self) -> bool:
        return (
            self.distinct_count is None
            and self.null_fraction is None
            and self.min_value is None
            and self.max_value is None
        )


@dataclass(frozen=True)
class TableStatistics:
    """Table-level statistics: row count plus per-column detail."""

    row_count: float | None = None
    column_statistics: dict[str, ColumnStatistics] = field(
        default_factory=dict, hash=False, compare=False
    )

    @staticmethod
    def empty() -> "TableStatistics":
        return TableStatistics()

    def is_empty(self) -> bool:
        return self.row_count is None

    def column(self, name: str) -> ColumnStatistics:
        return self.column_statistics.get(name, ColumnStatistics.empty())

    def scaled(self, factor: float) -> "TableStatistics":
        """Scale row count by a selectivity factor (clamped to >= 0)."""
        if self.row_count is None:
            return self
        factor = max(0.0, factor)
        new_columns = {}
        for name, stats in self.column_statistics.items():
            distinct = stats.distinct_count
            if distinct is not None and self.row_count:
                # Distinct values shrink with selectivity but never below 1.
                distinct = max(1.0, min(distinct, distinct * factor))
            new_columns[name] = replace(stats, distinct_count=distinct)
        return TableStatistics(self.row_count * factor, new_columns)


def compute_column_statistics(values: list) -> ColumnStatistics:
    """Derive statistics from actual values (used by ANALYZE and CTAS)."""
    non_null = [v for v in values if v is not None]
    if not values:
        return ColumnStatistics(0.0, 0.0, None, None, 0.0)
    null_fraction = 1.0 - len(non_null) / len(values)
    if not non_null:
        return ColumnStatistics(0.0, 1.0, None, None, 0.0)
    try:
        distinct = float(len(set(non_null)))
    except TypeError:  # unhashable (arrays/maps)
        distinct = float(len(non_null))
    minimum = maximum = None
    sample = non_null[0]
    if isinstance(sample, (int, float)) and not isinstance(sample, bool):
        minimum = min(non_null)
        maximum = max(non_null)
        if isinstance(minimum, float) and not math.isfinite(minimum):
            minimum = maximum = None
    avg_size = 8.0
    if isinstance(sample, str):
        avg_size = sum(len(v) for v in non_null) / len(non_null)
    return ColumnStatistics(distinct, null_fraction, minimum, maximum, avg_size)
