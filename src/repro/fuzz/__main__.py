"""Offline fuzz campaign CLI.

    python -m repro.fuzz --seed 0 --iterations 200

Checks consecutive seeds through every engine configuration against the
reference oracle. On the first disagreement the failing case is shrunk
and written as a pytest reproducer (``--repro-dir``, default
``tests/repros/``), and the exit code is nonzero.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.fuzz.grammar import FeatureMask, generate_case
from repro.fuzz.runner import CONFIG_NAMES, check_case
from repro.fuzz.shrink import clause_count, shrink_case, write_reproducer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz", description=__doc__.strip().splitlines()[0]
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed (default 0)")
    parser.add_argument(
        "--iterations", type=int, default=200, help="number of seeds to check"
    )
    parser.add_argument(
        "--features",
        default=None,
        help="comma-separated feature names to enable (default: all); "
        f"choices: {', '.join(sorted(FeatureMask.names()))}",
    )
    parser.add_argument(
        "--configs",
        default=",".join(CONFIG_NAMES),
        help="comma-separated engine configurations to compare",
    )
    parser.add_argument(
        "--repro-dir",
        default="tests/repros",
        help="directory for shrunk reproducers (default tests/repros)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report the raw disagreement without minimizing it",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="continue past disagreements instead of stopping at the first",
    )
    args = parser.parse_args(argv)

    features = None
    if args.features:
        try:
            features = FeatureMask.only(*[f.strip() for f in args.features.split(",")])
        except ValueError as exc:
            parser.error(str(exc))
    configs = tuple(c.strip() for c in args.configs.split(",") if c.strip())
    unknown = set(configs) - set(CONFIG_NAMES)
    if unknown:
        parser.error(
            f"unknown config(s): {sorted(unknown)}; choices: {', '.join(CONFIG_NAMES)}"
        )

    start = time.time()
    failures = 0
    checked = 0
    for i in range(args.iterations):
        seed = args.seed + i
        case = generate_case(seed, features)
        checked += 1
        found = check_case(case, configs)
        if not found:
            continue
        failures += 1
        print(f"seed {seed}: {len(found)} disagreement(s)")
        for d in found:
            print(d)
        if args.no_shrink:
            if args.keep_going:
                continue
            break
        print("shrinking ...")
        result = shrink_case(case, configs=configs)
        print(f"shrunk query ({result.total_rows} rows, "
              f"{clause_count(result.statement)} clauses, "
              f"{result.checks} checks): {result.sql}")
        path = write_reproducer(
            result, args.repro_dir, seed=seed, original_sql=case.sql
        )
        print(f"reproducer written to {path}")
        if not args.keep_going:
            break
    elapsed = time.time() - start
    print(
        f"{checked} case(s), {failures} failure(s), "
        f"{len(configs)} configs, {elapsed:.1f}s"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
