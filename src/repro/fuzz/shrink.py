"""Automatic minimization of fuzz disagreements.

Two phases, run to a fixed point:

1. AST shrinking — single-edit variants of the statement (drop WHERE /
   HAVING / ORDER BY / LIMIT / GROUP BY, drop one AND-conjunct, drop one
   select item or grouping key, replace a join with one of its sides,
   recurse into subqueries), keeping any edit that still disagrees.
2. ddmin over each table's rows, then dropping whole tables.

The result is written as a self-contained pytest reproducer under
``tests/repros/`` so the regression is pinned forever.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

from repro.fuzz.grammar import FuzzCase, TableSpec
from repro.fuzz.runner import (
    CONFIG_NAMES,
    Disagreement,
    check_tables_sql,
)
from repro.sql import ast
from repro.sql.formatter import format_statement

MAX_CHECKS = 2000  # hard cap on differential runs per shrink


# ---------------------------------------------------------------------------
# AST edit enumeration
# ---------------------------------------------------------------------------


def _local_edits(node: ast.Node) -> Iterator[ast.Node]:
    """Single edits applicable to ``node`` itself."""
    if isinstance(node, ast.Query):
        if node.limit is not None:
            yield dataclasses.replace(node, limit=None)
        if node.order_by:
            yield dataclasses.replace(node, order_by=())
        if node.with_ is not None:
            yield dataclasses.replace(node, with_=None)
    if isinstance(node, ast.QuerySpecification):
        if node.limit is not None:
            yield dataclasses.replace(node, limit=None)
        if node.order_by:
            yield dataclasses.replace(node, order_by=())
        if node.where is not None:
            yield dataclasses.replace(node, where=None)
        if node.having is not None:
            yield dataclasses.replace(node, having=None)
        if node.group_by is not None:
            yield dataclasses.replace(node, group_by=None)
        if node.select.distinct:
            yield dataclasses.replace(
                node, select=dataclasses.replace(node.select, distinct=False)
            )
        items = node.select.items
        if len(items) > 1:
            for i in range(len(items)):
                kept = items[:i] + items[i + 1 :]
                yield dataclasses.replace(
                    node, select=dataclasses.replace(node.select, items=kept)
                )
    if isinstance(node, ast.GroupBy):
        if node.grouping_sets is not None and len(node.grouping_sets) > 1:
            for i in range(len(node.grouping_sets)):
                kept = node.grouping_sets[:i] + node.grouping_sets[i + 1 :]
                yield dataclasses.replace(node, grouping_sets=kept)
        if node.grouping_sets is None and len(node.expressions) > 1:
            for i in range(len(node.expressions)):
                kept = node.expressions[:i] + node.expressions[i + 1 :]
                yield dataclasses.replace(node, expressions=kept)
    if isinstance(node, ast.Join):
        # Replace the join with either side (references to the dropped
        # side make the candidate fail analysis identically everywhere,
        # so it is simply rejected as uninteresting).
        yield node.left
        yield node.right
    if isinstance(node, ast.SetOperation):
        yield node.left
        yield node.right
    if isinstance(node, ast.Logical):
        for i in range(len(node.terms)):
            kept = node.terms[:i] + node.terms[i + 1 :]
            if len(kept) == 1:
                yield kept[0]
            else:
                yield dataclasses.replace(node, terms=kept)
    if isinstance(node, ast.Not):
        yield node.value
    if isinstance(node, ast.SampledRelation):
        yield node.relation


def _is_node_tuple(value) -> bool:
    return isinstance(value, tuple) and value and all(
        isinstance(v, ast.Node) for v in value
    )


def _variants(node: ast.Node) -> Iterator[ast.Node]:
    """All statements reachable from ``node`` by one edit anywhere."""
    yield from _local_edits(node)
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, ast.Node):
            for variant in _variants(value):
                yield dataclasses.replace(node, **{field.name: variant})
        elif _is_node_tuple(value):
            for i, child in enumerate(value):
                for variant in _variants(child):
                    replaced = value[:i] + (variant,) + value[i + 1 :]
                    yield dataclasses.replace(node, **{field.name: replaced})


# ---------------------------------------------------------------------------
# Row minimization (ddmin)
# ---------------------------------------------------------------------------


def ddmin(items: list, interesting: Callable[[list], bool]) -> list:
    """Classic delta-debugging minimization: the smallest subset (w.r.t.
    chunk removal) for which ``interesting`` still holds."""
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and interesting(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    if len(current) == 1 and interesting([]):
        return []
    return current


# ---------------------------------------------------------------------------
# Shrinking driver
# ---------------------------------------------------------------------------


@dataclass
class ShrinkResult:
    tables: list[TableSpec]
    statement: ast.Statement
    disagreements: list[Disagreement]
    checks: int

    @property
    def sql(self) -> str:
        return format_statement(self.statement)

    @property
    def total_rows(self) -> int:
        return sum(len(t.rows) for t in self.tables)


def shrink(
    tables: Sequence[TableSpec],
    statement: ast.Statement,
    configs=CONFIG_NAMES,
    seed: Optional[int] = None,
) -> ShrinkResult:
    """Minimize (tables, statement) while the configurations still
    disagree with the oracle. Ordering checks are dropped during
    shrinking: the multiset disagreement is the signal being preserved."""
    checks = [0]
    original = check_tables_sql(list(tables), format_statement(statement), seed=seed, configs=configs)
    if not original:
        raise ValueError("shrink() called on a case with no disagreement")
    # Chase the same kind of failure: rows-vs-rows or error-vs-rows.
    oracle_errored = original[0].expected.error is not None

    def interesting(tabs: Sequence[TableSpec], stmt: ast.Statement) -> list[Disagreement]:
        if checks[0] >= MAX_CHECKS:
            return []
        checks[0] += 1
        try:
            sql = format_statement(stmt)
            found = check_tables_sql(list(tabs), sql, seed=seed, configs=configs)
        except Exception:
            return []
        return [
            d
            for d in found
            if (d.expected.error is not None) == oracle_errored
        ]

    current_tables = list(tables)
    current_stmt = statement
    last_disagreements = list(original)

    for _ in range(8):  # alternate AST / data passes to a fixed point
        progressed = False
        # -- AST pass: greedy first-improvement until no edit helps.
        improved = True
        while improved and checks[0] < MAX_CHECKS:
            improved = False
            for variant in _variants(current_stmt):
                found = interesting(current_tables, variant)
                if found:
                    current_stmt = variant
                    last_disagreements = found
                    improved = True
                    progressed = True
                    break
        # -- Data pass: drop unneeded tables, then ddmin each one's rows.
        for i in range(len(current_tables) - 1, -1, -1):
            if len(current_tables) == 1:
                break
            candidate = current_tables[:i] + current_tables[i + 1 :]
            found = interesting(candidate, current_stmt)
            if found:
                current_tables = candidate
                last_disagreements = found
                progressed = True
        for i, table in enumerate(current_tables):
            def rows_interesting(rows, _i=i):
                tabs = list(current_tables)
                tabs[_i] = dataclasses.replace(tabs[_i], rows=list(rows))
                return bool(interesting(tabs, current_stmt))

            minimal = ddmin(list(table.rows), rows_interesting)
            if len(minimal) < len(table.rows):
                current_tables = list(current_tables)
                current_tables[i] = dataclasses.replace(table, rows=minimal)
                progressed = True
        if not progressed:
            break

    final = interesting(current_tables, current_stmt) or last_disagreements
    return ShrinkResult(current_tables, current_stmt, final, checks[0])


def shrink_case(case: FuzzCase, configs=CONFIG_NAMES) -> ShrinkResult:
    return shrink(case.tables, case.statement, configs=configs, seed=case.seed)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def clause_count(statement: ast.Statement) -> int:
    """Number of query clauses: WHERE/HAVING/GROUP BY/ORDER BY/LIMIT/
    DISTINCT occurrences, joins, set operations, and subqueries. A bare
    single-table SELECT counts zero."""
    count = 0

    def walk(node) -> None:
        nonlocal count
        if not isinstance(node, ast.Node):
            return
        if isinstance(node, ast.QuerySpecification):
            count += sum(
                1
                for present in (
                    node.where,
                    node.having,
                    node.group_by,
                    node.limit,
                )
                if present is not None
            )
            if node.order_by:
                count += 1
            if node.select.distinct:
                count += 1
        if isinstance(node, ast.Query):
            if node.order_by:
                count += 1
            if node.limit is not None:
                count += 1
        if isinstance(
            node,
            (
                ast.Join,
                ast.SetOperation,
                ast.InSubquery,
                ast.Exists,
                ast.ScalarSubquery,
                ast.SubqueryRelation,
            ),
        ):
            count += 1
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if isinstance(value, ast.Node):
                walk(value)
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, ast.Node):
                        walk(item)
                    elif isinstance(item, tuple):
                        for inner in item:
                            walk(inner)

    walk(statement)
    return count


# ---------------------------------------------------------------------------
# Reproducer files
# ---------------------------------------------------------------------------

_TYPE_TO_NAME = {"bigint": "bigint", "double": "double", "varchar": "varchar"}


def reproducer_source(
    result: ShrinkResult,
    seed: Optional[int] = None,
    original_sql: Optional[str] = None,
) -> str:
    """Self-contained pytest module asserting full agreement."""
    configs = sorted({d.config for d in result.disagreements})
    tables_lines = []
    for table in result.tables:
        columns = [(c.name, c.type.name.lower()) for c in table.columns]
        tables_lines.append(
            f"    ({table.name!r}, {columns!r}, {[tuple(r) for r in table.rows]!r}),"
        )
    tables_literal = "\n".join(tables_lines)
    header = f"seed {seed}" if seed is not None else "hand-reported"
    original = f"\nOriginal query:\n    {original_sql}\n" if original_sql else ""
    name = f"seed_{seed}" if seed is not None else "case"
    return f'''"""Auto-generated fuzz reproducer ({header}).

Configs that disagreed with the oracle before the fix: {", ".join(configs)}.{original}"""

from repro.fuzz.runner import check_tables_sql

TABLES = [
{tables_literal}
]

SQL = {result.sql!r}


def test_repro_{name}():
    disagreements = check_tables_sql(TABLES, SQL)
    assert disagreements == [], "\\n".join(str(d) for d in disagreements)
'''


def write_reproducer(
    result: ShrinkResult,
    directory: str | Path,
    seed: Optional[int] = None,
    original_sql: Optional[str] = None,
) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"test_repro_seed_{seed}" if seed is not None else "test_repro_case"
    path = directory / f"{stem}.py"
    suffix = 1
    while path.exists():
        suffix += 1
        path = directory / f"{stem}_{suffix}.py"
    path.write_text(reproducer_source(result, seed=seed, original_sql=original_sql))
    return path
