"""Reference oracle: a deliberately naive row-at-a-time plan evaluator.

Ground truth for differential fuzzing. The oracle takes the *analyzed,
unoptimized* logical plan and evaluates it with plain Python lists and
nested loops — no optimizer, no blocks, no compiled expressions, no
operators. Expressions are evaluated through
:mod:`repro.exec.interpreter` (the engine's single shared definition of
scalar semantics); everything relational — joins, aggregation, windows,
sorting, set operations — is independently re-implemented here in the
most obvious way possible.

Semantics contract (what the engines must agree with):

- Equi-join keys containing NULL never match (including semi joins).
- IN / semi join is three-valued: a non-matching probe yields NULL
  (not FALSE) when the build side contains a NULL key.
- Aggregates skip rows with NULL arguments (``ignores_nulls``); a
  global aggregation over zero rows still yields one row.
- A scalar subquery over zero rows yields NULL; more than one row
  raises ``SemanticError``.
- Sort treats NULLs per the per-key ``nulls_first`` flag.
"""

from __future__ import annotations

import functools

from repro.catalog.metadata import Metadata
from repro.errors import NotSupportedError, SemanticError
from repro.exec import interpreter
from repro.planner import expressions as ir
from repro.planner import nodes as plan
from repro.planner.planner import LogicalPlanner, SessionContext
from repro.sql import parse_statement


def run_oracle(
    metadata: Metadata, sql: str, catalog: str = "memory", schema: str = "default"
) -> tuple[list[str], list[tuple]]:
    """Plan ``sql`` (unoptimized) and evaluate it naively.

    Returns ``(column_names, rows)``. Raises whatever error the query
    semantics demand (errors are outcomes too).
    """
    statement = parse_statement(sql)
    from repro.optimizer.context import OptimizerConfig

    # The oracle is the naive baseline: scalar subqueries stay as
    # nested-loop apply joins (the engine's grouped-join rewrite is
    # what the differential run checks). decorrelate_subquery must stay
    # on — correlated EXISTS/IN have no executable fallback.
    planner = LogicalPlanner(
        metadata,
        SessionContext(catalog, schema),
        optimizer_config=OptimizerConfig(rule_decorrelate_scalar=False),
    )
    logical = planner.plan_statement(statement)
    root = logical.root
    if not isinstance(root, plan.OutputNode):
        raise NotSupportedError("oracle expects an OutputNode root")
    oracle = _PlanEvaluator(metadata)
    symbols, rows = oracle.eval(root.source)
    layout = {s.name: i for i, s in enumerate(symbols)}
    channels = [layout[s.name] for s in root.outputs]
    projected = [tuple(row[c] for c in channels) for row in rows]
    return list(logical.column_names), projected


class _PlanEvaluator:
    """Recursive naive evaluation; every node returns (symbols, rows)."""

    def __init__(self, metadata: Metadata):
        self.metadata = metadata

    def eval(self, node: plan.PlanNode):
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is None:
            raise NotSupportedError(
                f"oracle cannot evaluate plan node {type(node).__name__}"
            )
        return method(node)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _bindings(symbols, row) -> dict:
        return {s.name: v for s, v in zip(symbols, row)}

    @staticmethod
    def _channel(symbols, symbol) -> int:
        for i, s in enumerate(symbols):
            if s.name == symbol.name:
                return i
        raise NotSupportedError(f"oracle: symbol {symbol.name} not found")

    # -- sources -----------------------------------------------------------

    def _eval_TableScanNode(self, node: plan.TableScanNode):
        connector = self.metadata.connector(node.table.catalog)
        layout = node.layout
        if layout is None:
            layout = self.metadata.table_layouts(node.table, node.constraint, [])[0]
        columns = [node.assignments[s] for s in node.outputs]
        rows: list[tuple] = []
        source = connector.split_source(layout)
        while not source.is_finished():
            for split in source.get_next_batch(1000):
                page_source = connector.page_source(split, columns)
                while True:
                    page = page_source.next_page()
                    if page is None:
                        break
                    rows.extend(page.rows())
                page_source.close()
        return list(node.outputs), rows

    def _eval_ValuesNode(self, node: plan.ValuesNode):
        rows = [
            tuple(interpreter.evaluate(e, {}) for e in row) for row in node.rows
        ]
        return list(node.outputs), rows

    # -- row transforms ----------------------------------------------------

    def _eval_FilterNode(self, node: plan.FilterNode):
        symbols, rows = self.eval(node.source)
        kept = [
            row
            for row in rows
            if interpreter.evaluate(node.predicate, self._bindings(symbols, row))
            is True
        ]
        return symbols, kept

    def _eval_ProjectNode(self, node: plan.ProjectNode):
        symbols, rows = self.eval(node.source)
        out_symbols = list(node.assignments.keys())
        expressions = list(node.assignments.values())
        out_rows = []
        for row in rows:
            bindings = self._bindings(symbols, row)
            out_rows.append(
                tuple(interpreter.evaluate(e, bindings) for e in expressions)
            )
        return out_symbols, out_rows

    def _eval_LimitNode(self, node: plan.LimitNode):
        symbols, rows = self.eval(node.source)
        return symbols, rows[: node.count]

    def _eval_DistinctNode(self, node: plan.DistinctNode):
        symbols, rows = self.eval(node.source)
        seen = set()
        out = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return symbols, out

    def _eval_EnforceSingleRowNode(self, node: plan.EnforceSingleRowNode):
        symbols, rows = self.eval(node.source)
        if len(rows) > 1:
            raise SemanticError("Scalar sub-query has returned multiple rows")
        if not rows:
            rows = [tuple(None for _ in symbols)]
        return symbols, rows

    def _eval_ExchangeNode(self, node: plan.ExchangeNode):
        return self.eval(node.source)

    # -- aggregation -------------------------------------------------------

    def _eval_AggregationNode(self, node: plan.AggregationNode):
        if node.step is not plan.AggregationStep.SINGLE:
            raise NotSupportedError("oracle only evaluates single-step aggregation")
        symbols, rows = self.eval(node.source)
        key_channels = [self._channel(symbols, s) for s in node.group_by]
        calls = list(node.aggregations.values())
        arg_channels = [
            [
                self._channel(symbols, a.to_symbol())
                for a in call.arguments
                if isinstance(a, ir.Variable)
            ]
            for call in calls
        ]
        filter_channels = [
            self._channel(symbols, call.filter.to_symbol())
            if call.filter is not None
            else None
            for call in calls
        ]
        # Group key -> one list of collected argument tuples per call.
        groups: dict[tuple, list[list[tuple]]] = {}
        for row in rows:
            key = tuple(row[c] for c in key_channels)
            per_call = groups.get(key)
            if per_call is None:
                per_call = [[] for _ in calls]
                groups[key] = per_call
            for i, call in enumerate(calls):
                mask_channel = filter_channels[i]
                if mask_channel is not None and row[mask_channel] is not True:
                    continue
                args = tuple(row[c] for c in arg_channels[i])
                if (
                    call.function.ignores_nulls
                    and arg_channels[i]
                    and any(a is None for a in args)
                ):
                    continue
                per_call[i].append(args)
        if not groups and not key_channels:
            groups[()] = [[] for _ in calls]
        out_rows = []
        for key, per_call in groups.items():
            values = []
            for i, call in enumerate(calls):
                collected = per_call[i]
                if call.distinct:
                    unique: list[tuple] = []
                    seen: set = set()
                    for args in collected:
                        if args not in seen:
                            seen.add(args)
                            unique.append(args)
                    collected = unique
                state = call.function.create()
                for args in collected:
                    state = call.function.add(state, *args)
                values.append(call.function.output(state))
            out_rows.append(key + tuple(values))
        out_symbols = list(node.group_by) + list(node.aggregations.keys())
        return out_symbols, out_rows

    # -- joins -------------------------------------------------------------

    def _eval_JoinNode(self, node: plan.JoinNode):
        left_symbols, left_rows = self.eval(node.left)
        right_symbols, right_rows = self.eval(node.right)
        out_symbols = left_symbols + right_symbols
        left_keys = [self._channel(left_symbols, c.left) for c in node.criteria]
        right_keys = [self._channel(right_symbols, c.right) for c in node.criteria]
        jt = node.join_type

        def residual(combined_row) -> bool:
            if node.filter is None:
                return True
            return (
                interpreter.evaluate(
                    node.filter, self._bindings(out_symbols, combined_row)
                )
                is True
            )

        out_rows: list[tuple] = []
        matched_right = [False] * len(right_rows)
        right_nulls = tuple(None for _ in right_symbols)
        left_nulls = tuple(None for _ in left_symbols)
        left_outer = jt in (plan.JoinType.LEFT, plan.JoinType.FULL)
        for left_row in left_rows:
            key = tuple(left_row[c] for c in left_keys)
            emitted = False
            if not any(k is None for k in key) or not node.criteria:
                for j, right_row in enumerate(right_rows):
                    if node.criteria and key != tuple(
                        right_row[c] for c in right_keys
                    ):
                        continue
                    combined = left_row + right_row
                    if residual(combined):
                        out_rows.append(combined)
                        matched_right[j] = True
                        emitted = True
            if not emitted and left_outer:
                out_rows.append(left_row + right_nulls)
        if jt in (plan.JoinType.RIGHT, plan.JoinType.FULL):
            for j, right_row in enumerate(right_rows):
                if not matched_right[j]:
                    out_rows.append(left_nulls + right_row)
        return out_symbols, out_rows

    def _eval_SemiJoinNode(self, node: plan.SemiJoinNode):
        symbols, rows = self.eval(node.source)
        filter_symbols, filter_rows = self.eval(node.filtering_source)
        source_keys = [self._channel(symbols, s) for s in node.source_keys]
        filter_keys = [self._channel(filter_symbols, s) for s in node.filtering_keys]
        build: set = set()
        has_null = False
        for row in filter_rows:
            key = tuple(row[c] for c in filter_keys)
            if any(k is None for k in key):
                has_null = True
                if node.null_aware:
                    build.add(key)
            else:
                build.add(key)
        out_rows = []
        for row in rows:
            key = tuple(row[c] for c in source_keys)
            if node.null_aware:
                # INTERSECT/EXCEPT comparison: NULL = NULL, two-valued.
                match = key in build
            elif any(k is None for k in key):
                match = None
            elif key in build:
                match = True
            else:
                match = None if has_null else False
            out_rows.append(row + (match,))
        return symbols + [node.output], out_rows

    # -- sorting / limiting ------------------------------------------------

    def _comparator(self, symbols, order_by):
        specs = [
            (self._channel(symbols, o.symbol), o.ascending, o.nulls_first)
            for o in order_by
        ]

        def compare(a, b):
            for channel, ascending, nulls_first in specs:
                x, y = a[channel], b[channel]
                if x is None and y is None:
                    continue
                if x is None:
                    return -1 if nulls_first else 1
                if y is None:
                    return 1 if nulls_first else -1
                if x == y:
                    continue
                less = x < y
                if ascending:
                    return -1 if less else 1
                return 1 if less else -1
            return 0

        return functools.cmp_to_key(compare)

    def _eval_SortNode(self, node: plan.SortNode):
        symbols, rows = self.eval(node.source)
        return symbols, sorted(rows, key=self._comparator(symbols, node.order_by))

    def _eval_TopNNode(self, node: plan.TopNNode):
        symbols, rows = self.eval(node.source)
        ordered = sorted(rows, key=self._comparator(symbols, node.order_by))
        return symbols, ordered[: node.count]

    # -- windows -----------------------------------------------------------

    def _eval_WindowNode(self, node: plan.WindowNode):
        symbols, rows = self.eval(node.source)
        partition_channels = [self._channel(symbols, s) for s in node.partition_by]
        order_key = self._comparator(symbols, node.order_by)
        order_channels = [self._channel(symbols, o.symbol) for o in node.order_by]
        # Partition rows, preserving a deterministic partition ordering.
        partitions: dict = {}
        for row in rows:
            key = tuple(row[c] for c in partition_channels)
            partitions.setdefault(key, []).append(row)
        calls = list(node.functions.items())
        out_rows = []
        for key in partitions:
            partition = sorted(partitions[key], key=order_key)
            n = len(partition)
            peers = []
            group = 0
            for i in range(n):
                if i > 0 and any(
                    partition[i][c] != partition[i - 1][c] for c in order_channels
                ):
                    group += 1
                peers.append(group)
            columns = []
            for out_symbol, call in calls:
                arg_channels = [
                    self._channel(symbols, a.to_symbol())
                    for a in call.arguments
                    if isinstance(a, ir.Variable)
                ]
                args = [tuple(row[c] for c in arg_channels) for row in partition]
                columns.append(
                    self._window_values(call, node, args, peers, n)
                )
            for i, row in enumerate(partition):
                out_rows.append(row + tuple(col[i] for col in columns))
        return symbols + [s for s, _ in calls], out_rows

    def _window_values(self, call, node, args, peers, n):
        name = call.function_name
        if name == "row_number":
            return [i + 1 for i in range(n)]
        if name == "rank":
            values, current = [], 0
            for i in range(n):
                if i == 0 or peers[i] != peers[i - 1]:
                    current = i + 1
                values.append(current)
            return values
        if name == "dense_rank":
            return [peers[i] + 1 for i in range(n)]
        if call.window_function is not None:
            # Other ranking/value functions share the engine's registry
            # definition (they are peer-deterministic by construction).
            return call.window_function.process(n, args, peers)
        function = call.aggregate_function
        frame = node.frame
        if frame is None and not node.order_by:
            total = self._fold(function, args)
            return [total] * n
        if frame is None:
            # Default frame: RANGE UNBOUNDED PRECEDING .. CURRENT ROW —
            # running aggregate including the full peer group.
            values = [None] * n
            i = 0
            while i < n:
                j = i
                while j + 1 < n and peers[j + 1] == peers[i]:
                    j += 1
                value = self._fold(function, args[: j + 1])
                for k in range(i, j + 1):
                    values[k] = value
                i = j + 1
            return values
        raise NotSupportedError("oracle does not evaluate explicit window frames")

    @staticmethod
    def _fold(function, arg_list):
        state = function.create()
        for args in arg_list:
            if args and any(a is None for a in args):
                continue
            state = function.add(state, *args)
        return function.output(state)

    # -- set operations ----------------------------------------------------

    def _eval_UnionNode(self, node: plan.UnionNode):
        out_rows: list[tuple] = []
        for source, mapping in zip(node.sources_, node.symbol_mapping):
            symbols, rows = self.eval(source)
            channels = [self._channel(symbols, mapping[out]) for out in node.outputs]
            out_rows.extend(tuple(row[c] for c in channels) for row in rows)
        return list(node.outputs), out_rows

    def _eval_SetOperationNode(self, node: plan.SetOperationNode):
        left, right = node.sources_
        left_mapping, right_mapping = node.symbol_mapping
        left_symbols, left_rows = self.eval(left)
        right_symbols, right_rows = self.eval(right)
        left_channels = [
            self._channel(left_symbols, left_mapping[out]) for out in node.outputs
        ]
        right_channels = [
            self._channel(right_symbols, right_mapping[out]) for out in node.outputs
        ]
        right_set = {
            tuple(row[c] for c in right_channels) for row in right_rows
        }
        keep_in_right = node.kind == "INTERSECT"
        emitted: set = set()
        out_rows = []
        for row in left_rows:
            key = tuple(row[c] for c in left_channels)
            if key in emitted:
                continue
            if (key in right_set) == keep_in_right:
                emitted.add(key)
                out_rows.append(key)
        return list(node.outputs), out_rows
