"""Grammar-driven SQL fuzzing with a reference oracle (paper Sec. III-IV).

The subsystem generates well-typed queries from a seed, executes each
through five engine configurations (row-at-a-time interpreter, compiled
page processor, optimized local engine, simulated cluster, simulated
cluster with fault injection), and checks every result against a
deliberately naive reference oracle evaluated over the unoptimized
plan. On disagreement, :mod:`repro.fuzz.shrink` minimizes both the
query AST and the dataset and writes a self-contained reproducer.

Entry points:

- ``python -m repro.fuzz --seed 0 --iterations 200`` — offline campaign
- ``tests/test_fuzz.py`` — bounded deterministic corpus in tier-1
"""

from repro.fuzz.grammar import FeatureMask, FuzzCase, generate_case
from repro.fuzz.runner import check_case, run_campaign

__all__ = [
    "FeatureMask",
    "FuzzCase",
    "generate_case",
    "check_case",
    "run_campaign",
]
