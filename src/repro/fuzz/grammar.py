"""Grammar-based generator of well-typed SQL queries.

Every query is produced as an :mod:`repro.sql.ast` tree (not string
concatenation) and rendered through :func:`repro.sql.formatter.
format_statement`, so each fuzz case doubles as a formatter round-trip
property case. Generation is fully determined by ``(seed, features)``.

Determinism contract (what makes results comparable across engines):

- LIMIT is only emitted under an ORDER BY covering *all* output
  columns, and then only when every sort key has an exact (bigint or
  varchar) type — so the selected multiset is unique even with ties.
- Window functions are restricted to peer-deterministic ones
  (``rank``/``dense_rank`` plus aggregates-as-window): their outputs
  depend only on the row multiset, never on tie-breaking order.
- Integer denominators are nonzero constants, so no config-dependent
  division-by-zero timing.
- Floating point may still differ in the last bits across plans (the
  cluster reorders partial-aggregate additions); the runner normalizes
  by rounding before comparing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace

from repro.sql import ast
from repro.sql.formatter import format_statement
from repro.types import BIGINT, DOUBLE, VARCHAR, Type


# --------------------------------------------------------------------------
# Feature mask
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FeatureMask:
    """Tunable switches so a failure localizes to one feature."""

    joins: bool = True            # INNER/LEFT equi-joins, CROSS via predicate
    subqueries: bool = True       # IN/EXISTS (semi joins), scalar, derived
    grouping: bool = True         # GROUP BY / HAVING / DISTINCT aggregates
    grouping_sets: bool = True    # GROUP BY GROUPING SETS
    windows: bool = True          # rank/dense_rank/aggregate OVER
    set_ops: bool = True          # UNION [ALL] / INTERSECT / EXCEPT
    case_expressions: bool = True  # CASE / COALESCE / NULLIF
    order_limit: bool = True      # ORDER BY (+ LIMIT when deterministic)
    distinct: bool = True         # SELECT DISTINCT
    ctes: bool = True             # WITH ... over window/distinct/set-op bodies

    @classmethod
    def all(cls) -> "FeatureMask":
        return cls()

    @classmethod
    def names(cls) -> list[str]:
        return [f.name for f in fields(cls)]

    @classmethod
    def only(cls, *names: str) -> "FeatureMask":
        unknown = set(names) - set(cls.names())
        if unknown:
            raise ValueError(f"unknown feature(s): {sorted(unknown)}")
        values = {f.name: f.name in names for f in fields(cls)}
        return cls(**values)

    def without(self, *names: str) -> "FeatureMask":
        return replace(self, **{name: False for name in names})

    def enabled(self) -> list[str]:
        return [f.name for f in fields(self) if getattr(self, f.name)]


# --------------------------------------------------------------------------
# Schema and data
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSpec:
    name: str
    type: Type


@dataclass
class TableSpec:
    name: str
    columns: list[ColumnSpec]
    rows: list[tuple]

    def column_defs(self) -> list[tuple[str, Type]]:
        return [(c.name, c.type) for c in self.columns]


_STRINGS = ["red", "green", "blue", "teal", "x", "y", ""]


def generate_tables(rng: random.Random) -> list[TableSpec]:
    """Two small tables with overlapping bigint key ranges and
    NULL-heavy data (every nullable column is ~30% NULL)."""

    def maybe_null(value, rate=0.3):
        return None if rng.random() < rate else value

    t0_rows = [
        (
            rng.randrange(8),                                # k: join/group key
            maybe_null(rng.randrange(-5, 6)),                # n
            maybe_null(round(rng.uniform(-20, 20), 2)),      # x
            maybe_null(rng.choice(_STRINGS)),                # s
        )
        for _ in range(rng.randrange(30, 90))
    ]
    t1_rows = [
        (
            maybe_null(rng.randrange(10), rate=0.2),         # k
            rng.randrange(100),                              # m
            maybe_null(round(rng.uniform(0, 50), 2)),        # y
            rng.choice(_STRINGS),                            # u
        )
        for _ in range(rng.randrange(8, 40))
    ]
    return [
        TableSpec(
            "t0",
            [
                ColumnSpec("k", BIGINT),
                ColumnSpec("n", BIGINT),
                ColumnSpec("x", DOUBLE),
                ColumnSpec("s", VARCHAR),
            ],
            t0_rows,
        ),
        TableSpec(
            "t1",
            [
                ColumnSpec("k", BIGINT),
                ColumnSpec("m", BIGINT),
                ColumnSpec("y", DOUBLE),
                ColumnSpec("u", VARCHAR),
            ],
            t1_rows,
        ),
    ]


# --------------------------------------------------------------------------
# Fuzz case
# --------------------------------------------------------------------------


@dataclass
class FuzzCase:
    seed: int
    features: FeatureMask
    tables: list[TableSpec]
    statement: ast.Query
    # (output channel, ascending, nulls_first) of a top-level ORDER BY
    # covering exact-typed select items; empty when order is not checked.
    order_spec: list[tuple[int, bool, bool]] = field(default_factory=list)

    @property
    def sql(self) -> str:
        return format_statement(self.statement)

    def with_statement(self, statement: ast.Query) -> "FuzzCase":
        return FuzzCase(self.seed, self.features, self.tables, statement, [])

    def with_tables(self, tables: list[TableSpec]) -> "FuzzCase":
        return FuzzCase(
            self.seed, self.features, tables, self.statement, list(self.order_spec)
        )


def generate_case(seed: int, features: FeatureMask | None = None) -> FuzzCase:
    features = features or FeatureMask.all()
    rng = random.Random(seed)
    tables = generate_tables(rng)
    gen = _QueryGen(rng, features, tables)
    statement, order_spec = gen.query()
    return FuzzCase(seed, features, tables, statement, order_spec)


# --------------------------------------------------------------------------
# AST construction helpers
# --------------------------------------------------------------------------


def column(alias: str, name: str) -> ast.Expression:
    return ast.Dereference(ast.Identifier(alias), name)


def call(name: str, *args: ast.Expression, **kw) -> ast.FunctionCall:
    return ast.FunctionCall(ast.QualifiedName((name,)), tuple(args), **kw)


def _long(value: int) -> ast.Expression:
    if value < 0:
        return ast.ArithmeticUnary(-1, ast.LongLiteral(-value))
    return ast.LongLiteral(value)


def _double(value: float) -> ast.Expression:
    if value < 0:
        return ast.ArithmeticUnary(-1, ast.DoubleLiteral(-value))
    return ast.DoubleLiteral(value)


@dataclass
class _Scope:
    """Columns visible to the expression generator, grouped by type."""

    columns: list[tuple[str, str, Type]]  # (alias, column, type)

    def of_type(self, type_: Type) -> list[tuple[str, str]]:
        return [(a, c) for a, c, t in self.columns if t == type_]


class _QueryGen:
    def __init__(self, rng: random.Random, features: FeatureMask, tables):
        self.rng = rng
        self.features = features
        self.tables = {t.name: t for t in tables}

    # -- expressions -------------------------------------------------------

    def int_expr(self, scope: _Scope, depth: int = 0) -> ast.Expression:
        rng = self.rng
        ints = scope.of_type(BIGINT)
        if depth >= 2 or not ints or rng.random() < 0.3:
            if ints and rng.random() < 0.7:
                return column(*rng.choice(ints))
            return _long(rng.randrange(-10, 11))
        kind = rng.randrange(6)
        if kind == 0:
            op = rng.choice(
                [ast.ArithmeticOp.ADD, ast.ArithmeticOp.SUBTRACT, ast.ArithmeticOp.MULTIPLY]
            )
            return ast.ArithmeticBinary(
                op, self.int_expr(scope, depth + 1), self.int_expr(scope, depth + 1)
            )
        if kind == 1:
            # Modulus by a nonzero constant keeps errors out of the grammar.
            return ast.ArithmeticBinary(
                ast.ArithmeticOp.MODULUS,
                self.int_expr(scope, depth + 1),
                _long(rng.randrange(2, 7)),
            )
        if kind == 2 and self.features.case_expressions:
            return call("coalesce", column(*rng.choice(ints)), _long(rng.randrange(5)))
        if kind == 3 and self.features.case_expressions:
            return ast.SearchedCase(
                (ast.WhenClause(self.bool_expr(scope, depth + 1), self.int_expr(scope, depth + 1)),),
                self.int_expr(scope, depth + 1) if rng.random() < 0.7 else None,
            )
        if kind == 4:
            return call("abs", self.int_expr(scope, depth + 1))
        return column(*rng.choice(ints))

    def double_expr(self, scope: _Scope, depth: int = 0) -> ast.Expression:
        rng = self.rng
        doubles = scope.of_type(DOUBLE)
        if depth >= 2 or not doubles or rng.random() < 0.4:
            if doubles and rng.random() < 0.7:
                return column(*rng.choice(doubles))
            return _double(round(rng.uniform(-5, 5), 2))
        kind = rng.randrange(3)
        if kind == 0:
            op = rng.choice([ast.ArithmeticOp.ADD, ast.ArithmeticOp.SUBTRACT])
            return ast.ArithmeticBinary(
                op, self.double_expr(scope, depth + 1), self.double_expr(scope, depth + 1)
            )
        if kind == 1 and self.features.case_expressions:
            return call(
                "coalesce", column(*rng.choice(doubles)), _double(round(rng.uniform(0, 2), 1))
            )
        return column(*rng.choice(doubles))

    def str_expr(self, scope: _Scope, depth: int = 0) -> ast.Expression:
        rng = self.rng
        strings = scope.of_type(VARCHAR)
        if depth >= 2 or not strings or rng.random() < 0.4:
            if strings and rng.random() < 0.7:
                return column(*rng.choice(strings))
            return ast.StringLiteral(rng.choice(_STRINGS))
        if self.features.case_expressions and rng.random() < 0.5:
            return ast.SearchedCase(
                (ast.WhenClause(self.bool_expr(scope, depth + 1), self.str_expr(scope, depth + 1)),),
                self.str_expr(scope, depth + 1) if rng.random() < 0.7 else None,
            )
        return call("coalesce", column(*rng.choice(strings)), ast.StringLiteral("?"))

    def exact_expr(self, scope: _Scope) -> tuple[ast.Expression, bool]:
        """An expression of exact type: (expr, is_bigint)."""
        if scope.of_type(VARCHAR) and self.rng.random() < 0.3:
            return self.str_expr(scope), False
        return self.int_expr(scope), True

    def bool_expr(self, scope: _Scope, depth: int = 0) -> ast.Expression:
        rng = self.rng
        if depth < 2 and rng.random() < 0.35:
            op = rng.choice([ast.LogicalOp.AND, ast.LogicalOp.OR])
            terms = tuple(
                self.bool_expr(scope, depth + 1) for _ in range(rng.randrange(2, 4))
            )
            node: ast.Expression = ast.Logical(op, terms)
            if rng.random() < 0.2:
                node = ast.Not(node)
            return node
        kind = rng.randrange(6)
        if kind == 0:
            op = rng.choice(list(ast.ComparisonOp))
            if rng.random() < 0.5 and scope.of_type(DOUBLE):
                return ast.Comparison(
                    op, self.double_expr(scope, depth + 1), self.double_expr(scope, depth + 1)
                )
            return ast.Comparison(
                op, self.int_expr(scope, depth + 1), self.int_expr(scope, depth + 1)
            )
        if kind == 1:
            target = self.any_column(scope)
            return ast.IsNull(target) if rng.random() < 0.5 else ast.IsNotNull(target)
        if kind == 2:
            value = self.int_expr(scope, depth + 1)
            low = rng.randrange(-5, 5)
            return ast.Between(value, _long(low), _long(low + rng.randrange(8)))
        if kind == 3:
            value = self.int_expr(scope, depth + 1)
            items = tuple(_long(rng.randrange(-5, 10)) for _ in range(rng.randrange(1, 4)))
            return ast.InList(value, items)
        if kind == 4 and scope.of_type(VARCHAR):
            target = column(*rng.choice(scope.of_type(VARCHAR)))
            pattern = rng.choice(["r%", "%e%", "_", "%ee%", "x"])
            return ast.Like(target, ast.StringLiteral(pattern))
        op = rng.choice([ast.ComparisonOp.EQ, ast.ComparisonOp.NE, ast.ComparisonOp.LT])
        return ast.Comparison(op, self.int_expr(scope, depth + 1), self.int_expr(scope, depth + 1))

    def any_column(self, scope: _Scope) -> ast.Expression:
        alias, name, _ = self.rng.choice(scope.columns)
        return column(alias, name)

    # -- subquery predicates -----------------------------------------------

    def subquery_predicate(self, scope: _Scope) -> ast.Expression:
        """IN (subquery) / EXISTS / scalar-subquery comparison."""
        rng = self.rng
        other = rng.choice(list(self.tables.values()))
        inner_alias = "sq"
        inner_scope = _Scope(
            [(inner_alias, c.name, c.type) for c in other.columns]
        )
        kind = rng.randrange(4)
        int_cols = inner_scope.of_type(BIGINT)
        if kind == 0 and int_cols:
            # [NOT] IN (SELECT intcol FROM other [WHERE ...])
            inner = self._simple_subquery(
                other, inner_alias, [ast.SingleColumn(column(*rng.choice(int_cols)))]
            )
            pred: ast.Expression = ast.InSubquery(self.int_expr(scope), inner)
            return ast.Not(pred) if rng.random() < 0.3 else pred
        if kind == 1 and int_cols and scope.of_type(BIGINT):
            # Correlated EXISTS via a top-level equality (the decorrelable
            # class; see repro.planner.decorrelation).
            outer_col = column(*rng.choice(scope.of_type(BIGINT)))
            inner_col = column(*rng.choice(int_cols))
            where: ast.Expression = ast.Comparison(
                ast.ComparisonOp.EQ, inner_col, outer_col
            )
            if rng.random() < 0.5:
                where = ast.Logical(
                    ast.LogicalOp.AND, (where, self.bool_expr(inner_scope, depth=1))
                )
            inner = self._simple_subquery(
                other, inner_alias, [ast.SingleColumn(ast.LongLiteral(1))], where
            )
            pred = ast.Exists(inner)
            return ast.Not(pred) if rng.random() < 0.3 else pred
        if kind == 2 and int_cols:
            # Scalar subquery comparison: aggregates never return >1 row.
            # Half the time correlate it via a top-level equality — the
            # grouped-join decorrelation class (repro.planner.rules
            # DecorrelateScalar); empty groups then exercise the
            # empty-aggregate fill-in (count() -> 0, min/max -> NULL).
            where: ast.Expression | None = None
            if scope.of_type(BIGINT) and rng.random() < 0.5:
                where = ast.Comparison(
                    ast.ComparisonOp.EQ,
                    column(*rng.choice(int_cols)),
                    column(*rng.choice(scope.of_type(BIGINT))),
                )
            inner = self._simple_subquery(
                other,
                inner_alias,
                [
                    ast.SingleColumn(
                        call(rng.choice(["min", "max", "count"]), column(*rng.choice(int_cols)))
                    )
                ],
                where,
            )
            return ast.Comparison(
                rng.choice([ast.ComparisonOp.LT, ast.ComparisonOp.GT, ast.ComparisonOp.LE]),
                self.int_expr(scope),
                ast.ScalarSubquery(inner),
            )
        # EXISTS (uncorrelated, filtered)
        inner = self._simple_subquery(
            other,
            inner_alias,
            [ast.SingleColumn(ast.LongLiteral(1))],
            self.bool_expr(inner_scope, depth=1),
        )
        return ast.Exists(inner)

    def _simple_subquery(
        self, table: TableSpec, alias, items, where: ast.Expression | None = None
    ) -> ast.Query:
        spec = ast.QuerySpecification(
            select=ast.Select(tuple(items)),
            from_=ast.AliasedRelation(
                ast.Table(ast.QualifiedName((table.name,))), alias
            ),
            where=where,
        )
        return ast.Query(spec)

    # -- relations ---------------------------------------------------------

    def relation(self) -> tuple[ast.Relation, _Scope]:
        rng = self.rng
        names = sorted(self.tables)
        if self.features.joins and rng.random() < 0.45:
            left_name, right_name = rng.choice(names), rng.choice(names)
            la, ra = "a", "b"
            left = ast.AliasedRelation(
                ast.Table(ast.QualifiedName((left_name,))), la
            )
            right = ast.AliasedRelation(
                ast.Table(ast.QualifiedName((right_name,))), ra
            )
            scope = _Scope(
                [(la, c.name, c.type) for c in self.tables[left_name].columns]
                + [(ra, c.name, c.type) for c in self.tables[right_name].columns]
            )
            left_keys = [
                (la, c.name) for c in self.tables[left_name].columns if c.type == BIGINT
            ]
            right_keys = [
                (ra, c.name) for c in self.tables[right_name].columns if c.type == BIGINT
            ]
            on: ast.Expression = ast.Comparison(
                ast.ComparisonOp.EQ,
                column(*rng.choice(left_keys)),
                column(*rng.choice(right_keys)),
            )
            if rng.random() < 0.3:
                on = ast.Logical(ast.LogicalOp.AND, (on, self.bool_expr(scope, depth=1)))
            join_type = rng.choice(
                [ast.JoinType.INNER, ast.JoinType.INNER, ast.JoinType.LEFT,
                 ast.JoinType.RIGHT, ast.JoinType.FULL]
            )
            return ast.Join(join_type, left, right, ast.JoinOn(on)), scope
        if self.features.subqueries and rng.random() < 0.25:
            # Derived table: aggregate or filtered projection of a table.
            inner_name = rng.choice(names)
            inner_table = self.tables[inner_name]
            alias = "d"
            inner_scope = _Scope([("i", c.name, c.type) for c in inner_table.columns])
            int_cols = inner_scope.of_type(BIGINT)
            key = rng.choice(int_cols)
            inner_spec = ast.QuerySpecification(
                select=ast.Select(
                    (
                        ast.SingleColumn(column(*key), alias="gk"),
                        ast.SingleColumn(call("count"), alias="cnt"),
                        ast.SingleColumn(call("sum", self.int_expr(inner_scope, depth=1)), alias="tot"),
                    )
                ),
                from_=ast.AliasedRelation(
                    ast.Table(ast.QualifiedName((inner_name,))), "i"
                ),
                where=self.bool_expr(inner_scope, depth=1) if rng.random() < 0.5 else None,
                group_by=ast.GroupBy((column(*key),)),
            )
            relation = ast.AliasedRelation(
                ast.SubqueryRelation(ast.Query(inner_spec)), alias
            )
            scope = _Scope(
                [(alias, "gk", BIGINT), (alias, "cnt", BIGINT), (alias, "tot", BIGINT)]
            )
            return relation, scope
        name = rng.choice(names)
        alias = "a"
        relation = ast.AliasedRelation(ast.Table(ast.QualifiedName((name,))), alias)
        scope = _Scope([(alias, c.name, c.type) for c in self.tables[name].columns])
        return relation, scope

    # -- query shapes ------------------------------------------------------

    def query(self) -> tuple[ast.Query, list[tuple[int, bool, bool]]]:
        rng = self.rng
        shapes = ["simple"]
        if self.features.grouping:
            shapes += ["aggregate", "aggregate"]
        if self.features.grouping_sets and self.features.grouping:
            shapes.append("grouping_sets")
        if self.features.windows:
            shapes.append("window")
        if self.features.set_ops:
            shapes.append("set_op")
        if self.features.ctes and (
            self.features.distinct or self.features.windows or self.features.set_ops
        ):
            shapes.append("cte")
        self._with: ast.With | None = None
        shape = rng.choice(shapes)
        spec, exact_channels = getattr(self, "_shape_" + shape)()
        order_spec: list[tuple[int, bool, bool]] = []
        if self.features.order_limit and exact_channels and rng.random() < 0.6:
            width = len(spec.select.items)
            all_exact = len(exact_channels) == width
            keys = (
                list(exact_channels)
                if all_exact
                else rng.sample(exact_channels, k=rng.randrange(1, len(exact_channels) + 1))
            )
            items = []
            for channel in keys:
                ascending = rng.random() < 0.7
                nulls_first = rng.random() < 0.5
                sel = spec.select.items[channel]
                assert isinstance(sel, ast.SingleColumn)
                key_expr = (
                    ast.Identifier(sel.alias) if sel.alias else sel.expression
                )
                items.append(ast.SortItem(key_expr, ascending, nulls_first))
                order_spec.append((channel, ascending, nulls_first))
            limit = None
            if all_exact and rng.random() < 0.5:
                limit = rng.randrange(1, 15)
            spec = replace(spec, order_by=tuple(items), limit=limit)
        return ast.Query(spec, with_=self._with), order_spec

    def _select_items(self, scope: _Scope) -> tuple[list[ast.SingleColumn], list[int]]:
        rng = self.rng
        items: list[ast.SingleColumn] = []
        exact: list[int] = []
        for i in range(rng.randrange(1, 4)):
            roll = rng.random()
            if roll < 0.5:
                expr, _ = self.exact_expr(scope)
                is_exact = True
            elif roll < 0.8 and scope.of_type(DOUBLE):
                expr, is_exact = self.double_expr(scope), False
            else:
                expr, is_exact = self.str_expr(scope), True
            items.append(ast.SingleColumn(expr, alias=f"c{i}"))
            if is_exact:
                exact.append(i)
        return items, exact

    def _where(self, scope: _Scope) -> ast.Expression | None:
        rng = self.rng
        if rng.random() < 0.35:
            return None
        pred = self.bool_expr(scope)
        if self.features.subqueries and rng.random() < 0.35:
            sub = self.subquery_predicate(scope)
            pred = ast.Logical(ast.LogicalOp.AND, (pred, sub)) if rng.random() < 0.7 else sub
        return pred

    def _shape_simple(self):
        relation, scope = self.relation()
        items, exact = self._select_items(scope)
        distinct = self.features.distinct and self.rng.random() < 0.2
        spec = ast.QuerySpecification(
            select=ast.Select(tuple(items), distinct=distinct),
            from_=relation,
            where=self._where(scope),
        )
        return spec, exact

    def _agg_calls(self, scope: _Scope, start: int):
        rng = self.rng
        ints = scope.of_type(BIGINT)
        doubles = scope.of_type(DOUBLE)
        choices = []
        choices.append(lambda: (call("count"), True))
        if ints:
            choices.append(lambda: (call("count", column(*rng.choice(ints))), True))
            choices.append(lambda: (call("sum", self.int_expr(scope, depth=1)), True))
            choices.append(lambda: (call("min", column(*rng.choice(ints))), True))
            choices.append(lambda: (call("max", column(*rng.choice(ints))), True))
            if self.features.distinct:
                choices.append(
                    lambda: (call("count", column(*rng.choice(ints)), distinct=True), True)
                )
        if doubles:
            choices.append(lambda: (call("sum", column(*rng.choice(doubles))), False))
            choices.append(lambda: (call("avg", column(*rng.choice(doubles))), False))
            choices.append(lambda: (call("min", column(*rng.choice(doubles))), False))
        items: list[ast.SingleColumn] = []
        exact: list[int] = []
        for i in range(rng.randrange(1, 4)):
            expr, is_exact = rng.choice(choices)()
            index = start + i
            items.append(ast.SingleColumn(expr, alias=f"m{i}"))
            if is_exact:
                exact.append(index)
        return items, exact

    def _group_keys(self, scope: _Scope) -> list[ast.Expression]:
        rng = self.rng
        keys: list[ast.Expression] = []
        for _ in range(rng.randrange(1, 3)):
            if rng.random() < 0.6 and scope.of_type(BIGINT):
                keys.append(column(*rng.choice(scope.of_type(BIGINT))))
            elif scope.of_type(VARCHAR):
                keys.append(column(*rng.choice(scope.of_type(VARCHAR))))
            else:
                keys.append(self.int_expr(scope, depth=1))
        # Dedupe syntactically identical keys.
        unique: list[ast.Expression] = []
        for key in keys:
            if key not in unique:
                unique.append(key)
        return unique

    def _shape_aggregate(self):
        rng = self.rng
        relation, scope = self.relation()
        keys = self._group_keys(scope)
        key_items = [
            ast.SingleColumn(key, alias=f"k{i}") for i, key in enumerate(keys)
        ]
        agg_items, agg_exact = self._agg_calls(scope, start=len(key_items))
        items = key_items + agg_items
        exact = list(range(len(key_items))) + agg_exact
        having = None
        if rng.random() < 0.3:
            having = ast.Comparison(
                rng.choice([ast.ComparisonOp.GE, ast.ComparisonOp.GT]),
                call("count"),
                _long(rng.randrange(1, 4)),
            )
        spec = ast.QuerySpecification(
            select=ast.Select(tuple(items)),
            from_=relation,
            where=self._where(scope),
            group_by=ast.GroupBy(tuple(keys)),
            having=having,
        )
        return spec, exact

    def _shape_grouping_sets(self):
        rng = self.rng
        relation, scope = self.relation()
        keys = self._group_keys(scope)
        while len(keys) < 2:
            keys.append(self.int_expr(scope, depth=1))
        keys = keys[:2]
        sets = [tuple(keys), (keys[0],)]
        if rng.random() < 0.5:
            sets.append(())
        if rng.random() < 0.5:
            sets.append((keys[1],))
        key_items = [
            ast.SingleColumn(key, alias=f"k{i}") for i, key in enumerate(keys)
        ]
        agg_items, agg_exact = self._agg_calls(scope, start=len(key_items))
        spec = ast.QuerySpecification(
            select=ast.Select(tuple(key_items + agg_items)),
            from_=relation,
            where=self._where(scope),
            group_by=ast.GroupBy(tuple(keys), grouping_sets=tuple(sets)),
        )
        exact = list(range(len(key_items))) + agg_exact
        return spec, exact

    def _shape_window(self):
        rng = self.rng
        relation, scope = self.relation()
        partition = ()
        if rng.random() < 0.8:
            partition = (self.any_column(scope),)
        order_cols = scope.of_type(BIGINT) + scope.of_type(VARCHAR)
        window_order = (
            ast.SortItem(column(*rng.choice(order_cols)), rng.random() < 0.8, None),
        )
        fn = rng.choice(["rank", "dense_rank", "sum", "count", "min"])
        if fn in ("rank", "dense_rank"):
            wcall = call(
                fn, window=ast.WindowSpec(partition_by=partition, order_by=window_order)
            )
            window_exact = True
        else:
            arg = (
                self.int_expr(scope, depth=1)
                if rng.random() < 0.7 or not scope.of_type(DOUBLE)
                else column(*rng.choice(scope.of_type(DOUBLE)))
            )
            # Exactness follows the argument type: doubles are inexact.
            window_exact = not self._is_double(arg, scope)
            use_order = rng.random() < 0.7
            wcall = call(
                fn,
                arg,
                window=ast.WindowSpec(
                    partition_by=partition,
                    order_by=window_order if use_order else (),
                ),
            )
        items, exact = self._select_items(scope)
        index = len(items)
        items.append(ast.SingleColumn(wcall, alias=f"w{index}"))
        if window_exact:
            exact.append(index)
        spec = ast.QuerySpecification(
            select=ast.Select(tuple(items)),
            from_=relation,
            where=self._where(scope),
        )
        return spec, exact

    def _shape_cte(self):
        """``WITH cte AS (window / distinct / set-op body) SELECT ...
        FROM cte WHERE ...`` — the shapes the CTE predicate-pushdown
        rewrite (repro.planner.rules.cte_pushdown) targets: an outer
        filter sitting above a window / distinct / set-op boundary."""
        rng = self.rng
        name = rng.choice(sorted(self.tables))
        table = self.tables[name]
        inner_scope = _Scope([("i", c.name, c.type) for c in table.columns])
        kinds = []
        if self.features.distinct:
            kinds.append("distinct")
        if self.features.windows:
            kinds.append("window")
        if self.features.set_ops:
            kinds.append("set_op")
        kind = rng.choice(kinds)
        from_inner = ast.AliasedRelation(ast.Table(ast.QualifiedName((name,))), "i")
        if kind == "window":
            # rank/dense_rank only: peer-deterministic, so the body's
            # multiset is seed-stable whatever plan produced it.
            part_key = rng.choice(inner_scope.of_type(BIGINT))
            order_cols = inner_scope.of_type(BIGINT) + inner_scope.of_type(VARCHAR)
            wcall = call(
                rng.choice(["rank", "dense_rank"]),
                window=ast.WindowSpec(
                    partition_by=(column(*part_key),),
                    order_by=(
                        ast.SortItem(column(*rng.choice(order_cols)), True, None),
                    ),
                ),
            )
            body = ast.QuerySpecification(
                select=ast.Select(
                    (
                        ast.SingleColumn(column(*part_key), alias="g"),
                        ast.SingleColumn(self.int_expr(inner_scope, depth=1), alias="v"),
                        ast.SingleColumn(wcall, alias="r"),
                    )
                ),
                from_=from_inner,
            )
            cte_columns = [("g", BIGINT), ("v", BIGINT), ("r", BIGINT)]
        elif kind == "distinct":
            body = ast.QuerySpecification(
                select=ast.Select(
                    (
                        ast.SingleColumn(self.int_expr(inner_scope, depth=1), alias="g"),
                        ast.SingleColumn(self.str_expr(inner_scope, depth=1), alias="v"),
                    ),
                    distinct=True,
                ),
                from_=from_inner,
            )
            cte_columns = [("g", BIGINT), ("v", VARCHAR)]
        else:  # set_op
            other = rng.choice(sorted(self.tables))
            sides = []
            for side_name in (name, other):
                side_scope = _Scope(
                    [("i", c.name, c.type) for c in self.tables[side_name].columns]
                )
                sides.append(
                    ast.QuerySpecification(
                        select=ast.Select(
                            (ast.SingleColumn(self.int_expr(side_scope), alias="g"),)
                        ),
                        from_=ast.AliasedRelation(
                            ast.Table(ast.QualifiedName((side_name,))), "i"
                        ),
                    )
                )
            set_kind = rng.choice(list(ast.SetOpKind))
            body = ast.SetOperation(set_kind, sides[0], sides[1], distinct=True)
            cte_columns = [("g", BIGINT)]
        self._with = ast.With((ast.WithQuery("cte", ast.Query(body)),))
        scope = _Scope([("c", col, type_) for col, type_ in cte_columns])
        items = tuple(
            ast.SingleColumn(column("c", col), alias=f"c{i}")
            for i, (col, _) in enumerate(cte_columns)
        )
        spec = ast.QuerySpecification(
            select=ast.Select(items),
            from_=ast.AliasedRelation(ast.Table(ast.QualifiedName(("cte",))), "c"),
            where=self.bool_expr(scope),
        )
        return spec, list(range(len(cte_columns)))

    def _is_double(self, expr: ast.Expression, scope: _Scope) -> bool:
        doubles = {(a, c) for a, c in scope.of_type(DOUBLE)}
        if isinstance(expr, ast.Dereference) and isinstance(expr.base, ast.Identifier):
            return (expr.base.name, expr.field_name) in doubles
        return isinstance(expr, ast.DoubleLiteral)

    def _shape_set_op(self):
        rng = self.rng
        # Two int-typed single-column selects over (possibly) different
        # tables, combined with a random set operation.
        sides = []
        for _ in range(2):
            name = rng.choice(sorted(self.tables))
            scope = _Scope([("a", c.name, c.type) for c in self.tables[name].columns])
            spec = ast.QuerySpecification(
                select=ast.Select(
                    (ast.SingleColumn(self.int_expr(scope), alias="c0"),)
                ),
                from_=ast.AliasedRelation(ast.Table(ast.QualifiedName((name,))), "a"),
                where=self._where(scope) if rng.random() < 0.6 else None,
            )
            sides.append(spec)
        kind = rng.choice(list(ast.SetOpKind))
        distinct = kind is not ast.SetOpKind.UNION or rng.random() < 0.5
        body = ast.SetOperation(kind, sides[0], sides[1], distinct=distinct)
        # Wrap in an outer select so ORDER BY attaches uniformly.
        outer = ast.QuerySpecification(
            select=ast.Select(
                (ast.SingleColumn(ast.Identifier("c0"), alias="c0"),)
            ),
            from_=ast.AliasedRelation(
                ast.SubqueryRelation(ast.Query(body)), "s"
            ),
        )
        return outer, [0]
