"""Multi-way agreement runner.

Executes one fuzz case through six engine configurations and compares
every result against the reference oracle:

1. ``interpreter`` — unoptimized plan, row-at-a-time interpreted
   expression evaluation (no compiler, no vectorization)
2. ``compiled``    — unoptimized plan, compiled page processor
3. ``optimized``   — full optimizer rules, local execution
4. ``row_kernels`` — like ``optimized`` but with the vectorized hash
   kernels (repro.exec.kernels) forced onto the scalar row path, so the
   vector and row hash implementations are differentially tested
5. ``cluster``     — SimCluster: fragmented, scheduled, shuffled
6. ``cluster_faults`` — SimCluster with transient transfer failures
   plus a mid-query worker crash; the client retries per paper Sec. IV-G
7. ``chaos``       — SimCluster with fault tolerance enabled: a worker
   is crashed mid-query and transfers suffer transient failures and
   duplication, but heartbeat detection plus task-level recovery must
   complete the query bit-exactly *without* a client retry
8. ``dynamic_filter`` — SimCluster with runtime dynamic filtering
   forced onto every eligible join edge (selectivity threshold 1.0,
   nonzero wait) — filters on must agree bit-exactly with filters off
9. ``hive``        — SimCluster over the Hive connector with tiny
   stripes/files and Bloom metadata on every column, dynamic filters
   forced, so stripe skipping and split pruning engage
10. ``raptor``     — SimCluster over the Raptor connector (node-pinned
   shards, tiny stripes), dynamic filters forced, exercising shard
   pruning
11. ``ddl_roundtrip`` — the case tables are CTAS'd from a memory
   catalog into Hive (encoded ORC-like write) and from Hive into
   Raptor, then the case query runs against the twice-round-tripped
   Raptor copies — the encoded write/decode paths must be lossless
12. ``cache_coherence`` — the case query runs repeatedly on a
   Hive-backed cluster with the full caching tier enabled (metadata,
   plan, result, and stripe caches + affinity scheduling,
   docs/CACHING.md) while random deterministic DDL/INSERT mutations are
   interleaved between runs; after every mutation the cached cluster
   must agree with an identical uncached twin, and a repeat with no
   intervening mutation must be served bit-identically from the result
   cache — any stale answer raises ``CacheCoherenceError``
13. ``fused`` — SimCluster with pipeline fusion (repro.exec.pipeline)
   forced on for every eligible chain, regardless of the kernel mode:
   under ``REPRO_KERNELS=row`` this differentially tests the fused
   single-pass pipelines against the fully unfused row-at-a-time
   oracle path
14. ``spooled`` — SimCluster with fault tolerance *and* the durable
   output spool enabled, under an asymmetric network partition that
   later heals plus a worker crash: spool reads, partition-aware
   detection, re-admission fencing, and ack-driven buffer GC must all
   keep the result bit-exact with no client retry
15. ``join_spill`` — SimCluster whose general memory pool is far
   smaller than any join/aggregation state with spilling enabled, so
   memory revocation (HashBuild/sort/aggregation spill-and-merge)
   engages on stateful queries and must not change a byte of output
16. ``rewrites`` — LocalEngine with every rewrite rule of the
   repro.planner.rules pack enabled and their cost guards disabled, so
   each eligible shape actually rewrites (decorrelation, scan
   consolidation, set-op semi joins, CTE pushdown); the oracle runs
   the naive plans (scalar subqueries stay nested-loop apply joins),
   making this a true rules-on vs rules-off differential. Run the
   campaign under ``REPRO_KERNELS=row`` as well to cross the rewrites
   with the row-path hash kernels
17. ``simgpu`` — LocalEngine with the full optimizer under the
   ``simgpu`` kernel backend (repro.exec.backend): every vectorized
   kernel runs over ``DeviceArray`` handles with metered transfers, so
   the device-residency path is differentially tested against the
   numpy configs and the row oracle. Under ``REPRO_KERNELS=row`` the
   backend sits idle (the row path never reaches the kernels), which
   checks the fallback seam stays inert

Errors are outcomes too: if the oracle raises, every configuration must
raise an error of the same class.

Floats are normalized by rounding to 6 digits before comparison — the
cluster's partial aggregation legitimately reorders additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.client.session import LocalEngine
from repro.cluster import ClusterConfig, SimCluster
from repro.connectors.memory import MemoryConnector
from repro.errors import WorkerFailedError
from repro.exec import kernels
from repro.fuzz.grammar import FeatureMask, FuzzCase, TableSpec, generate_case
from repro.fuzz.oracle import run_oracle
from repro.types import BIGINT, DOUBLE, VARCHAR

CONFIG_NAMES = (
    "interpreter",
    "compiled",
    "optimized",
    "row_kernels",
    "cluster",
    "cluster_faults",
    "chaos",
    "dynamic_filter",
    "hive",
    "raptor",
    "ddl_roundtrip",
    "cache_coherence",
    "fused",
    "spooled",
    "join_spill",
    "rewrites",
    "simgpu",
)

# The case currently (or most recently) executing. Deliberately NOT
# cleared after a check: tests assert on check_case's result *after* it
# returns, and tests/conftest.py reads this to print the failing seed.
CURRENT_CASE: Optional[FuzzCase] = None

_TYPE_NAMES = {"bigint": BIGINT, "double": DOUBLE, "varchar": VARCHAR}


@dataclass
class Outcome:
    """Result of one configuration: rows or an error class name."""

    rows: Optional[list[tuple]] = None
    error: Optional[str] = None
    ordered_rows: Optional[list[tuple]] = None  # pre-sort, for ORDER BY checks

    def key(self):
        if self.error is not None:
            return ("error", self.error)
        return ("rows", tuple(self.rows))


@dataclass
class Disagreement:
    config: str
    sql: str
    seed: Optional[int]
    expected: Outcome
    actual: Outcome
    detail: str = ""

    def __str__(self) -> str:
        lines = [
            f"config {self.config!r} disagrees with oracle"
            + (f" (seed {self.seed})" if self.seed is not None else ""),
            f"  sql: {self.sql}",
        ]
        if self.detail:
            lines.append(f"  {self.detail}")
        lines.append(f"  oracle: {_preview(self.expected)}")
        lines.append(f"  actual: {_preview(self.actual)}")
        return "\n".join(lines)


def _preview(outcome: Outcome, limit: int = 8) -> str:
    if outcome.error is not None:
        return f"error {outcome.error}"
    rows = outcome.rows or []
    shown = ", ".join(repr(r) for r in rows[:limit])
    suffix = f", ... ({len(rows)} rows)" if len(rows) > limit else f" ({len(rows)} rows)"
    return f"[{shown}]{suffix}"


# --------------------------------------------------------------------------
# Normalization
# --------------------------------------------------------------------------


def normalize_value(value):
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, float):
        rounded = round(value, 6)
        # Avoid -0.0 vs 0.0 flakes.
        return 0.0 if rounded == 0 else rounded
    if isinstance(value, int):
        return int(value)
    return value


def normalize_rows(rows) -> list[tuple]:
    """Round floats and sort as a multiset (repr order)."""
    out = [tuple(normalize_value(v) for v in row) for row in rows]
    out.sort(key=repr)
    return out


def _check_sorted(rows, order_spec) -> bool:
    """Rows (already normalized values) must be sorted per order_spec."""

    def compare(a, b):
        for channel, ascending, nulls_first in order_spec:
            x, y = a[channel], b[channel]
            if x is None and y is None:
                continue
            if x is None:
                return -1 if nulls_first else 1
            if y is None:
                return 1 if nulls_first else -1
            if x == y:
                continue
            less = x < y
            if ascending:
                return -1 if less else 1
            return 1 if less else -1
        return 0

    normalized = [tuple(normalize_value(v) for v in row) for row in rows]
    return all(
        compare(normalized[i], normalized[i + 1]) <= 0
        for i in range(len(normalized) - 1)
    )


# --------------------------------------------------------------------------
# Engine construction
# --------------------------------------------------------------------------


def load_tables(connector: MemoryConnector, tables: list[TableSpec]) -> None:
    for table in tables:
        connector.create_table_with_data(
            "memory", "default", table.name, table.column_defs(), list(table.rows)
        )


def _local_engine(tables, optimize: bool, interpreted: bool) -> LocalEngine:
    engine = LocalEngine(optimize=optimize, interpreted=interpreted)
    connector = MemoryConnector()
    load_tables(connector, tables)
    engine.register_catalog("memory", connector)
    return engine


def _forced_rewrites_optimizer():
    """Every rewrite rule on with cost guards disabled, so eligible
    shapes always rewrite regardless of stats (the knobs default on;
    the guards are what usually hold a rewrite back on tiny tables)."""
    from repro.optimizer.context import OptimizerConfig

    return OptimizerConfig(rewrite_cost_guards=False)


def _forced_df_optimizer():
    """Force dynamic filters onto every eligible join edge and make the
    split scheduler actually wait for them, so the filtered code paths
    (page masks, split pruning, wait policy) run on small fuzz tables."""
    from repro.optimizer.context import OptimizerConfig

    return OptimizerConfig(
        dynamic_filter_selectivity_threshold=1.0,
        dynamic_filter_wait_ms=5.0,
    )


def _cluster(
    tables,
    faults: bool,
    recovery: bool = False,
    dynamic_filters: bool = False,
    spool: bool = False,
) -> SimCluster:
    from repro.cluster import FaultToleranceConfig

    config = ClusterConfig(
        worker_count=3,
        default_catalog="memory",
        default_schema="default",
        transient_failure_rate=0.05 if faults else 0.0,
        transfer_duplicate_rate=0.05 if recovery else 0.0,
        fault_tolerance=FaultToleranceConfig(
            enabled=recovery, spool_enabled=spool
        ),
    )
    if dynamic_filters:
        config.optimizer = _forced_df_optimizer()
    cluster = SimCluster(config)
    connector = MemoryConnector()
    load_tables(connector, tables)
    cluster.register_catalog("memory", connector)
    return cluster


def _connector_cluster(tables, kind: str) -> SimCluster:
    """A cluster whose default catalog is a real storage connector (Hive
    or Raptor) with tiny stripes/files, so stripe skipping, Bloom
    metadata, and dynamic-filter split pruning all engage on fuzz-sized
    tables — differentially tested against the same oracle."""
    config = ClusterConfig(
        worker_count=3,
        default_catalog="memory",
        default_schema="default",
        optimizer=_forced_df_optimizer(),
    )
    cluster = SimCluster(config)
    if kind == "hive":
        from repro.connectors.hive import HiveConnector

        connector = HiveConnector(
            stripe_rows=16,
            max_rows_per_file=32,
            bloom_columns=("k", "n", "m", "x", "y", "s", "u"),
        )
    else:
        from repro.connectors.raptor import RaptorConnector

        connector = RaptorConnector(
            hosts=[f"worker-{i}" for i in range(3)],
            catalog_name="memory",
            stripe_rows=16,
            max_rows_per_shard=32,
        )
    from repro.workload.datasets import _load_table

    for table in tables:
        _load_table(
            connector,
            "memory",
            "default",
            table.name,
            [(c.name, c.type) for c in table.columns],
            list(table.rows),
        )
    cluster.register_catalog("memory", connector)
    return cluster


def _ddl_roundtrip_cluster(tables) -> SimCluster:
    """CTAS round-trip over the encoded write path (ROADMAP item): the
    case tables load into a ``mem`` catalog, are CTAS'd into a Hive
    catalog (batch ORC-like encode with tiny stripes/files and Bloom
    metadata), then CTAS'd from Hive into the default Raptor catalog
    (a second encoded write from decoded/passthrough blocks). The case
    query then runs against data that survived two write/read round
    trips and must stay bit-exact with the oracle on the original
    rows."""
    from repro.connectors.hive import HiveConnector
    from repro.connectors.raptor import RaptorConnector

    config = ClusterConfig(
        worker_count=3,
        default_catalog="memory",
        default_schema="default",
        optimizer=_forced_df_optimizer(),
    )
    cluster = SimCluster(config)
    source = MemoryConnector()
    for table in tables:
        source.create_table_with_data(
            "mem", "default", table.name, table.column_defs(), list(table.rows)
        )
    cluster.register_catalog("mem", source)
    cluster.register_catalog(
        "hivec",
        HiveConnector(
            stripe_rows=16,
            max_rows_per_file=32,
            bloom_columns=("k", "n", "m", "x", "y", "s", "u"),
        ),
    )
    cluster.register_catalog(
        "memory",
        RaptorConnector(
            hosts=[f"worker-{i}" for i in range(3)],
            catalog_name="memory",
            stripe_rows=16,
            max_rows_per_shard=32,
        ),
    )
    for table in tables:
        for ddl in (
            f"CREATE TABLE hivec.default.{table.name} AS "
            f"SELECT * FROM mem.default.{table.name}",
            f"CREATE TABLE memory.default.{table.name} AS "
            f"SELECT * FROM hivec.default.{table.name}",
        ):
            handle = cluster.run_query(ddl)
            if handle.state != "finished":
                raise handle.error
    return cluster


def _capture(fn: Callable[[], list[tuple]]) -> Outcome:
    try:
        rows = fn()
    except Exception as exc:  # errors are outcomes, compared by class
        return Outcome(error=type(exc).__name__)
    return Outcome(rows=normalize_rows(rows), ordered_rows=list(rows))


def _run_faulted(tables, sql: str) -> list[tuple]:
    """Fault-injected run: transient transfer failures are retried by the
    cluster transparently; a worker crash mid-query fails the query and
    the client retries on the surviving workers (paper Sec. IV-G)."""
    cluster = _cluster(tables, faults=True)
    handle = cluster.submit(sql)
    cluster.sim.run(until_ms=1.0)
    crash_victims = cluster.crash_worker("worker-2")
    cluster.run()
    if handle.state == "finished" and handle.query_id not in crash_victims:
        return handle.rows()
    if not isinstance(handle.error, WorkerFailedError):
        raise handle.error
    # Client-side retry on the remaining workers.
    retry = cluster.run_query(sql)
    return retry.rows()


def _run_chaos(tables, sql: str) -> list[tuple]:
    """Fault-tolerant run: a worker crash mid-query plus transient and
    duplicated transfers; heartbeat detection and task-level recovery
    must complete the query on the survivors with bit-exact results —
    no client retry allowed."""
    cluster = _cluster(tables, faults=True, recovery=True)
    handle = cluster.submit(sql)
    cluster.sim.run(until_ms=1.0)
    cluster.crash_worker("worker-2")
    cluster.run()
    if handle.state == "failed":
        raise handle.error
    return handle.rows()


def _run_spooled(tables, sql: str) -> list[tuple]:
    """Spool + partition run: one worker is cut off asymmetrically
    (it can send, nothing reaches it) and healed later, while another
    crashes outright. The durable spool must serve drained streams of
    both victims, the healed worker's stale attempts must be fenced on
    re-admission, and the query must finish bit-exactly without a
    client retry."""
    cluster = _cluster(tables, faults=True, recovery=True, spool=True)
    handle = cluster.submit(sql)
    cluster.sim.run(until_ms=1.0)
    cluster.partition_worker("worker-1", one_way=True)
    cluster.sim.run(until_ms=cluster.sim.now + 250.0)
    cluster.heal_partition("worker-1")
    cluster.crash_worker("worker-2")
    cluster.run()
    if handle.state == "failed":
        raise handle.error
    return handle.rows()


def _run_join_spill(tables, sql: str) -> list[tuple]:
    """Memory-pressure run: the general pool is far smaller than any
    join/aggregation state and spilling is on, so memory revocation
    (HashBuild/sort/aggregation spill-and-merge) engages on stateful
    queries — and must not change a byte of output."""
    config = ClusterConfig(
        worker_count=3,
        default_catalog="memory",
        default_schema="default",
        node_memory_bytes=52_000,
        reserved_pool_bytes=50_000,
        spill_enabled=True,
    )
    cluster = SimCluster(config)
    connector = MemoryConnector()
    load_tables(connector, tables)
    cluster.register_catalog("memory", connector)
    return cluster.run_query(sql).rows()


class CacheCoherenceError(Exception):
    """A cached cluster disagreed with its uncached twin — the caching
    tier served a stale (or otherwise wrong) answer."""


def _cached_hive_cluster(tables, cache_config) -> SimCluster:
    """A Hive-backed cluster (tiny stripes/files so the stripe cache and
    affinity scheduling engage) with the given cache configuration."""
    from repro.connectors.hive import HiveConnector
    from repro.workload.datasets import _load_table

    config = ClusterConfig(
        worker_count=3,
        default_catalog="memory",
        default_schema="default",
        optimizer=_forced_df_optimizer(),
        cache=cache_config,
    )
    cluster = SimCluster(config)
    connector = HiveConnector(
        stripe_rows=16,
        max_rows_per_file=32,
        bloom_columns=("k", "n", "m", "x", "y", "s", "u"),
    )
    for table in tables:
        _load_table(
            connector,
            "memory",
            "default",
            table.name,
            [(c.name, c.type) for c in table.columns],
            list(table.rows),
        )
    cluster.register_catalog("memory", connector)
    return cluster


def _coherence_mutations(tables) -> tuple[str, ...]:
    """Mutations interleaved between runs of the case query, derived
    from the case's own tables (repro cases use arbitrary names, not
    just the grammar's t0/t1). Each is deterministic as a multiset (no
    bare LIMIT / sampling), so the cached and uncached clusters stay
    row-for-row comparable after applying it."""
    mutations = []
    for table in tables:
        mutations.append(f"INSERT INTO {table.name} SELECT * FROM {table.name}")
        mutations.append(f"ctas_drop:{table.name}")
    return tuple(mutations)


def _run_cache_coherence(tables, sql: str) -> list[tuple]:
    """Differential cache-coherence check (docs/CACHING.md test battery).

    Runs ``sql`` on a fully-cached Hive cluster and an identical
    uncached twin; interleaves deterministic DDL/INSERT mutations and
    re-runs after each one. Every divergence — including a result-cache
    repeat that is not bit-identical — raises ``CacheCoherenceError``.
    Returns the *first* (pre-mutation) rows so the outcome matches the
    oracle, which only knows the original tables.
    """
    import random

    from repro.cache import CacheConfig
    from repro.connectors.hashing import stable_hash

    cached = _cached_hive_cluster(tables, CacheConfig.full(metadata_latency_ms=0.5))
    plain = _cached_hive_cluster(tables, CacheConfig.disabled())

    def run_both(context: str) -> list[tuple]:
        try:
            cached_rows = cached.run_query(sql, drain=True).rows()
            cached_error = None
        except Exception as exc:
            cached_rows, cached_error = None, exc
        try:
            plain_rows = plain.run_query(sql, drain=True).rows()
            plain_error = None
        except Exception as exc:
            plain_rows, plain_error = None, exc
        cached_key = (
            ("error", type(cached_error).__name__)
            if cached_error is not None
            else ("rows", tuple(normalize_rows(cached_rows)))
        )
        plain_key = (
            ("error", type(plain_error).__name__)
            if plain_error is not None
            else ("rows", tuple(normalize_rows(plain_rows)))
        )
        if cached_key != plain_key:
            raise CacheCoherenceError(
                f"cached cluster diverged from uncached twin {context}: "
                f"cached={cached_key[:1] + (str(cached_key[1])[:200],)} "
                f"plain={plain_key[:1] + (str(plain_key[1])[:200],)}"
            )
        if cached_error is not None:
            raise cached_error
        return cached_rows

    first = run_both("on the initial run")
    # Repeat with no intervening mutation: the second run must be served
    # from the result cache, bit-identical (not merely multiset-equal).
    repeat = cached.run_query(sql, drain=True)
    if repeat.result_cache_status == "hit" and repeat.rows() != first:
        raise CacheCoherenceError("result-cache repeat was not bit-identical")
    if repeat.result_cache_status not in ("hit", "miss", "off"):
        raise CacheCoherenceError(
            f"unexpected result-cache status {repeat.result_cache_status!r}"
        )

    rng = random.Random(stable_hash(sql) & 0xFFFFFFFF)
    mutations = _coherence_mutations(tables)
    for mutation in rng.sample(mutations, min(2, len(mutations))):
        if mutation.startswith("ctas_drop:"):
            victim = mutation.split(":", 1)[1]
            for cluster in (cached, plain):
                cluster.run_query(
                    f"CREATE TABLE tmp_cc AS SELECT * FROM {victim}", drain=True
                )
                # Out-of-band drop through the metadata API (the planner
                # has no DROP TABLE): invalidation must still propagate
                # via the connector's version bump.
                handle = cluster.metadata.require_table(
                    "memory", "default", "tmp_cc"
                )
                cluster.metadata.drop_table(handle)
        else:
            for cluster in (cached, plain):
                cluster.run_query(mutation, drain=True)
        run_both(f"after {mutation!r}")
    return first


def run_config(name: str, case_tables, sql: str) -> Outcome:
    if name == "oracle":
        connector = MemoryConnector()
        load_tables(connector, case_tables)
        from repro.catalog.metadata import Metadata

        metadata = Metadata()
        metadata.register_catalog("memory", connector)
        return _capture(lambda: run_oracle(metadata, sql)[1])
    if name == "interpreter":
        engine = _local_engine(case_tables, optimize=False, interpreted=True)
        return _capture(lambda: engine.execute(sql).rows)
    if name == "compiled":
        engine = _local_engine(case_tables, optimize=False, interpreted=False)
        return _capture(lambda: engine.execute(sql).rows)
    if name == "optimized":
        engine = _local_engine(case_tables, optimize=True, interpreted=False)
        return _capture(lambda: engine.execute(sql).rows)
    if name == "row_kernels":
        engine = _local_engine(case_tables, optimize=True, interpreted=False)

        def run_row_mode() -> list[tuple]:
            with kernels.forced_mode(kernels.ROW):
                return engine.execute(sql).rows

        return _capture(run_row_mode)
    if name == "cluster":
        cluster = _cluster(case_tables, faults=False)
        return _capture(lambda: cluster.run_query(sql).rows())
    if name == "cluster_faults":
        return _capture(lambda: _run_faulted(case_tables, sql))
    if name == "chaos":
        return _capture(lambda: _run_chaos(case_tables, sql))
    if name == "dynamic_filter":
        cluster = _cluster(case_tables, faults=False, dynamic_filters=True)
        return _capture(lambda: cluster.run_query(sql).rows())
    if name == "hive":
        cluster = _connector_cluster(case_tables, "hive")
        return _capture(lambda: cluster.run_query(sql).rows())
    if name == "raptor":
        cluster = _connector_cluster(case_tables, "raptor")
        return _capture(lambda: cluster.run_query(sql).rows())
    if name == "ddl_roundtrip":

        def run_roundtrip() -> list[tuple]:
            # Construct inside the capture: a CTAS failure is an outcome
            # (compared against the oracle), not a harness crash.
            cluster = _ddl_roundtrip_cluster(case_tables)
            return cluster.run_query(sql).rows()

        return _capture(run_roundtrip)
    if name == "cache_coherence":
        return _capture(lambda: _run_cache_coherence(case_tables, sql))
    if name == "fused":
        from repro.exec import pipeline

        cluster = _cluster(case_tables, faults=False)

        def run_forced_fusion() -> list[tuple]:
            with pipeline.forced_fusion(pipeline.ON):
                return cluster.run_query(sql).rows()

        return _capture(run_forced_fusion)
    if name == "rewrites":
        engine = _local_engine(case_tables, optimize=True, interpreted=False)
        engine.optimizer_config = _forced_rewrites_optimizer()
        return _capture(lambda: engine.execute(sql).rows)
    if name == "simgpu":
        from repro.exec import backend as kernel_backend

        engine = _local_engine(case_tables, optimize=True, interpreted=False)

        def run_simgpu() -> list[tuple]:
            with kernel_backend.forced_backend("simgpu"):
                return engine.execute(sql).rows

        return _capture(run_simgpu)
    if name == "spooled":
        return _capture(lambda: _run_spooled(case_tables, sql))
    if name == "join_spill":
        return _capture(lambda: _run_join_spill(case_tables, sql))
    raise ValueError(f"unknown config {name!r}")


# --------------------------------------------------------------------------
# Agreement checking
# --------------------------------------------------------------------------


def check_tables_sql(
    tables: list[TableSpec] | list[tuple],
    sql: str,
    seed: Optional[int] = None,
    configs=CONFIG_NAMES,
    order_spec=(),
) -> list[Disagreement]:
    """Run ``sql`` over ``tables`` through the oracle plus ``configs``
    and return every disagreement (empty list = full agreement).

    ``tables`` may be TableSpec objects or plain
    ``(name, [(column, type_name)], rows)`` tuples (the reproducer file
    format).
    """
    specs = [_coerce_table(t) for t in tables]
    oracle = run_config("oracle", specs, sql)
    disagreements: list[Disagreement] = []
    for name in configs:
        outcome = run_config(name, specs, sql)
        if outcome.key() != oracle.key():
            disagreements.append(
                Disagreement(name, sql, seed, expected=oracle, actual=outcome)
            )
            continue
        if order_spec and outcome.ordered_rows is not None:
            if not _check_sorted(outcome.ordered_rows, order_spec):
                disagreements.append(
                    Disagreement(
                        name,
                        sql,
                        seed,
                        expected=oracle,
                        actual=outcome,
                        detail="output violates the query's ORDER BY",
                    )
                )
    return disagreements


def _coerce_table(table) -> TableSpec:
    if isinstance(table, TableSpec):
        return table
    from repro.fuzz.grammar import ColumnSpec

    name, columns, rows = table
    return TableSpec(
        name,
        [ColumnSpec(c, _TYPE_NAMES[t]) for c, t in columns],
        [tuple(r) for r in rows],
    )


def check_case(case: FuzzCase, configs=CONFIG_NAMES) -> list[Disagreement]:
    global CURRENT_CASE
    CURRENT_CASE = case
    return check_tables_sql(
        case.tables,
        case.sql,
        seed=case.seed,
        configs=configs,
        order_spec=case.order_spec,
    )


@dataclass
class CampaignResult:
    cases: int
    disagreements: list[Disagreement]
    failing_case: Optional[FuzzCase] = None


def run_campaign(
    seed: int,
    iterations: int,
    features: FeatureMask | None = None,
    configs=CONFIG_NAMES,
    stop_on_failure: bool = True,
    progress: Optional[Callable[[int, FuzzCase], None]] = None,
) -> CampaignResult:
    """Check ``iterations`` consecutive seeds starting at ``seed``."""
    all_disagreements: list[Disagreement] = []
    failing = None
    count = 0
    for i in range(iterations):
        case = generate_case(seed + i, features)
        if progress is not None:
            progress(i, case)
        found = check_case(case, configs)
        count += 1
        if found:
            all_disagreements.extend(found)
            failing = case
            if stop_on_failure:
                break
    return CampaignResult(count, all_disagreements, failing)
