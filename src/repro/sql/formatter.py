"""Render AST nodes back to SQL text.

Used by EXPLAIN and error messages, and by the fuzzing subsystem
(:mod:`repro.fuzz`), whose generator emits ASTs and relies on
``format_statement`` to turn them into executable SQL. Formatting is
parenthesized-normalized: ``format(parse(format(x))) == format(x)`` is
a tested fixed-point property for every statement the parser accepts.
"""

from __future__ import annotations

from repro.sql import ast


def format_expression(expr: ast.Expression) -> str:
    """Pretty-print an expression AST as SQL."""
    f = format_expression
    if isinstance(expr, ast.NullLiteral):
        return "NULL"
    if isinstance(expr, ast.BooleanLiteral):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, ast.LongLiteral):
        return str(expr.value)
    if isinstance(expr, ast.DoubleLiteral):
        return repr(expr.value)
    if isinstance(expr, ast.StringLiteral):
        escaped = expr.value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(expr, ast.IntervalLiteral):
        sign = "-" if expr.sign < 0 else ""
        return f"INTERVAL {sign}'{expr.value}' {expr.unit.upper()}"
    if isinstance(expr, ast.Identifier):
        return f'"{expr.name}"' if expr.quoted else expr.name
    if isinstance(expr, ast.SymbolReference):
        return expr.name
    if isinstance(expr, ast.FieldReference):
        return f"$field{expr.index}"
    if isinstance(expr, ast.Dereference):
        return f"{f(expr.base)}.{expr.field_name}"
    if isinstance(expr, ast.ArithmeticBinary):
        return f"({f(expr.left)} {expr.op.value} {f(expr.right)})"
    if isinstance(expr, ast.ArithmeticUnary):
        return f"-{f(expr.value)}" if expr.sign < 0 else f(expr.value)
    if isinstance(expr, ast.Comparison):
        return f"({f(expr.left)} {expr.op.value} {f(expr.right)})"
    if isinstance(expr, ast.Logical):
        # Render nested same-op chains flat, matching the parser's
        # flattened representation (so format∘parse is a fixed point).
        terms: list[ast.Expression] = []

        def flatten(term: ast.Expression) -> None:
            if isinstance(term, ast.Logical) and term.op == expr.op:
                for inner in term.terms:
                    flatten(inner)
            else:
                terms.append(term)

        for term in expr.terms:
            flatten(term)
        joined = f" {expr.op.value} ".join(f(t) for t in terms)
        return f"({joined})"
    if isinstance(expr, ast.Not):
        return f"(NOT {f(expr.value)})"
    if isinstance(expr, ast.IsNull):
        return f"({f(expr.value)} IS NULL)"
    if isinstance(expr, ast.IsNotNull):
        return f"({f(expr.value)} IS NOT NULL)"
    if isinstance(expr, ast.Between):
        return f"({f(expr.value)} BETWEEN {f(expr.low)} AND {f(expr.high)})"
    if isinstance(expr, ast.InList):
        items = ", ".join(f(i) for i in expr.items)
        return f"({f(expr.value)} IN ({items}))"
    if isinstance(expr, ast.InSubquery):
        return f"({f(expr.value)} IN ({format_query(expr.query)}))"
    if isinstance(expr, ast.Exists):
        return f"EXISTS ({format_query(expr.query)})"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({format_query(expr.query)})"
    if isinstance(expr, ast.Like):
        suffix = f" ESCAPE {f(expr.escape)}" if expr.escape else ""
        return f"({f(expr.value)} LIKE {f(expr.pattern)}{suffix})"
    if isinstance(expr, ast.Cast):
        keyword = "TRY_CAST" if expr.safe else "CAST"
        return f"{keyword}({f(expr.value)} AS {expr.target_type})"
    if isinstance(expr, ast.Extract):
        return f"EXTRACT({expr.field_name.upper()} FROM {f(expr.value)})"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(f(a) for a in expr.arguments)
        distinct = "DISTINCT " if expr.distinct else ""
        text = f"{expr.name}({distinct}{args})"
        if expr.filter is not None:
            text += f" FILTER (WHERE {f(expr.filter)})"
        if expr.window is not None:
            text += f" OVER ({_format_window(expr.window)})"
        return text
    if isinstance(expr, ast.Lambda):
        params = ", ".join(expr.parameters)
        if len(expr.parameters) == 1:
            return f"{params} -> {f(expr.body)}"
        return f"({params}) -> {f(expr.body)}"
    if isinstance(expr, ast.Subscript):
        return f"{f(expr.base)}[{f(expr.index)}]"
    if isinstance(expr, ast.ArrayConstructor):
        return "ARRAY[" + ", ".join(f(i) for i in expr.items) + "]"
    if isinstance(expr, ast.RowConstructor):
        return "ROW(" + ", ".join(f(i) for i in expr.items) + ")"
    if isinstance(expr, ast.SearchedCase):
        parts = ["CASE"]
        for when in expr.whens:
            parts.append(f"WHEN {f(when.condition)} THEN {f(when.result)}")
        if expr.default is not None:
            parts.append(f"ELSE {f(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.SimpleCase):
        parts = [f"CASE {f(expr.operand)}"]
        for when in expr.whens:
            parts.append(f"WHEN {f(when.condition)} THEN {f(when.result)}")
        if expr.default is not None:
            parts.append(f"ELSE {f(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.Parameter):
        return "?"
    return f"<{type(expr).__name__}>"


def _format_window(window: ast.WindowSpec) -> str:
    parts = []
    if window.partition_by:
        cols = ", ".join(format_expression(e) for e in window.partition_by)
        parts.append(f"PARTITION BY {cols}")
    if window.order_by:
        keys = ", ".join(_format_sort_item(s) for s in window.order_by)
        parts.append(f"ORDER BY {keys}")
    if window.frame is not None:
        frame = window.frame
        parts.append(
            f"{frame.frame_type} BETWEEN {_format_bound(frame.start)}"
            f" AND {_format_bound(frame.end)}"
        )
    return " ".join(parts)


def _format_bound(bound: ast.FrameBound) -> str:
    if bound.value is not None:
        return f"{format_expression(bound.value)} {bound.kind.value}"
    return bound.kind.value


def _format_sort_item(item: ast.SortItem) -> str:
    text = format_expression(item.key)
    text += " ASC" if item.ascending else " DESC"
    if item.nulls_first is True:
        text += " NULLS FIRST"
    elif item.nulls_first is False:
        text += " NULLS LAST"
    return text


# --------------------------------------------------------------------------
# Statements, queries, and relations
# --------------------------------------------------------------------------


def format_statement(statement: ast.Statement) -> str:
    """Render a full statement back to SQL."""
    if isinstance(statement, ast.Query):
        return format_query(statement)
    if isinstance(statement, ast.Explain):
        prefix = "EXPLAIN"
        if statement.analyze:
            prefix += " ANALYZE"
        elif statement.explain_type != "LOGICAL":
            prefix += f" ({statement.explain_type})"
        return f"{prefix} {format_statement(statement.statement)}"
    if isinstance(statement, ast.Insert):
        columns = (
            " (" + ", ".join(statement.columns) + ")" if statement.columns else ""
        )
        return f"INSERT INTO {statement.target}{columns} {format_query(statement.query)}"
    if isinstance(statement, ast.CreateTableAsSelect):
        return f"CREATE TABLE {statement.name} AS {format_query(statement.query)}"
    if isinstance(statement, ast.DropTable):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {exists}{statement.name}"
    if isinstance(statement, ast.ShowTables):
        suffix = f" FROM {statement.schema}" if statement.schema else ""
        return f"SHOW TABLES{suffix}"
    if isinstance(statement, ast.ShowCatalogs):
        return "SHOW CATALOGS"
    if isinstance(statement, ast.ShowSchemas):
        suffix = f" FROM {statement.catalog}" if statement.catalog else ""
        return f"SHOW SCHEMAS{suffix}"
    if isinstance(statement, ast.ShowFunctions):
        return "SHOW FUNCTIONS"
    if isinstance(statement, ast.ShowColumns):
        return f"SHOW COLUMNS FROM {statement.table}"
    raise ValueError(f"Cannot format statement: {type(statement).__name__}")


def format_query(query: ast.Query) -> str:
    parts = []
    if query.with_ is not None:
        ctes = ", ".join(
            _format_with_query(w) for w in query.with_.queries
        )
        parts.append(f"WITH {ctes}")
    parts.append(_format_query_body(query.body))
    if query.order_by:
        parts.append(
            "ORDER BY " + ", ".join(_format_sort_item(s) for s in query.order_by)
        )
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def _format_with_query(with_query: ast.WithQuery) -> str:
    columns = (
        " (" + ", ".join(with_query.column_names) + ")"
        if with_query.column_names
        else ""
    )
    return f"{with_query.name}{columns} AS ({format_query(with_query.query)})"


def _format_query_body(body: ast.QueryBody) -> str:
    if isinstance(body, ast.QuerySpecification):
        return _format_query_specification(body)
    if isinstance(body, ast.SetOperation):
        quantifier = "" if body.distinct else " ALL"

        def operand(side: ast.QueryBody) -> str:
            # Parenthesize nested set operations so precedence survives the
            # round trip (the parens re-parse as a table subquery, which
            # formats back to the identical string).
            text = _format_query_body(side)
            return f"({text})" if isinstance(side, ast.SetOperation) else text

        return f"{operand(body.left)} {body.kind.value}{quantifier} {operand(body.right)}"
    if isinstance(body, ast.TableSubqueryBody):
        return f"({format_query(body.query)})"
    if isinstance(body, ast.ValuesBody):
        return "VALUES " + ", ".join(_format_values_row(row) for row in body.rows)
    raise ValueError(f"Cannot format query body: {type(body).__name__}")


def _format_values_row(row: tuple) -> str:
    return "(" + ", ".join(format_expression(e) for e in row) + ")"


def _format_query_specification(spec: ast.QuerySpecification) -> str:
    distinct = "DISTINCT " if spec.select.distinct else ""
    items = ", ".join(_format_select_item(i) for i in spec.select.items)
    parts = [f"SELECT {distinct}{items}"]
    if spec.from_ is not None:
        parts.append(f"FROM {format_relation(spec.from_)}")
    if spec.where is not None:
        parts.append(f"WHERE {format_expression(spec.where)}")
    if spec.group_by is not None:
        parts.append(_format_group_by(spec.group_by))
    if spec.having is not None:
        parts.append(f"HAVING {format_expression(spec.having)}")
    if spec.order_by:
        parts.append(
            "ORDER BY " + ", ".join(_format_sort_item(s) for s in spec.order_by)
        )
    if spec.limit is not None:
        parts.append(f"LIMIT {spec.limit}")
    return " ".join(parts)


def _format_select_item(item: ast.SelectItem) -> str:
    if isinstance(item, ast.AllColumns):
        return f"{item.prefix}.*" if item.prefix is not None else "*"
    assert isinstance(item, ast.SingleColumn)
    text = format_expression(item.expression)
    if item.alias is not None:
        text += f" AS {item.alias}"
    return text


def _format_group_by(group_by: ast.GroupBy) -> str:
    if group_by.grouping_sets is not None:
        sets = ", ".join(
            "(" + ", ".join(format_expression(e) for e in subset) + ")"
            for subset in group_by.grouping_sets
        )
        return f"GROUP BY GROUPING SETS ({sets})"
    return "GROUP BY " + ", ".join(
        format_expression(e) for e in group_by.expressions
    )


def format_relation(relation: ast.Relation) -> str:
    if isinstance(relation, ast.Table):
        return str(relation.name)
    if isinstance(relation, ast.AliasedRelation):
        columns = (
            " (" + ", ".join(relation.column_names) + ")"
            if relation.column_names
            else ""
        )
        return f"{format_relation(relation.relation)} AS {relation.alias}{columns}"
    if isinstance(relation, ast.SubqueryRelation):
        return f"({format_query(relation.query)})"
    if isinstance(relation, ast.Join):
        left = format_relation(relation.left)
        right = format_relation(relation.right)
        if relation.join_type is ast.JoinType.IMPLICIT:
            return f"{left}, {right}"
        if relation.join_type is ast.JoinType.CROSS:
            return f"{left} CROSS JOIN {right}"
        keyword = {
            ast.JoinType.INNER: "JOIN",
            ast.JoinType.LEFT: "LEFT JOIN",
            ast.JoinType.RIGHT: "RIGHT JOIN",
            ast.JoinType.FULL: "FULL JOIN",
        }[relation.join_type]
        text = f"{left} {keyword} {right}"
        if isinstance(relation.criteria, ast.JoinOn):
            text += f" ON {format_expression(relation.criteria.expression)}"
        elif isinstance(relation.criteria, ast.JoinUsing):
            text += " USING (" + ", ".join(relation.criteria.columns) + ")"
        return text
    if isinstance(relation, ast.SampledRelation):
        return (
            f"{format_relation(relation.relation)} TABLESAMPLE "
            f"{relation.method} ({format_expression(relation.percentage)})"
        )
    if isinstance(relation, ast.Unnest):
        exprs = ", ".join(format_expression(e) for e in relation.expressions)
        suffix = " WITH ORDINALITY" if relation.with_ordinality else ""
        return f"UNNEST({exprs}){suffix}"
    if isinstance(relation, ast.Values):
        return "(VALUES " + ", ".join(
            _format_values_row(row) for row in relation.rows
        ) + ")"
    raise ValueError(f"Cannot format relation: {type(relation).__name__}")
