"""Render AST nodes back to SQL text (used by EXPLAIN and error messages)."""

from __future__ import annotations

from repro.sql import ast


def format_expression(expr: ast.Expression) -> str:
    """Pretty-print an expression AST as SQL."""
    f = format_expression
    if isinstance(expr, ast.NullLiteral):
        return "NULL"
    if isinstance(expr, ast.BooleanLiteral):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, ast.LongLiteral):
        return str(expr.value)
    if isinstance(expr, ast.DoubleLiteral):
        return repr(expr.value)
    if isinstance(expr, ast.StringLiteral):
        escaped = expr.value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(expr, ast.IntervalLiteral):
        sign = "-" if expr.sign < 0 else ""
        return f"INTERVAL {sign}'{expr.value}' {expr.unit.upper()}"
    if isinstance(expr, ast.Identifier):
        return f'"{expr.name}"' if expr.quoted else expr.name
    if isinstance(expr, ast.SymbolReference):
        return expr.name
    if isinstance(expr, ast.FieldReference):
        return f"$field{expr.index}"
    if isinstance(expr, ast.Dereference):
        return f"{f(expr.base)}.{expr.field_name}"
    if isinstance(expr, ast.ArithmeticBinary):
        return f"({f(expr.left)} {expr.op.value} {f(expr.right)})"
    if isinstance(expr, ast.ArithmeticUnary):
        return f"-{f(expr.value)}" if expr.sign < 0 else f(expr.value)
    if isinstance(expr, ast.Comparison):
        return f"({f(expr.left)} {expr.op.value} {f(expr.right)})"
    if isinstance(expr, ast.Logical):
        joined = f" {expr.op.value} ".join(f(t) for t in expr.terms)
        return f"({joined})"
    if isinstance(expr, ast.Not):
        return f"(NOT {f(expr.value)})"
    if isinstance(expr, ast.IsNull):
        return f"({f(expr.value)} IS NULL)"
    if isinstance(expr, ast.IsNotNull):
        return f"({f(expr.value)} IS NOT NULL)"
    if isinstance(expr, ast.Between):
        return f"({f(expr.value)} BETWEEN {f(expr.low)} AND {f(expr.high)})"
    if isinstance(expr, ast.InList):
        items = ", ".join(f(i) for i in expr.items)
        return f"({f(expr.value)} IN ({items}))"
    if isinstance(expr, ast.InSubquery):
        return f"({f(expr.value)} IN (<subquery>))"
    if isinstance(expr, ast.Exists):
        return "EXISTS (<subquery>)"
    if isinstance(expr, ast.ScalarSubquery):
        return "(<scalar subquery>)"
    if isinstance(expr, ast.Like):
        suffix = f" ESCAPE {f(expr.escape)}" if expr.escape else ""
        return f"({f(expr.value)} LIKE {f(expr.pattern)}{suffix})"
    if isinstance(expr, ast.Cast):
        keyword = "TRY_CAST" if expr.safe else "CAST"
        return f"{keyword}({f(expr.value)} AS {expr.target_type})"
    if isinstance(expr, ast.Extract):
        return f"EXTRACT({expr.field_name.upper()} FROM {f(expr.value)})"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(f(a) for a in expr.arguments)
        distinct = "DISTINCT " if expr.distinct else ""
        text = f"{expr.name}({distinct}{args})"
        if expr.filter is not None:
            text += f" FILTER (WHERE {f(expr.filter)})"
        if expr.window is not None:
            text += f" OVER ({_format_window(expr.window)})"
        return text
    if isinstance(expr, ast.Lambda):
        params = ", ".join(expr.parameters)
        if len(expr.parameters) == 1:
            return f"{params} -> {f(expr.body)}"
        return f"({params}) -> {f(expr.body)}"
    if isinstance(expr, ast.Subscript):
        return f"{f(expr.base)}[{f(expr.index)}]"
    if isinstance(expr, ast.ArrayConstructor):
        return "ARRAY[" + ", ".join(f(i) for i in expr.items) + "]"
    if isinstance(expr, ast.RowConstructor):
        return "ROW(" + ", ".join(f(i) for i in expr.items) + ")"
    if isinstance(expr, ast.SearchedCase):
        parts = ["CASE"]
        for when in expr.whens:
            parts.append(f"WHEN {f(when.condition)} THEN {f(when.result)}")
        if expr.default is not None:
            parts.append(f"ELSE {f(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.SimpleCase):
        parts = [f"CASE {f(expr.operand)}"]
        for when in expr.whens:
            parts.append(f"WHEN {f(when.condition)} THEN {f(when.result)}")
        if expr.default is not None:
            parts.append(f"ELSE {f(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.Parameter):
        return "?"
    return f"<{type(expr).__name__}>"


def _format_window(window: ast.WindowSpec) -> str:
    parts = []
    if window.partition_by:
        cols = ", ".join(format_expression(e) for e in window.partition_by)
        parts.append(f"PARTITION BY {cols}")
    if window.order_by:
        keys = ", ".join(_format_sort_item(s) for s in window.order_by)
        parts.append(f"ORDER BY {keys}")
    if window.frame is not None:
        frame = window.frame
        parts.append(
            f"{frame.frame_type} BETWEEN {_format_bound(frame.start)}"
            f" AND {_format_bound(frame.end)}"
        )
    return " ".join(parts)


def _format_bound(bound: ast.FrameBound) -> str:
    if bound.value is not None:
        return f"{format_expression(bound.value)} {bound.kind.value}"
    return bound.kind.value


def _format_sort_item(item: ast.SortItem) -> str:
    text = format_expression(item.key)
    text += " ASC" if item.ascending else " DESC"
    if item.nulls_first is True:
        text += " NULLS FIRST"
    elif item.nulls_first is False:
        text += " NULLS LAST"
    return text
