"""SQL front-end: lexer, recursive-descent parser, AST, and formatter.

The paper (Sec. IV-B2) uses an ANTLR-generated parser; we hand-write an
equivalent recursive-descent parser producing a syntax tree of dataclass
nodes. The dialect covers the ANSI subset exercised by the evaluation,
plus Presto's usability extensions: lambdas and higher-order functions.
"""

from repro.sql.parser import parse_statement, parse_expression
from repro.sql import ast

__all__ = ["parse_statement", "parse_expression", "ast"]
