"""SQL lexer.

Produces a flat token stream with line/column positions for error
reporting. Keywords are recognized case-insensitively; identifiers may be
double-quoted to escape keyword status (ANSI style).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SyntaxError_


class TokenType(Enum):
    IDENTIFIER = "identifier"
    QUOTED_IDENTIFIER = "quoted_identifier"
    KEYWORD = "keyword"
    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    OPERATOR = "operator"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select from where group by having order limit offset as on using join
    inner left right full outer cross natural and or not in exists between
    like escape is null true false case when then else end cast try_cast
    distinct all union intersect except with recursive values insert into
    create table drop if asc desc nulls first last over partition rows range
    unbounded preceding following current row interval day hour minute
    second month year extract unnest ordinality explain analyze describe
    show tables columns filter lateral
    """.split()
)

# Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<>", "!=", "<=", ">=", "->", "||", "=", "<", ">", "+", "-", "*",
              "/", "%", "(", ")", ",", ".", ";", "[", "]", "?")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens, raising SyntaxError_ on malformed input."""
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(sql)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and sql[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        # -- line comment
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":
            while i < n and sql[i] != "\n":
                advance(1)
            continue
        # /* block comment */
        if ch == "/" and i + 1 < n and sql[i + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while i + 1 < n and not (sql[i] == "*" and sql[i + 1] == "/"):
                advance(1)
            if i + 1 >= n:
                raise SyntaxError_("Unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch == "'":
            start_line, start_col = line, col
            advance(1)
            buf: list[str] = []
            while True:
                if i >= n:
                    raise SyntaxError_("Unterminated string literal", start_line, start_col)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                        buf.append("'")
                        advance(2)
                        continue
                    advance(1)
                    break
                buf.append(sql[i])
                advance(1)
            tokens.append(Token(TokenType.STRING, "".join(buf), start_line, start_col))
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            buf = []
            while True:
                if i >= n:
                    raise SyntaxError_("Unterminated quoted identifier", start_line, start_col)
                if sql[i] == '"':
                    if i + 1 < n and sql[i + 1] == '"':
                        buf.append('"')
                        advance(2)
                        continue
                    advance(1)
                    break
                buf.append(sql[i])
                advance(1)
            tokens.append(
                Token(TokenType.QUOTED_IDENTIFIER, "".join(buf), start_line, start_col)
            )
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start_line, start_col = line, col
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    advance(1)
                elif c == "." and not seen_dot and not seen_exp:
                    # Don't consume "1." in "1..2" or "t.1" contexts; simple rule:
                    # a dot is part of the number only when followed by a digit
                    # or when nothing numeric follows (e.g. "1.5").
                    if i + 1 < n and (sql[i + 1].isdigit() or sql[i + 1] in "eE"):
                        seen_dot = True
                        advance(1)
                    else:
                        break
                elif c in "eE" and not seen_exp:
                    if i + 1 < n and (sql[i + 1].isdigit() or sql[i + 1] in "+-"):
                        seen_exp = True
                        advance(1)
                        if i < n and sql[i] in "+-":
                            advance(1)
                    else:
                        break
                else:
                    break
            text = sql[start:i]
            ttype = TokenType.DECIMAL if (seen_dot or seen_exp) else TokenType.INTEGER
            tokens.append(Token(ttype, text, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                advance(1)
            text = sql[start:i]
            ttype = (
                TokenType.KEYWORD if text.lower() in KEYWORDS else TokenType.IDENTIFIER
            )
            tokens.append(Token(ttype, text, start_line, start_col))
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, line, col))
                advance(len(op))
                matched = True
                break
        if not matched:
            raise SyntaxError_(f"Unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
