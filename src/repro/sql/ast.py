"""Abstract syntax tree node definitions.

Every node is a frozen dataclass so trees are hashable and safely
shareable. Node names follow the Presto source tree (Query,
QuerySpecification, ComparisonExpression, ...) to keep the mapping to the
paper obvious.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union


@dataclass(frozen=True)
class Node:
    """Base class of all AST nodes."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression(Node):
    pass


@dataclass(frozen=True)
class NullLiteral(Expression):
    pass


@dataclass(frozen=True)
class BooleanLiteral(Expression):
    value: bool


@dataclass(frozen=True)
class LongLiteral(Expression):
    value: int


@dataclass(frozen=True)
class DoubleLiteral(Expression):
    value: float


@dataclass(frozen=True)
class StringLiteral(Expression):
    value: str


@dataclass(frozen=True)
class IntervalLiteral(Expression):
    """``INTERVAL '3' DAY`` — value in the given unit."""

    value: str
    unit: str  # day | hour | minute | second | month | year
    sign: int = 1


@dataclass(frozen=True)
class Identifier(Expression):
    name: str
    quoted: bool = False


@dataclass(frozen=True)
class QualifiedName(Node):
    """A dotted name such as ``catalog.schema.table``."""

    parts: tuple[str, ...]

    def __str__(self) -> str:
        return ".".join(self.parts)

    @property
    def suffix(self) -> str:
        return self.parts[-1]


@dataclass(frozen=True)
class Dereference(Expression):
    """``base.field`` — row-field access or qualified column reference."""

    base: Expression
    field_name: str


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional ``?`` parameter."""

    position: int


class ArithmeticOp(str, Enum):
    ADD = "+"
    SUBTRACT = "-"
    MULTIPLY = "*"
    DIVIDE = "/"
    MODULUS = "%"


@dataclass(frozen=True)
class ArithmeticBinary(Expression):
    op: ArithmeticOp
    left: Expression
    right: Expression


@dataclass(frozen=True)
class ArithmeticUnary(Expression):
    sign: int  # +1 or -1
    value: Expression


class ComparisonOp(str, Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IS_DISTINCT_FROM = "IS DISTINCT FROM"


@dataclass(frozen=True)
class Comparison(Expression):
    op: ComparisonOp
    left: Expression
    right: Expression


class LogicalOp(str, Enum):
    AND = "AND"
    OR = "OR"


@dataclass(frozen=True)
class Logical(Expression):
    op: LogicalOp
    terms: tuple[Expression, ...]


@dataclass(frozen=True)
class Not(Expression):
    value: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    value: Expression


@dataclass(frozen=True)
class IsNotNull(Expression):
    value: Expression


@dataclass(frozen=True)
class Between(Expression):
    value: Expression
    low: Expression
    high: Expression


@dataclass(frozen=True)
class InList(Expression):
    value: Expression
    items: tuple[Expression, ...]


@dataclass(frozen=True)
class InSubquery(Expression):
    value: Expression
    query: "Query"


@dataclass(frozen=True)
class Exists(Expression):
    query: "Query"


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    query: "Query"


@dataclass(frozen=True)
class Like(Expression):
    value: Expression
    pattern: Expression
    escape: Optional[Expression] = None


@dataclass(frozen=True)
class Cast(Expression):
    value: Expression
    target_type: str
    safe: bool = False  # TRY_CAST returns NULL on failure


@dataclass(frozen=True)
class Extract(Expression):
    """``EXTRACT(field FROM expr)``."""

    field_name: str
    value: Expression


@dataclass(frozen=True)
class SortItem(Node):
    key: Expression
    ascending: bool = True
    nulls_first: Optional[bool] = None  # None = dialect default (last for ASC)


class FrameBoundKind(str, Enum):
    UNBOUNDED_PRECEDING = "UNBOUNDED PRECEDING"
    PRECEDING = "PRECEDING"
    CURRENT_ROW = "CURRENT ROW"
    FOLLOWING = "FOLLOWING"
    UNBOUNDED_FOLLOWING = "UNBOUNDED FOLLOWING"


@dataclass(frozen=True)
class FrameBound(Node):
    kind: FrameBoundKind
    value: Optional[Expression] = None


@dataclass(frozen=True)
class WindowFrame(Node):
    frame_type: str  # "ROWS" | "RANGE"
    start: FrameBound
    end: FrameBound


@dataclass(frozen=True)
class WindowSpec(Node):
    partition_by: tuple[Expression, ...] = ()
    order_by: tuple[SortItem, ...] = ()
    frame: Optional[WindowFrame] = None


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: QualifiedName
    arguments: tuple[Expression, ...] = ()
    distinct: bool = False
    window: Optional[WindowSpec] = None
    filter: Optional[Expression] = None


@dataclass(frozen=True)
class Lambda(Expression):
    """``(x, y) -> body`` — Presto's anonymous-function extension (Sec. IV-A)."""

    parameters: tuple[str, ...]
    body: Expression


@dataclass(frozen=True)
class Subscript(Expression):
    """``base[index]`` — array element or map value access."""

    base: Expression
    index: Expression


@dataclass(frozen=True)
class ArrayConstructor(Expression):
    items: tuple[Expression, ...]


@dataclass(frozen=True)
class RowConstructor(Expression):
    items: tuple[Expression, ...]


@dataclass(frozen=True)
class WhenClause(Node):
    condition: Expression
    result: Expression


@dataclass(frozen=True)
class SearchedCase(Expression):
    whens: tuple[WhenClause, ...]
    default: Optional[Expression] = None


@dataclass(frozen=True)
class SimpleCase(Expression):
    operand: Expression
    whens: tuple[WhenClause, ...]
    default: Optional[Expression] = None


@dataclass(frozen=True)
class FieldReference(Expression):
    """Planner-internal: positional reference into the underlying relation."""

    index: int


@dataclass(frozen=True)
class SymbolReference(Expression):
    """Planner-internal: a reference to a plan symbol (unique column name)."""

    name: str


# --------------------------------------------------------------------------
# Relations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Relation(Node):
    pass


@dataclass(frozen=True)
class Table(Relation):
    name: QualifiedName


@dataclass(frozen=True)
class AliasedRelation(Relation):
    relation: Relation
    alias: str
    column_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class SubqueryRelation(Relation):
    query: "Query"


class JoinType(str, Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    CROSS = "CROSS"
    IMPLICIT = "IMPLICIT"  # comma-separated FROM list


@dataclass(frozen=True)
class JoinOn(Node):
    expression: Expression


@dataclass(frozen=True)
class JoinUsing(Node):
    columns: tuple[str, ...]


@dataclass(frozen=True)
class Join(Relation):
    join_type: JoinType
    left: Relation
    right: Relation
    criteria: Union[JoinOn, JoinUsing, None] = None


@dataclass(frozen=True)
class SampledRelation(Relation):
    """``relation TABLESAMPLE BERNOULLI(p)`` — p in percent (0-100)."""

    relation: Relation
    method: str  # "BERNOULLI" | "SYSTEM"
    percentage: Expression


@dataclass(frozen=True)
class Unnest(Relation):
    expressions: tuple[Expression, ...]
    with_ordinality: bool = False


@dataclass(frozen=True)
class Values(Relation):
    rows: tuple[tuple[Expression, ...], ...]


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    pass


@dataclass(frozen=True)
class SingleColumn(SelectItem):
    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class AllColumns(SelectItem):
    prefix: Optional[QualifiedName] = None  # for "t.*"


@dataclass(frozen=True)
class Select(Node):
    items: tuple[SelectItem, ...]
    distinct: bool = False


@dataclass(frozen=True)
class GroupBy(Node):
    expressions: tuple[Expression, ...]
    # GROUPING SETS / ROLLUP / CUBE expand into multiple grouping-key
    # sets; None means plain GROUP BY over ``expressions``.
    grouping_sets: Optional[tuple[tuple[Expression, ...], ...]] = None


@dataclass(frozen=True)
class QueryBody(Node):
    pass


@dataclass(frozen=True)
class QuerySpecification(QueryBody):
    select: Select
    from_: Optional[Relation] = None
    where: Optional[Expression] = None
    group_by: Optional[GroupBy] = None
    having: Optional[Expression] = None
    order_by: tuple[SortItem, ...] = ()
    limit: Optional[int] = None


class SetOpKind(str, Enum):
    UNION = "UNION"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"


@dataclass(frozen=True)
class SetOperation(QueryBody):
    kind: SetOpKind
    left: QueryBody
    right: QueryBody
    distinct: bool = True


@dataclass(frozen=True)
class TableSubqueryBody(QueryBody):
    """A parenthesized query used as a query body."""

    query: "Query"


@dataclass(frozen=True)
class ValuesBody(QueryBody):
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class WithQuery(Node):
    name: str
    query: "Query"
    column_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class With(Node):
    queries: tuple[WithQuery, ...]


@dataclass(frozen=True)
class Statement(Node):
    pass


@dataclass(frozen=True)
class Query(Statement):
    body: QueryBody
    with_: Optional[With] = None
    order_by: tuple[SortItem, ...] = ()
    limit: Optional[int] = None


@dataclass(frozen=True)
class Explain(Statement):
    statement: Statement
    explain_type: str = "LOGICAL"  # LOGICAL | DISTRIBUTED
    analyze: bool = False  # EXPLAIN ANALYZE: execute and report stats


@dataclass(frozen=True)
class Insert(Statement):
    target: QualifiedName
    query: Query
    columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class CreateTableAsSelect(Statement):
    name: QualifiedName
    query: Query
    properties: tuple[tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class DropTable(Statement):
    name: QualifiedName
    if_exists: bool = False


@dataclass(frozen=True)
class ShowTables(Statement):
    schema: Optional[QualifiedName] = None


@dataclass(frozen=True)
class ShowCatalogs(Statement):
    pass


@dataclass(frozen=True)
class ShowSchemas(Statement):
    catalog: Optional[str] = None


@dataclass(frozen=True)
class ShowFunctions(Statement):
    pass


@dataclass(frozen=True)
class ShowColumns(Statement):
    table: QualifiedName


def children(node: Node) -> list[Node]:
    """Return the direct AST children of ``node`` (for generic traversal)."""
    result: list[Node] = []
    for f in getattr(node, "__dataclass_fields__", {}):
        value = getattr(node, f)
        if isinstance(value, Node):
            result.append(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    result.append(item)
                elif isinstance(item, tuple):
                    result.extend(x for x in item if isinstance(x, Node))
    return result
