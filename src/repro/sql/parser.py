"""Recursive-descent SQL parser producing the AST in :mod:`repro.sql.ast`.

Grammar follows the ANSI subset the paper exercises plus Presto
extensions (lambdas, TRY_CAST, higher-order function calls). Expression
parsing uses precedence climbing.
"""

from __future__ import annotations

from repro.errors import SyntaxError_
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4, "<>": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "||": 5,
    "+": 6, "-": 6,
    "*": 7, "/": 7, "%": 7,
}

_COMPARISON_OPS = {
    "=": ast.ComparisonOp.EQ,
    "<>": ast.ComparisonOp.NE,
    "!=": ast.ComparisonOp.NE,
    "<": ast.ComparisonOp.LT,
    "<=": ast.ComparisonOp.LE,
    ">": ast.ComparisonOp.GT,
    ">=": ast.ComparisonOp.GE,
}

_ARITHMETIC_OPS = {
    "+": ast.ArithmeticOp.ADD,
    "-": ast.ArithmeticOp.SUBTRACT,
    "*": ast.ArithmeticOp.MULTIPLY,
    "/": ast.ArithmeticOp.DIVIDE,
    "%": ast.ArithmeticOp.MODULUS,
}


class _Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0

    # ---- token stream helpers ------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.current
        return token.type is TokenType.KEYWORD and token.upper in words

    def at_operator(self, *ops: str) -> bool:
        token = self.current
        return token.type is TokenType.OPERATOR and token.text in ops

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def accept_operator(self, *ops: str) -> bool:
        if self.at_operator(*ops):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            self.error(f"Expected {word}")
        return self.advance()

    def expect_operator(self, op: str) -> Token:
        if not self.at_operator(op):
            self.error(f"Expected '{op}'")
        return self.advance()

    def error(self, message: str) -> None:
        token = self.current
        shown = token.text or "<end of input>"
        raise SyntaxError_(f"{message}, found {shown!r}", token.line, token.column)

    def identifier(self) -> str:
        token = self.current
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            self.advance()
            return token.text if token.type is TokenType.QUOTED_IDENTIFIER else token.text.lower()
        # Allow non-reserved keywords as identifiers in common positions.
        if token.type is TokenType.KEYWORD and token.upper in _NONRESERVED:
            self.advance()
            return token.text.lower()
        self.error("Expected identifier")
        raise AssertionError  # unreachable

    def qualified_name(self) -> ast.QualifiedName:
        parts = [self.identifier()]
        while self.at_operator(".") and self.peek().type in (
            TokenType.IDENTIFIER,
            TokenType.QUOTED_IDENTIFIER,
            TokenType.KEYWORD,
        ):
            self.advance()
            parts.append(self.identifier())
        return ast.QualifiedName(tuple(parts))

    # ---- statements -----------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        stmt = self._statement()
        self.accept_operator(";")
        if self.current.type is not TokenType.EOF:
            self.error("Unexpected trailing input")
        return stmt

    def _statement(self) -> ast.Statement:
        if self.at_keyword("EXPLAIN"):
            self.advance()
            explain_type = "LOGICAL"
            analyze = False
            if self.accept_keyword("ANALYZE"):
                analyze = True
            if self.accept_operator("("):
                # EXPLAIN (TYPE DISTRIBUTED)
                word = self.identifier()
                if word.lower() == "type":
                    explain_type = self.identifier().upper()
                self.expect_operator(")")
            return ast.Explain(self._statement(), explain_type, analyze)
        if self.at_keyword("INSERT"):
            return self._insert()
        if self.at_keyword("CREATE"):
            return self._create_table_as()
        if self.at_keyword("DROP"):
            return self._drop_table()
        if self.at_keyword("SHOW"):
            return self._show()
        return self.parse_query()

    def _insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        target = self.qualified_name()
        columns: tuple[str, ...] = ()
        if self.at_operator("(") and self._looks_like_column_list():
            self.advance()
            cols = [self.identifier()]
            while self.accept_operator(","):
                cols.append(self.identifier())
            self.expect_operator(")")
            columns = tuple(cols)
        query = self.parse_query()
        return ast.Insert(target, query, columns)

    def _looks_like_column_list(self) -> bool:
        # Distinguish "INSERT INTO t (a, b) SELECT..." from
        # "INSERT INTO t (SELECT ...)".
        nxt = self.peek()
        return nxt.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER)

    def _create_table_as(self) -> ast.CreateTableAsSelect:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        name = self.qualified_name()
        properties: list[tuple[str, ast.Expression]] = []
        if self.at_keyword("WITH"):
            self.advance()
            self.expect_operator("(")
            while True:
                key = self.identifier()
                self.expect_operator("=")
                properties.append((key, self.expression()))
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
        self.expect_keyword("AS")
        query = self.parse_query()
        return ast.CreateTableAsSelect(name, query, tuple(properties))

    def _drop_table(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.qualified_name(), if_exists)

    def _show(self) -> ast.Statement:
        self.expect_keyword("SHOW")
        if self.accept_keyword("TABLES"):
            schema = None
            if self.accept_keyword("FROM", "IN"):
                schema = self.qualified_name()
            return ast.ShowTables(schema)
        if self.accept_keyword("COLUMNS"):
            self.expect_keyword("FROM")
            return ast.ShowColumns(self.qualified_name())
        word = self.current
        if word.type is TokenType.IDENTIFIER:
            upper = word.text.upper()
            if upper == "CATALOGS":
                self.advance()
                return ast.ShowCatalogs()
            if upper == "SCHEMAS":
                self.advance()
                catalog = None
                if self.accept_keyword("FROM", "IN"):
                    catalog = self.identifier()
                return ast.ShowSchemas(catalog)
            if upper == "FUNCTIONS":
                self.advance()
                return ast.ShowFunctions()
        self.error("Expected TABLES, COLUMNS, CATALOGS, SCHEMAS, or FUNCTIONS after SHOW")
        raise AssertionError

    # ---- queries ---------------------------------------------------------

    def parse_query(self) -> ast.Query:
        with_ = None
        if self.at_keyword("WITH"):
            with_ = self._with()
        body = self._query_body()
        order_by: tuple[ast.SortItem, ...] = ()
        limit = None
        # ORDER BY / LIMIT at query level apply to the set-op result.
        if self.at_keyword("ORDER"):
            order_by = self._order_by()
        if self.at_keyword("LIMIT"):
            limit = self._limit()
        # If the body is a bare QuerySpecification, fold ORDER BY/LIMIT into it.
        if isinstance(body, ast.QuerySpecification) and (order_by or limit is not None):
            body = ast.QuerySpecification(
                select=body.select,
                from_=body.from_,
                where=body.where,
                group_by=body.group_by,
                having=body.having,
                order_by=order_by or body.order_by,
                limit=limit if limit is not None else body.limit,
            )
            order_by, limit = (), None
        return ast.Query(body=body, with_=with_, order_by=order_by, limit=limit)

    def _with(self) -> ast.With:
        self.expect_keyword("WITH")
        self.accept_keyword("RECURSIVE")  # accepted, treated as plain WITH
        queries = []
        while True:
            name = self.identifier()
            column_names: tuple[str, ...] = ()
            if self.at_operator("("):
                self.advance()
                cols = [self.identifier()]
                while self.accept_operator(","):
                    cols.append(self.identifier())
                self.expect_operator(")")
                column_names = tuple(cols)
            self.expect_keyword("AS")
            self.expect_operator("(")
            query = self.parse_query()
            self.expect_operator(")")
            queries.append(ast.WithQuery(name, query, column_names))
            if not self.accept_operator(","):
                break
        return ast.With(tuple(queries))

    def _query_body(self) -> ast.QueryBody:
        left = self._query_term()
        while self.at_keyword("UNION", "INTERSECT", "EXCEPT"):
            kind = ast.SetOpKind(self.advance().upper)
            distinct = True
            if self.accept_keyword("ALL"):
                distinct = False
            else:
                self.accept_keyword("DISTINCT")
            right = self._query_term()
            left = ast.SetOperation(kind, left, right, distinct)
        return left

    def _query_term(self) -> ast.QueryBody:
        if self.at_keyword("SELECT"):
            return self._query_specification()
        if self.at_keyword("VALUES"):
            return ast.ValuesBody(self._values_rows())
        if self.at_operator("("):
            self.advance()
            query = self.parse_query()
            self.expect_operator(")")
            return ast.TableSubqueryBody(query)
        self.error("Expected SELECT, VALUES, or subquery")
        raise AssertionError

    def _values_rows(self) -> tuple[tuple[ast.Expression, ...], ...]:
        self.expect_keyword("VALUES")
        rows = []
        while True:
            if self.at_operator("("):
                self.advance()
                row = [self.expression()]
                while self.accept_operator(","):
                    row.append(self.expression())
                self.expect_operator(")")
                rows.append(tuple(row))
            else:
                rows.append((self.expression(),))
            if not self.accept_operator(","):
                break
        return tuple(rows)

    def _query_specification(self) -> ast.QuerySpecification:
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        else:
            self.accept_keyword("ALL")
        items = [self._select_item()]
        while self.accept_operator(","):
            items.append(self._select_item())
        select = ast.Select(tuple(items), distinct)

        from_ = None
        if self.accept_keyword("FROM"):
            from_ = self._relation()
            while self.accept_operator(","):
                right = self._relation()
                from_ = ast.Join(ast.JoinType.IMPLICIT, from_, right, None)

        where = self.expression() if self.accept_keyword("WHERE") else None

        group_by = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self._group_by()

        having = self.expression() if self.accept_keyword("HAVING") else None

        # ORDER BY / LIMIT belong to the enclosing query (ANSI): a spec
        # inside a set operation cannot carry them, so parse_query folds
        # them back into a lone specification.
        return ast.QuerySpecification(
            select=select,
            from_=from_,
            where=where,
            group_by=group_by,
            having=having,
        )

    def _group_by(self) -> ast.GroupBy:
        """Plain GROUP BY, or GROUPING SETS / ROLLUP / CUBE."""
        token = self.current
        word = token.text.upper() if token.type is TokenType.IDENTIFIER else ""
        if word in ("GROUPING", "ROLLUP", "CUBE"):
            self.advance()
            if word == "GROUPING":
                if not (
                    self.current.type is TokenType.IDENTIFIER
                    and self.current.text.upper() == "SETS"
                ):
                    self.error("Expected SETS after GROUPING")
                self.advance()
                sets = self._grouping_set_list()
            else:
                columns = self._paren_expression_list()
                if word == "ROLLUP":
                    # (a, b) -> (a,b), (a), ()
                    sets = tuple(
                        tuple(columns[:i]) for i in range(len(columns), -1, -1)
                    )
                else:  # CUBE: all subsets
                    sets = tuple(
                        tuple(c for j, c in enumerate(columns) if mask & (1 << j))
                        for mask in range((1 << len(columns)) - 1, -1, -1)
                    )
            all_exprs: list[ast.Expression] = []
            for subset in sets:
                for expr in subset:
                    if expr not in all_exprs:
                        all_exprs.append(expr)
            return ast.GroupBy(tuple(all_exprs), sets)
        exprs = [self.expression()]
        while self.accept_operator(","):
            exprs.append(self.expression())
        return ast.GroupBy(tuple(exprs))

    def _grouping_set_list(self) -> tuple[tuple[ast.Expression, ...], ...]:
        self.expect_operator("(")
        sets: list[tuple[ast.Expression, ...]] = []
        while True:
            if self.at_operator("("):
                sets.append(tuple(self._paren_expression_list()))
            else:
                sets.append((self.expression(),))
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        return tuple(sets)

    def _paren_expression_list(self) -> list[ast.Expression]:
        self.expect_operator("(")
        if self.accept_operator(")"):
            return []
        exprs = [self.expression()]
        while self.accept_operator(","):
            exprs.append(self.expression())
        self.expect_operator(")")
        return exprs

    def _select_item(self) -> ast.SelectItem:
        if self.at_operator("*"):
            self.advance()
            return ast.AllColumns()
        # "t.*" / "schema.t.*"
        save = self.pos
        if self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            try:
                name = self.qualified_name()
                if self.at_operator(".") and self.peek().text == "*":
                    self.advance()  # .
                    self.advance()  # *
                    return ast.AllColumns(name)
            except SyntaxError_:
                pass
            self.pos = save
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self.identifier()
        return ast.SingleColumn(expr, alias)

    def _order_by(self) -> tuple[ast.SortItem, ...]:
        self.expect_keyword("ORDER")
        self.expect_keyword("BY")
        items = [self._sort_item()]
        while self.accept_operator(","):
            items.append(self._sort_item())
        return tuple(items)

    def _sort_item(self) -> ast.SortItem:
        key = self.expression()
        ascending = True
        if self.accept_keyword("ASC"):
            ascending = True
        elif self.accept_keyword("DESC"):
            ascending = False
        nulls_first = None
        if self.accept_keyword("NULLS"):
            if self.accept_keyword("FIRST"):
                nulls_first = True
            else:
                self.expect_keyword("LAST")
                nulls_first = False
        return ast.SortItem(key, ascending, nulls_first)

    def _limit(self) -> int:
        self.expect_keyword("LIMIT")
        if self.accept_keyword("ALL"):
            return None  # type: ignore[return-value]
        token = self.current
        if token.type is not TokenType.INTEGER:
            self.error("Expected integer after LIMIT")
        self.advance()
        return int(token.text)

    # ---- relations --------------------------------------------------------

    def _relation(self) -> ast.Relation:
        left = self._sampled_relation()
        while True:
            if self.at_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self._sampled_relation()
                left = ast.Join(ast.JoinType.CROSS, left, right, None)
                continue
            join_type = None
            if self.at_keyword("JOIN"):
                join_type = ast.JoinType.INNER
                self.advance()
            elif self.at_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                join_type = ast.JoinType.INNER
            elif self.at_keyword("LEFT", "RIGHT", "FULL"):
                kind = self.advance().upper
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                join_type = ast.JoinType(kind)
            if join_type is None:
                return left
            right = self._sampled_relation()
            criteria: ast.JoinOn | ast.JoinUsing | None = None
            if self.accept_keyword("ON"):
                criteria = ast.JoinOn(self.expression())
            elif self.accept_keyword("USING"):
                self.expect_operator("(")
                cols = [self.identifier()]
                while self.accept_operator(","):
                    cols.append(self.identifier())
                self.expect_operator(")")
                criteria = ast.JoinUsing(tuple(cols))
            left = ast.Join(join_type, left, right, criteria)

    def _sampled_relation(self) -> ast.Relation:
        relation = self._relation_primary()
        if self.accept_keyword("AS"):
            alias = self.identifier()
            columns = self._optional_column_aliases()
            relation = ast.AliasedRelation(relation, alias, columns)
        elif (
            self.current.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER)
            and self.current.text.upper() != "TABLESAMPLE"
        ):
            alias = self.identifier()
            columns = self._optional_column_aliases()
            relation = ast.AliasedRelation(relation, alias, columns)
        if (
            self.current.type is TokenType.IDENTIFIER
            and self.current.text.upper() == "TABLESAMPLE"
        ):
            self.advance()
            method = self.identifier().upper()
            if method not in ("BERNOULLI", "SYSTEM"):
                self.error("Expected BERNOULLI or SYSTEM")
            self.expect_operator("(")
            percentage = self.expression()
            self.expect_operator(")")
            relation = ast.SampledRelation(relation, method, percentage)
        return relation

    def _optional_column_aliases(self) -> tuple[str, ...]:
        if not self.at_operator("("):
            return ()
        self.advance()
        cols = [self.identifier()]
        while self.accept_operator(","):
            cols.append(self.identifier())
        self.expect_operator(")")
        return tuple(cols)

    def _relation_primary(self) -> ast.Relation:
        if self.at_operator("("):
            self.advance()
            # Either a subquery or a parenthesized join.
            if self.at_keyword("SELECT", "WITH", "VALUES") or self.at_operator("("):
                query = self.parse_query()
                self.expect_operator(")")
                return ast.SubqueryRelation(query)
            relation = self._relation()
            self.expect_operator(")")
            return relation
        if self.at_keyword("UNNEST"):
            self.advance()
            self.expect_operator("(")
            exprs = [self.expression()]
            while self.accept_operator(","):
                exprs.append(self.expression())
            self.expect_operator(")")
            with_ordinality = False
            if self.accept_keyword("WITH"):
                self.expect_keyword("ORDINALITY")
                with_ordinality = True
            return ast.Unnest(tuple(exprs), with_ordinality)
        if self.at_keyword("VALUES"):
            return ast.Values(self._values_rows())
        if self.at_keyword("LATERAL"):
            self.advance()
            self.expect_operator("(")
            query = self.parse_query()
            self.expect_operator(")")
            return ast.SubqueryRelation(query)
        return ast.Table(self.qualified_name())

    # ---- expressions -------------------------------------------------------

    def expression(self) -> ast.Expression:
        return self._binary_expression(0)

    def _binary_expression(self, min_precedence: int) -> ast.Expression:
        left = self._unary_expression()
        while True:
            left2 = self._postfix_predicates(left, min_precedence)
            if left2 is not left:
                left = left2
                continue
            token = self.current
            op = None
            if token.type is TokenType.OPERATOR and token.text in _PRECEDENCE:
                op = token.text
            elif token.type is TokenType.KEYWORD and token.upper in ("AND", "OR"):
                op = token.upper
            if op is None:
                return left
            precedence = _PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            self.advance()
            right = self._binary_expression(precedence + 1)
            if op in ("AND", "OR"):
                logical_op = ast.LogicalOp(op)
                terms: list[ast.Expression] = []
                for side in (left, right):
                    if isinstance(side, ast.Logical) and side.op is logical_op:
                        terms.extend(side.terms)
                    else:
                        terms.append(side)
                left = ast.Logical(logical_op, tuple(terms))
            elif op in _COMPARISON_OPS:
                left = ast.Comparison(_COMPARISON_OPS[op], left, right)
            elif op == "||":
                left = ast.FunctionCall(
                    ast.QualifiedName(("concat",)), (left, right)
                )
            else:
                left = ast.ArithmeticBinary(_ARITHMETIC_OPS[op], left, right)

    def _postfix_predicates(
        self, value: ast.Expression, min_precedence: int
    ) -> ast.Expression:
        """Handle IS NULL / BETWEEN / IN / LIKE / NOT variants (precedence 3)."""
        if min_precedence > 3:
            return value
        if self.at_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            if self.accept_keyword("NULL"):
                return ast.IsNotNull(value) if negated else ast.IsNull(value)
            if self.accept_keyword("DISTINCT"):
                self.expect_keyword("FROM")
                right = self._binary_expression(4)
                cmp = ast.Comparison(ast.ComparisonOp.IS_DISTINCT_FROM, value, right)
                return ast.Not(cmp) if negated else cmp
            self.error("Expected NULL or DISTINCT FROM after IS")
        negated = False
        save = self.pos
        if self.at_keyword("NOT") and self.peek().upper in ("IN", "BETWEEN", "LIKE", "EXISTS"):
            self.advance()
            negated = True
        if self.at_keyword("BETWEEN"):
            self.advance()
            low = self._binary_expression(5)
            self.expect_keyword("AND")
            high = self._binary_expression(5)
            result: ast.Expression = ast.Between(value, low, high)
            return ast.Not(result) if negated else result
        if self.at_keyword("IN"):
            self.advance()
            self.expect_operator("(")
            if self.at_keyword("SELECT", "WITH", "VALUES"):
                query = self.parse_query()
                self.expect_operator(")")
                result = ast.InSubquery(value, query)
            else:
                items = [self.expression()]
                while self.accept_operator(","):
                    items.append(self.expression())
                self.expect_operator(")")
                result = ast.InList(value, tuple(items))
            return ast.Not(result) if negated else result
        if self.at_keyword("LIKE"):
            self.advance()
            pattern = self._binary_expression(5)
            escape = None
            if self.accept_keyword("ESCAPE"):
                escape = self._binary_expression(5)
            result = ast.Like(value, pattern, escape)
            return ast.Not(result) if negated else result
        if negated:
            self.pos = save
        return value

    def _unary_expression(self) -> ast.Expression:
        if self.at_keyword("NOT"):
            self.advance()
            return ast.Not(self._binary_expression(3))
        if self.at_operator("-"):
            self.advance()
            operand = self._unary_expression()
            if isinstance(operand, ast.LongLiteral):
                return ast.LongLiteral(-operand.value)
            if isinstance(operand, ast.DoubleLiteral):
                return ast.DoubleLiteral(-operand.value)
            return ast.ArithmeticUnary(-1, operand)
        if self.at_operator("+"):
            self.advance()
            return self._unary_expression()
        if self.at_keyword("EXISTS"):
            self.advance()
            self.expect_operator("(")
            query = self.parse_query()
            self.expect_operator(")")
            return ast.Exists(query)
        return self._postfix_expression()

    def _postfix_expression(self) -> ast.Expression:
        expr = self._primary_expression()
        while True:
            if self.at_operator("["):
                self.advance()
                index = self.expression()
                self.expect_operator("]")
                expr = ast.Subscript(expr, index)
                continue
            if self.at_operator(".") and self.peek().type in (
                TokenType.IDENTIFIER,
                TokenType.QUOTED_IDENTIFIER,
            ):
                self.advance()
                expr = ast.Dereference(expr, self.identifier())
                continue
            return expr

    def _primary_expression(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.INTEGER:
            self.advance()
            return ast.LongLiteral(int(token.text))
        if token.type is TokenType.DECIMAL:
            self.advance()
            return ast.DoubleLiteral(float(token.text))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.StringLiteral(token.text)
        if self.at_operator("?"):
            self.advance()
            return ast.Parameter(0)
        if self.at_keyword("TRUE"):
            self.advance()
            return ast.BooleanLiteral(True)
        if self.at_keyword("FALSE"):
            self.advance()
            return ast.BooleanLiteral(False)
        if self.at_keyword("NULL"):
            self.advance()
            return ast.NullLiteral()
        if self.at_keyword("INTERVAL"):
            return self._interval()
        if self.at_keyword("CAST", "TRY_CAST"):
            safe = token.upper == "TRY_CAST"
            self.advance()
            self.expect_operator("(")
            value = self.expression()
            self.expect_keyword("AS")
            target = self._type_name()
            self.expect_operator(")")
            return ast.Cast(value, target, safe)
        if self.at_keyword("EXTRACT"):
            self.advance()
            self.expect_operator("(")
            field = self.advance().text.lower()
            self.expect_keyword("FROM")
            value = self.expression()
            self.expect_operator(")")
            return ast.Extract(field, value)
        if self.at_keyword("CASE"):
            return self._case()
        if self.at_keyword("ROW"):
            self.advance()
            self.expect_operator("(")
            items = [self.expression()]
            while self.accept_operator(","):
                items.append(self.expression())
            self.expect_operator(")")
            return ast.RowConstructor(tuple(items))
        if token.type is TokenType.IDENTIFIER and token.text.upper() == "ARRAY" and self.peek().text == "[":
            self.advance()
            self.advance()  # [
            items = []
            if not self.at_operator("]"):
                items.append(self.expression())
                while self.accept_operator(","):
                    items.append(self.expression())
            self.expect_operator("]")
            return ast.ArrayConstructor(tuple(items))
        if self.at_operator("("):
            return self._paren_or_lambda()
        # Typed literals: DATE '1995-03-15', TIMESTAMP '...'.
        if (
            token.type is TokenType.IDENTIFIER
            and token.text.lower() in ("date", "timestamp")
            and self.peek().type is TokenType.STRING
        ):
            type_name = token.text.lower()
            self.advance()
            literal = self.advance()
            return ast.Cast(ast.StringLiteral(literal.text), type_name)
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER) or (
            token.type is TokenType.KEYWORD and token.upper in _NONRESERVED
        ):
            # Lambda with single parameter: x -> expr
            if (
                token.type is TokenType.IDENTIFIER
                and self.peek().text == "->"
            ):
                name = self.identifier()
                self.expect_operator("->")
                body = self.expression()
                return ast.Lambda((name,), body)
            name = self.qualified_name()
            if self.at_operator("("):
                return self._function_call(name)
            if len(name.parts) == 1:
                return ast.Identifier(name.parts[0], quoted=token.type is TokenType.QUOTED_IDENTIFIER)
            # Multi-part name: fold into nested dereference.
            expr: ast.Expression = ast.Identifier(name.parts[0])
            for part in name.parts[1:]:
                expr = ast.Dereference(expr, part)
            return expr
        self.error("Expected expression")
        raise AssertionError

    def _paren_or_lambda(self) -> ast.Expression:
        # "(a, b) -> expr" | "(SELECT ...)" | "(expr)" | "(expr, expr)" row
        self.expect_operator("(")
        if self.at_keyword("SELECT", "WITH") or (
            self.at_keyword("VALUES")
        ):
            query = self.parse_query()
            self.expect_operator(")")
            return ast.ScalarSubquery(query)
        # Try multi-parameter lambda: (x, y) -> ...
        save = self.pos
        params = []
        is_lambda = False
        while self.current.type is TokenType.IDENTIFIER:
            params.append(self.current.text.lower())
            self.advance()
            if self.accept_operator(","):
                continue
            if self.at_operator(")") and self.peek().text == "->":
                is_lambda = True
            break
        if is_lambda:
            self.expect_operator(")")
            self.expect_operator("->")
            body = self.expression()
            return ast.Lambda(tuple(params), body)
        self.pos = save
        expr = self.expression()
        if self.accept_operator(","):
            items = [expr, self.expression()]
            while self.accept_operator(","):
                items.append(self.expression())
            self.expect_operator(")")
            return ast.RowConstructor(tuple(items))
        self.expect_operator(")")
        return expr

    def _interval(self) -> ast.IntervalLiteral:
        self.expect_keyword("INTERVAL")
        sign = 1
        if self.accept_operator("-"):
            sign = -1
        else:
            self.accept_operator("+")
        token = self.current
        if token.type is not TokenType.STRING:
            self.error("Expected string literal in INTERVAL")
        self.advance()
        unit = self.advance().text.lower()
        return ast.IntervalLiteral(token.text, unit, sign)

    def _case(self) -> ast.Expression:
        self.expect_keyword("CASE")
        operand = None
        if not self.at_keyword("WHEN"):
            operand = self.expression()
        whens = []
        while self.accept_keyword("WHEN"):
            condition = self.expression()
            self.expect_keyword("THEN")
            result = self.expression()
            whens.append(ast.WhenClause(condition, result))
        default = None
        if self.accept_keyword("ELSE"):
            default = self.expression()
        self.expect_keyword("END")
        if operand is not None:
            return ast.SimpleCase(operand, tuple(whens), default)
        return ast.SearchedCase(tuple(whens), default)

    def _function_call(self, name: ast.QualifiedName) -> ast.Expression:
        self.expect_operator("(")
        distinct = False
        arguments: list[ast.Expression] = []
        if self.at_operator("*"):
            self.advance()
            self.expect_operator(")")
            # COUNT(*) becomes a zero-argument call.
        else:
            if not self.at_operator(")"):
                if self.accept_keyword("DISTINCT"):
                    distinct = True
                else:
                    self.accept_keyword("ALL")
                arguments.append(self.expression())
                while self.accept_operator(","):
                    arguments.append(self.expression())
            self.expect_operator(")")
        filter_ = None
        if self.at_keyword("FILTER"):
            self.advance()
            self.expect_operator("(")
            self.expect_keyword("WHERE")
            filter_ = self.expression()
            self.expect_operator(")")
        window = None
        if self.at_keyword("OVER"):
            window = self._window_spec()
        return ast.FunctionCall(name, tuple(arguments), distinct, window, filter_)

    def _window_spec(self) -> ast.WindowSpec:
        self.expect_keyword("OVER")
        self.expect_operator("(")
        partition_by: tuple[ast.Expression, ...] = ()
        order_by: tuple[ast.SortItem, ...] = ()
        frame = None
        if self.accept_keyword("PARTITION"):
            self.expect_keyword("BY")
            exprs = [self.expression()]
            while self.accept_operator(","):
                exprs.append(self.expression())
            partition_by = tuple(exprs)
        if self.at_keyword("ORDER"):
            order_by = self._order_by()
        if self.at_keyword("ROWS", "RANGE"):
            frame = self._window_frame()
        self.expect_operator(")")
        return ast.WindowSpec(partition_by, order_by, frame)

    def _window_frame(self) -> ast.WindowFrame:
        frame_type = self.advance().upper
        if self.accept_keyword("BETWEEN"):
            start = self._frame_bound()
            self.expect_keyword("AND")
            end = self._frame_bound()
        else:
            start = self._frame_bound()
            end = ast.FrameBound(ast.FrameBoundKind.CURRENT_ROW)
        return ast.WindowFrame(frame_type, start, end)

    def _frame_bound(self) -> ast.FrameBound:
        if self.accept_keyword("UNBOUNDED"):
            if self.accept_keyword("PRECEDING"):
                return ast.FrameBound(ast.FrameBoundKind.UNBOUNDED_PRECEDING)
            self.expect_keyword("FOLLOWING")
            return ast.FrameBound(ast.FrameBoundKind.UNBOUNDED_FOLLOWING)
        if self.accept_keyword("CURRENT"):
            self.expect_keyword("ROW")
            return ast.FrameBound(ast.FrameBoundKind.CURRENT_ROW)
        value = self.expression()
        if self.accept_keyword("PRECEDING"):
            return ast.FrameBound(ast.FrameBoundKind.PRECEDING, value)
        self.expect_keyword("FOLLOWING")
        return ast.FrameBound(ast.FrameBoundKind.FOLLOWING, value)

    def _type_name(self) -> str:
        """Consume a type expression and return it as text."""
        parts = [self.advance().text]
        if self.at_operator("("):
            depth = 0
            while True:
                token = self.advance()
                parts.append(token.text)
                if token.text == "(":
                    depth += 1
                elif token.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif token.type is TokenType.EOF:
                    self.error("Unterminated type")
        return (
            " ".join(parts)
            .replace(" (", "(")
            .replace("( ", "(")
            .replace(" )", ")")
            .replace(" ,", ",")
        )


# Keywords allowed to double as identifiers (column names like "year").
_NONRESERVED = frozenset(
    """
    DAY HOUR MINUTE SECOND MONTH YEAR FIRST LAST TABLES COLUMNS SHOW ROW
    ROWS RANGE FILTER ORDINALITY IF ANALYZE DESCRIBE
    """.split()
)


def parse_statement(sql: str) -> ast.Statement:
    """Parse a full SQL statement."""
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone scalar expression (used by tests and tools)."""
    parser = _Parser(sql)
    expr = parser.expression()
    if parser.current.type is not TokenType.EOF:
        parser.error("Unexpected trailing input")
    return expr
