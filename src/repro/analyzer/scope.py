"""Name-resolution scopes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AmbiguousNameError, ColumnNotFoundError
from repro.planner.symbols import Symbol
from repro.types import Type


@dataclass(frozen=True)
class Field:
    """One visible column: an optional name, the relation alias that
    qualifies it, its type, and the plan symbol carrying its data."""

    name: Optional[str]
    type: Type
    symbol: Symbol
    qualifier: Optional[str] = None


class Scope:
    """An ordered list of visible fields, with optional parent scope.

    When ``captures`` is a list, references that resolve in the parent
    scope are *captured* (recorded and returned) — this is how the
    planner collects a correlated subquery's outer references for
    decorrelation (paper Sec. IV-C lists decorrelation among the
    optimizer's transformations). Without a capture list, a parent-only
    resolution is reported as an unsupported correlation.
    """

    def __init__(
        self,
        fields: list[Field],
        parent: Optional["Scope"] = None,
        captures: Optional[list[Field]] = None,
    ):
        self.fields = fields
        self.parent = parent
        self.captures = captures

    def resolve(self, name: str, qualifier: str | None = None) -> Field:
        matches = [
            f
            for f in self.fields
            if f.name is not None
            and f.name.lower() == name.lower()
            and (qualifier is None or (f.qualifier or "").lower() == qualifier.lower())
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            shown = f"{qualifier}.{name}" if qualifier else name
            raise AmbiguousNameError(f"Column '{shown}' is ambiguous")
        if self.parent is not None:
            try:
                outer = self.parent.resolve(name, qualifier)
            except (ColumnNotFoundError, AmbiguousNameError):
                pass
            else:
                if self.captures is not None:
                    if outer not in self.captures:
                        self.captures.append(outer)
                    return outer
                from repro.errors import NotSupportedError

                raise NotSupportedError(
                    f"Correlated reference to '{name}' is not supported"
                )
        shown = f"{qualifier}.{name}" if qualifier else name
        raise ColumnNotFoundError(f"Column '{shown}' cannot be resolved")

    def has_field(self, name: str, qualifier: str | None = None) -> bool:
        try:
            self.resolve(name, qualifier)
            return True
        except (ColumnNotFoundError, AmbiguousNameError):
            return False
        except Exception:
            return True

    def fields_for_qualifier(self, qualifier: str) -> list[Field]:
        return [
            f for f in self.fields if (f.qualifier or "").lower() == qualifier.lower()
        ]

    @staticmethod
    def empty() -> "Scope":
        return Scope([])
