"""Expression analysis: AST -> typed row expressions.

Resolves identifiers against a :class:`Scope`, determines types and
inserts coercions, resolves function overloads (including higher-order
functions whose lambda arguments are typed from the other arguments),
and hands subqueries to a pluggable subquery planner.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import (
    NotSupportedError,
    SemanticError,
    TypeError_,
)
from repro.functions import FUNCTIONS, FunctionRegistry
from repro.functions.signature import numeric_result, substitute
from repro.planner import expressions as ir
from repro.analyzer.scope import Scope
from repro.sql import ast
from repro.types import (
    ARRAY,
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    UNKNOWN,
    VARCHAR,
    ArrayType,
    FunctionType,
    MapType,
    RowType,
    Type,
    can_coerce,
    common_super_type,
    parse_type,
)

_MS = {"second": 1000, "minute": 60_000, "hour": 3_600_000, "day": 86_400_000}


class ExpressionAnalyzer:
    """Translates one expression tree in the context of a scope.

    ``translations`` maps AST sub-expressions that were already computed
    by a downstream plan node (grouping keys, aggregates, window calls)
    to the symbols carrying their values — the mechanism that lets
    ``HAVING sum(x) > 1`` reference the aggregation's output.
    """

    def __init__(
        self,
        scope: Scope,
        registry: FunctionRegistry = FUNCTIONS,
        translations: Optional[dict[ast.Expression, ir.Variable]] = None,
        subquery_planner: Optional["SubqueryPlanner"] = None,
        lambda_bindings: Optional[dict[str, Type]] = None,
    ):
        self.scope = scope
        self.registry = registry
        self.translations = translations or {}
        self.subquery_planner = subquery_planner
        self.lambda_bindings = lambda_bindings or {}

    def _child(self, extra_lambda: dict[str, Type]) -> "ExpressionAnalyzer":
        merged = dict(self.lambda_bindings)
        merged.update(extra_lambda)
        return ExpressionAnalyzer(
            self.scope, self.registry, self.translations, self.subquery_planner, merged
        )

    # -- entry point ------------------------------------------------------

    def analyze(self, node: ast.Expression) -> ir.RowExpression:
        translated = self.translations.get(node)
        if translated is not None:
            return translated
        method = getattr(self, "_analyze_" + type(node).__name__, None)
        if method is None:
            raise NotSupportedError(f"Unsupported expression: {type(node).__name__}")
        return method(node)

    def coerce(self, expr: ir.RowExpression, target: Type) -> ir.RowExpression:
        if expr.type == target:
            return expr
        if not can_coerce(expr.type, target):
            raise TypeError_(f"Cannot coerce {expr.type} to {target}")
        if isinstance(expr, ir.Constant):
            return ir.Constant(target, _coerce_constant(expr.value, target))
        return ir.SpecialForm(target, ir.CAST, (expr,), target)

    def analyze_as(self, node: ast.Expression, target: Type) -> ir.RowExpression:
        return self.coerce(self.analyze(node), target)

    # -- literals ------------------------------------------------------------

    def _analyze_NullLiteral(self, node: ast.NullLiteral) -> ir.Constant:
        return ir.Constant(UNKNOWN, None)

    def _analyze_BooleanLiteral(self, node: ast.BooleanLiteral) -> ir.Constant:
        return ir.Constant(BOOLEAN, node.value)

    def _analyze_LongLiteral(self, node: ast.LongLiteral) -> ir.Constant:
        return ir.Constant(BIGINT, node.value)

    def _analyze_DoubleLiteral(self, node: ast.DoubleLiteral) -> ir.Constant:
        return ir.Constant(DOUBLE, node.value)

    def _analyze_StringLiteral(self, node: ast.StringLiteral) -> ir.Constant:
        return ir.Constant(VARCHAR, node.value)

    def _analyze_IntervalLiteral(self, node: ast.IntervalLiteral) -> ir.Constant:
        # Day-time intervals become bigint milliseconds; year-month become
        # bigint months. Arithmetic with dates/timestamps handles both.
        amount = int(node.value) * node.sign
        if node.unit in _MS:
            return ir.Constant(BIGINT, amount * _MS[node.unit])
        if node.unit == "month":
            return ir.Constant(BIGINT, amount)
        if node.unit == "year":
            return ir.Constant(BIGINT, amount * 12)
        raise SemanticError(f"Unknown interval unit: {node.unit}")

    # -- names -----------------------------------------------------------------

    def _analyze_Identifier(self, node: ast.Identifier) -> ir.RowExpression:
        if node.name in self.lambda_bindings:
            return ir.Variable(self.lambda_bindings[node.name], node.name)
        field = self.scope.resolve(node.name)
        return ir.Variable(field.type, field.symbol.name)

    def _analyze_Dereference(self, node: ast.Dereference) -> ir.RowExpression:
        # Try "qualifier.column" first, then row-field access.
        if isinstance(node.base, ast.Identifier):
            qualifier = node.base.name
            if self.scope.has_field(node.field_name, qualifier):
                field = self.scope.resolve(node.field_name, qualifier)
                return ir.Variable(field.type, field.symbol.name)
        base = self.analyze(node.base)
        if isinstance(base.type, RowType):
            for index, (fname, ftype) in enumerate(base.type.fields):
                if fname is not None and fname.lower() == node.field_name.lower():
                    return ir.SpecialForm(ftype, ir.DEREFERENCE, (base,), index)
            raise SemanticError(f"Row has no field '{node.field_name}'")
        raise SemanticError(f"Cannot dereference '{node.field_name}' from {base.type}")

    def _analyze_SymbolReference(self, node: ast.SymbolReference) -> ir.RowExpression:
        for field in self.scope.fields:
            if field.symbol.name == node.name:
                return ir.Variable(field.type, node.name)
        raise SemanticError(f"Unknown symbol: {node.name}")

    # -- operators ----------------------------------------------------------------

    def _analyze_ArithmeticBinary(self, node: ast.ArithmeticBinary) -> ir.RowExpression:
        left = self.analyze(node.left)
        right = self.analyze(node.right)
        # date - date yields the difference in days (ms for timestamps).
        if (
            node.op is ast.ArithmeticOp.SUBTRACT
            and left.type == right.type
            and left.type in (DATE, TIMESTAMP)
        ):
            return ir.SpecialForm(BIGINT, ir.ARITHMETIC, (left, right), "-")
        # Date/timestamp +/- interval (bigint ms / days).
        for date_like in (DATE, TIMESTAMP):
            if left.type == date_like and right.type.is_integral:
                return ir.SpecialForm(date_like, ir.ARITHMETIC, (left, right), node.op.value)
            if right.type == date_like and left.type.is_integral and node.op is ast.ArithmeticOp.ADD:
                return ir.SpecialForm(date_like, ir.ARITHMETIC, (right, left), node.op.value)
        if not left.type.is_numeric and left.type != UNKNOWN:
            raise TypeError_(f"Cannot apply {node.op.value} to {left.type}")
        if not right.type.is_numeric and right.type != UNKNOWN:
            raise TypeError_(f"Cannot apply {node.op.value} to {right.type}")
        left_type = left.type if left.type != UNKNOWN else BIGINT
        right_type = right.type if right.type != UNKNOWN else BIGINT
        result = numeric_result(left_type, right_type)
        common = result
        return ir.SpecialForm(
            result,
            ir.ARITHMETIC,
            (self.coerce(left, common), self.coerce(right, common)),
            node.op.value,
        )

    def _analyze_ArithmeticUnary(self, node: ast.ArithmeticUnary) -> ir.RowExpression:
        value = self.analyze(node.value)
        if node.sign >= 0:
            return value
        return ir.SpecialForm(value.type, ir.NEGATE, (value,))

    def _analyze_Comparison(self, node: ast.Comparison) -> ir.RowExpression:
        left = self.analyze(node.left)
        right = self.analyze(node.right)
        common = common_super_type(left.type, right.type)
        if common is None:
            raise TypeError_(
                f"Cannot compare {left.type} with {right.type}"
            )
        form = (
            ir.IS_DISTINCT_FROM
            if node.op is ast.ComparisonOp.IS_DISTINCT_FROM
            else ir.COMPARISON
        )
        return ir.SpecialForm(
            BOOLEAN,
            form,
            (self.coerce(left, common), self.coerce(right, common)),
            node.op.value,
        )

    def _analyze_Logical(self, node: ast.Logical) -> ir.RowExpression:
        terms = tuple(self.analyze_as(t, BOOLEAN) for t in node.terms)
        form = ir.AND if node.op is ast.LogicalOp.AND else ir.OR
        return ir.SpecialForm(BOOLEAN, form, terms)

    def _analyze_Not(self, node: ast.Not) -> ir.RowExpression:
        return ir.SpecialForm(BOOLEAN, ir.NOT, (self.analyze_as(node.value, BOOLEAN),))

    def _analyze_IsNull(self, node: ast.IsNull) -> ir.RowExpression:
        return ir.SpecialForm(BOOLEAN, ir.IS_NULL, (self.analyze(node.value),))

    def _analyze_IsNotNull(self, node: ast.IsNotNull) -> ir.RowExpression:
        inner = ir.SpecialForm(BOOLEAN, ir.IS_NULL, (self.analyze(node.value),))
        return ir.SpecialForm(BOOLEAN, ir.NOT, (inner,))

    def _analyze_Between(self, node: ast.Between) -> ir.RowExpression:
        value = self.analyze(node.value)
        low = self.analyze(node.low)
        high = self.analyze(node.high)
        common = common_super_type(value.type, common_super_type(low.type, high.type) or UNKNOWN)
        if common is None:
            raise TypeError_("BETWEEN operands are not comparable")
        return ir.SpecialForm(
            BOOLEAN,
            ir.BETWEEN,
            (
                self.coerce(value, common),
                self.coerce(low, common),
                self.coerce(high, common),
            ),
        )

    def _analyze_InList(self, node: ast.InList) -> ir.RowExpression:
        value = self.analyze(node.value)
        items = [self.analyze(i) for i in node.items]
        common = value.type
        for item in items:
            merged = common_super_type(common, item.type)
            if merged is None:
                raise TypeError_(f"IN list item type {item.type} not comparable to {common}")
            common = merged
        return ir.SpecialForm(
            BOOLEAN,
            ir.IN,
            tuple([self.coerce(value, common)] + [self.coerce(i, common) for i in items]),
        )

    def _analyze_Like(self, node: ast.Like) -> ir.RowExpression:
        value = self.analyze_as(node.value, VARCHAR)
        pattern = self.analyze_as(node.pattern, VARCHAR)
        args = [value, pattern]
        if node.escape is not None:
            args.append(self.analyze_as(node.escape, VARCHAR))
        return ir.SpecialForm(BOOLEAN, ir.LIKE, tuple(args))

    def _analyze_Cast(self, node: ast.Cast) -> ir.RowExpression:
        value = self.analyze(node.value)
        target = parse_type(node.target_type)
        form = ir.TRY_CAST if node.safe else ir.CAST
        return ir.SpecialForm(target, form, (value,), target)

    def _analyze_Extract(self, node: ast.Extract) -> ir.RowExpression:
        value = self.analyze(node.value)
        function, bindings = self.registry.resolve_scalar(node.field_name, [value.type])
        return ir.Call(BIGINT, node.field_name, function, (value,))

    # -- conditionals ---------------------------------------------------------------

    def _analyze_SearchedCase(self, node: ast.SearchedCase) -> ir.RowExpression:
        conditions = [self.analyze_as(w.condition, BOOLEAN) for w in node.whens]
        results = [self.analyze(w.result) for w in node.whens]
        default = self.analyze(node.default) if node.default is not None else ir.Constant(UNKNOWN, None)
        result_type = default.type
        for r in results:
            merged = common_super_type(result_type, r.type)
            if merged is None:
                raise TypeError_("CASE branches have incompatible types")
            result_type = merged
        args: list[ir.RowExpression] = []
        for cond, res in zip(conditions, results):
            args.append(cond)
            args.append(self.coerce(res, result_type))
        args.append(self.coerce(default, result_type))
        return ir.SpecialForm(result_type, ir.SEARCHED_CASE, tuple(args))

    def _analyze_SimpleCase(self, node: ast.SimpleCase) -> ir.RowExpression:
        # Rewrite CASE x WHEN v THEN r  ==>  CASE WHEN x = v THEN r.
        operand = node.operand
        whens = tuple(
            ast.WhenClause(
                ast.Comparison(ast.ComparisonOp.EQ, operand, w.condition), w.result
            )
            for w in node.whens
        )
        return self._analyze_SearchedCase(ast.SearchedCase(whens, node.default))

    # -- functions --------------------------------------------------------------------

    def _analyze_FunctionCall(self, node: ast.FunctionCall) -> ir.RowExpression:
        name = node.name.suffix.lower()
        if node.window is not None:
            raise SemanticError(
                f"Window function {name} must be planned by the query planner"
            )
        # Special forms that look like functions.
        if name == "if":
            return self._analyze_if(node)
        if name == "coalesce":
            return self._analyze_coalesce(node)
        if name == "nullif":
            return self._analyze_nullif(node)
        if name == "try":
            inner = self.analyze(node.arguments[0])
            return ir.SpecialForm(inner.type, ir.TRY_CAST, (inner,), inner.type)
        if self.registry.is_aggregate(name) and not self.registry.is_scalar(name):
            raise SemanticError(f"Aggregate function {name} used outside of aggregation context")
        # Separate lambda arguments: type them after binding other args.
        arg_types: list[Type] = []
        analyzed: list[ir.RowExpression | None] = []
        for arg in node.arguments:
            if isinstance(arg, ast.Lambda):
                analyzed.append(None)
                arg_types.append(UNKNOWN)
            else:
                expr = self.analyze(arg)
                analyzed.append(expr)
                arg_types.append(expr.type)
        function, bindings = self.registry.resolve_scalar(name, arg_types)
        final_args: list[ir.RowExpression] = []
        for i, arg in enumerate(node.arguments):
            declared = substitute(function.signature.expected_type(i), bindings)
            if isinstance(arg, ast.Lambda):
                if not isinstance(declared, FunctionType):
                    raise TypeError_(f"Argument {i + 1} of {name} is not a lambda")
                lambda_expr = self._analyze_lambda(arg, declared.argument_types)
                # Bind the lambda's return type variable (e.g. U).
                from repro.functions.signature import unify

                unify(
                    function.signature.expected_type(i),
                    FunctionType(
                        "function",
                        lambda_expr.type.argument_types,
                        lambda_expr.type.return_type,
                    ),
                    bindings,
                )
                final_args.append(lambda_expr)
            else:
                expr = analyzed[i]
                assert expr is not None
                resolved = substitute(function.signature.expected_type(i), bindings)
                if resolved != UNKNOWN and not isinstance(resolved, FunctionType):
                    expr = self.coerce(expr, resolved)
                final_args.append(expr)
        return_type = substitute(function.signature.return_type, bindings)
        return ir.Call(return_type, name, function, tuple(final_args))

    def _analyze_lambda(
        self, node: ast.Lambda, parameter_types: tuple[Type, ...]
    ) -> ir.LambdaExpression:
        if len(node.parameters) != len(parameter_types):
            raise TypeError_(
                f"Lambda expects {len(parameter_types)} parameters, got {len(node.parameters)}"
            )
        child = self._child(dict(zip(node.parameters, parameter_types)))
        body = child.analyze(node.body)
        ftype = FunctionType("function", tuple(parameter_types), body.type)
        return ir.LambdaExpression(ftype, node.parameters, body)

    def _analyze_Lambda(self, node: ast.Lambda) -> ir.RowExpression:
        raise SemanticError("Lambda expression used outside of a higher-order function")

    def _analyze_if(self, node: ast.FunctionCall) -> ir.RowExpression:
        if len(node.arguments) not in (2, 3):
            raise SemanticError("IF requires 2 or 3 arguments")
        condition = self.analyze_as(node.arguments[0], BOOLEAN)
        then = self.analyze(node.arguments[1])
        otherwise = (
            self.analyze(node.arguments[2])
            if len(node.arguments) == 3
            else ir.Constant(UNKNOWN, None)
        )
        result_type = common_super_type(then.type, otherwise.type)
        if result_type is None:
            raise TypeError_("IF branches have incompatible types")
        return ir.SpecialForm(
            result_type,
            ir.IF,
            (condition, self.coerce(then, result_type), self.coerce(otherwise, result_type)),
        )

    def _analyze_coalesce(self, node: ast.FunctionCall) -> ir.RowExpression:
        if not node.arguments:
            raise SemanticError("COALESCE requires at least one argument")
        args = [self.analyze(a) for a in node.arguments]
        result_type = UNKNOWN
        for arg in args:
            merged = common_super_type(result_type, arg.type)
            if merged is None:
                raise TypeError_("COALESCE arguments have incompatible types")
            result_type = merged
        return ir.SpecialForm(
            result_type, ir.COALESCE, tuple(self.coerce(a, result_type) for a in args)
        )

    def _analyze_nullif(self, node: ast.FunctionCall) -> ir.RowExpression:
        if len(node.arguments) != 2:
            raise SemanticError("NULLIF requires exactly two arguments")
        first = self.analyze(node.arguments[0])
        second = self.analyze(node.arguments[1])
        common = common_super_type(first.type, second.type)
        if common is None:
            raise TypeError_("NULLIF arguments are not comparable")
        return ir.SpecialForm(first.type, ir.NULLIF, (first, self.coerce(second, common)))

    # -- collections ---------------------------------------------------------------------

    def _analyze_Subscript(self, node: ast.Subscript) -> ir.RowExpression:
        base = self.analyze(node.base)
        index = self.analyze(node.index)
        if isinstance(base.type, ArrayType):
            return ir.SpecialForm(
                base.type.element, ir.SUBSCRIPT, (base, self.coerce(index, BIGINT))
            )
        if isinstance(base.type, MapType):
            return ir.SpecialForm(
                base.type.value,
                ir.SUBSCRIPT,
                (base, self.coerce(index, base.type.key)),
            )
        if isinstance(base.type, RowType):
            if not isinstance(index, ir.Constant) or not isinstance(index.value, int):
                raise SemanticError("Row subscript must be a constant integer")
            position = index.value - 1
            if not 0 <= position < len(base.type.fields):
                raise SemanticError(f"Row subscript out of range: {index.value}")
            return ir.SpecialForm(
                base.type.fields[position][1], ir.DEREFERENCE, (base,), position
            )
        raise TypeError_(f"Cannot subscript {base.type}")

    def _analyze_ArrayConstructor(self, node: ast.ArrayConstructor) -> ir.RowExpression:
        items = [self.analyze(i) for i in node.items]
        element = UNKNOWN
        for item in items:
            merged = common_super_type(element, item.type)
            if merged is None:
                raise TypeError_("ARRAY elements have incompatible types")
            element = merged
        if element == UNKNOWN:
            element = VARCHAR
        return ir.SpecialForm(
            ARRAY(element),
            ir.ARRAY_CONSTRUCTOR,
            tuple(self.coerce(i, element) for i in items),
        )

    def _analyze_RowConstructor(self, node: ast.RowConstructor) -> ir.RowExpression:
        items = [self.analyze(i) for i in node.items]
        from repro.types import ROW

        row_type = ROW(*[(None, i.type) for i in items])
        return ir.SpecialForm(row_type, ir.ROW_CONSTRUCTOR, tuple(items))

    # -- subqueries -----------------------------------------------------------------------

    def _analyze_ScalarSubquery(self, node: ast.ScalarSubquery) -> ir.RowExpression:
        if self.subquery_planner is None:
            raise NotSupportedError("Subqueries are not allowed in this context")
        return self.subquery_planner.plan_scalar_subquery(node, self.scope)

    def _analyze_InSubquery(self, node: ast.InSubquery) -> ir.RowExpression:
        if self.subquery_planner is None:
            raise NotSupportedError("Subqueries are not allowed in this context")
        value = self.analyze(node.value)
        return self.subquery_planner.plan_in_subquery(value, node, self.scope)

    def _analyze_Exists(self, node: ast.Exists) -> ir.RowExpression:
        if self.subquery_planner is None:
            raise NotSupportedError("Subqueries are not allowed in this context")
        return self.subquery_planner.plan_exists(node, self.scope)


class SubqueryPlanner:
    """Interface the query planner provides for subquery expressions."""

    def plan_scalar_subquery(self, node: ast.ScalarSubquery, scope: Scope) -> ir.RowExpression:
        raise NotImplementedError

    def plan_in_subquery(
        self, value: ir.RowExpression, node: ast.InSubquery, scope: Scope
    ) -> ir.RowExpression:
        raise NotImplementedError

    def plan_exists(self, node: ast.Exists, scope: Scope) -> ir.RowExpression:
        raise NotImplementedError


def _coerce_constant(value, target: Type):
    if value is None:
        return None
    from repro.exec.interpreter import cast_value

    return cast_value(value, target)
