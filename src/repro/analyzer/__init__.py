"""Semantic analysis (paper Sec. IV-B2).

The analyzer resolves names against scopes, determines types and
coercions, resolves functions, and classifies aggregations and window
functions. It lowers AST expressions into the typed row-expression IR
consumed by the planner and compiler.
"""

from repro.analyzer.scope import Field, Scope
from repro.analyzer.expression import ExpressionAnalyzer

__all__ = ["Field", "Scope", "ExpressionAnalyzer"]
