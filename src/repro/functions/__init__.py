"""Function registry: scalar, aggregate, and window functions.

Presto resolves functions during analysis (paper Sec. IV-B2); the
registry here supports overloads, generic type variables (needed for
the higher-order functions of Sec. IV-A such as ``transform`` and
``reduce``), aggregate accumulators with partial/final split (so
AggregatePartial / AggregateFinal stages can run on different nodes,
Fig. 3), and ranking/value window functions.
"""

from repro.functions.registry import (
    FUNCTIONS,
    AggregateFunction,
    FunctionRegistry,
    ScalarFunction,
    WindowFunction,
)
from repro.functions.signature import Signature, TypeVariable

__all__ = [
    "FunctionRegistry",
    "FUNCTIONS",
    "ScalarFunction",
    "AggregateFunction",
    "WindowFunction",
    "Signature",
    "TypeVariable",
]
