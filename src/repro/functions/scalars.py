"""Built-in scalar functions.

Includes the higher-order functions the paper highlights as usability
extensions (Sec. IV-A): ``transform``, ``filter``, ``reduce``, plus the
math/string/date/array/map library the TPC-DS-style workloads need.
"""

from __future__ import annotations

import math
import re

import numpy as np

from repro.errors import (
    DivisionByZeroError,
    InvalidFunctionArgumentError,
)
from repro.functions.registry import FunctionRegistry, ScalarFunction
from repro.functions.signature import K, Signature, T, U, V
from repro.types import (
    ARRAY,
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    MAP,
    TIMESTAMP,
    VARCHAR,
    FunctionType,
    Type,
)

_MS_PER_DAY = 86_400_000
_MS_PER_HOUR = 3_600_000
_MS_PER_MINUTE = 60_000


def _sig(name: str, args: list[Type], ret: Type, variadic: bool = False) -> Signature:
    return Signature(name, tuple(args), ret, variadic)


def register(registry: FunctionRegistry) -> None:  # noqa: C901 (a catalog is long)
    def scalar(
        name: str,
        args: list[Type],
        ret: Type,
        impl,
        null_on_null: bool = True,
        numpy_impl=None,
        variadic: bool = False,
        deterministic: bool = True,
        cost_weight: float = 1.0,
    ) -> None:
        registry.add_scalar(
            ScalarFunction(
                _sig(name, args, ret, variadic),
                impl,
                null_on_null,
                deterministic,
                numpy_impl,
                cost_weight,
            )
        )

    # ---- math ----------------------------------------------------------------
    scalar("abs", [BIGINT], BIGINT, abs, numpy_impl=np.abs)
    scalar("abs", [DOUBLE], DOUBLE, abs, numpy_impl=np.abs)
    scalar("ceil", [DOUBLE], BIGINT, lambda x: int(math.ceil(x)))
    scalar("ceiling", [DOUBLE], BIGINT, lambda x: int(math.ceil(x)))
    scalar("ceil", [BIGINT], BIGINT, lambda x: x)
    scalar("floor", [DOUBLE], BIGINT, lambda x: int(math.floor(x)))
    scalar("floor", [BIGINT], BIGINT, lambda x: x)
    scalar("round", [DOUBLE], BIGINT, lambda x: int(x + 0.5) if x >= 0 else -int(-x + 0.5))
    scalar(
        "round",
        [DOUBLE, BIGINT],
        DOUBLE,
        lambda x, digits: float(
            math.floor(abs(x) * 10**digits + 0.5) / 10**digits * (1 if x >= 0 else -1)
        ),
    )
    scalar("round", [BIGINT], BIGINT, lambda x: x)
    scalar("sqrt", [DOUBLE], DOUBLE, math.sqrt, numpy_impl=np.sqrt, cost_weight=1.5)
    scalar("cbrt", [DOUBLE], DOUBLE, lambda x: math.copysign(abs(x) ** (1 / 3), x))
    scalar("exp", [DOUBLE], DOUBLE, math.exp, numpy_impl=np.exp, cost_weight=2.0)
    scalar("ln", [DOUBLE], DOUBLE, _checked_log, cost_weight=2.0)
    scalar("log2", [DOUBLE], DOUBLE, lambda x: _checked_log(x) / math.log(2))
    scalar("log10", [DOUBLE], DOUBLE, lambda x: _checked_log(x) / math.log(10))
    scalar("power", [DOUBLE, DOUBLE], DOUBLE, lambda x, y: float(x**y), cost_weight=2.0)
    scalar("pow", [DOUBLE, DOUBLE], DOUBLE, lambda x, y: float(x**y), cost_weight=2.0)
    scalar("mod", [BIGINT, BIGINT], BIGINT, _int_mod)
    scalar("mod", [DOUBLE, DOUBLE], DOUBLE, math.fmod)
    scalar("sign", [DOUBLE], DOUBLE, lambda x: float((x > 0) - (x < 0)))
    scalar("sign", [BIGINT], BIGINT, lambda x: (x > 0) - (x < 0))
    scalar("sin", [DOUBLE], DOUBLE, math.sin, numpy_impl=np.sin, cost_weight=2.0)
    scalar("cos", [DOUBLE], DOUBLE, math.cos, numpy_impl=np.cos, cost_weight=2.0)
    scalar("tan", [DOUBLE], DOUBLE, math.tan, cost_weight=2.0)
    scalar("atan", [DOUBLE], DOUBLE, math.atan, cost_weight=2.0)
    scalar("pi", [], DOUBLE, lambda: math.pi)
    scalar("e", [], DOUBLE, lambda: math.e)
    scalar("greatest", [T, T], T, lambda *xs: max(xs), variadic=True)
    scalar("least", [T, T], T, lambda *xs: min(xs), variadic=True)
    scalar("is_nan", [DOUBLE], BOOLEAN, math.isnan)
    scalar("is_finite", [DOUBLE], BOOLEAN, math.isfinite)
    scalar("infinity", [], DOUBLE, lambda: math.inf)
    scalar("nan", [], DOUBLE, lambda: math.nan)
    scalar("degrees", [DOUBLE], DOUBLE, math.degrees)
    scalar("radians", [DOUBLE], DOUBLE, math.radians)
    scalar("truncate", [DOUBLE], DOUBLE, math.trunc)
    scalar("width_bucket", [DOUBLE, DOUBLE, DOUBLE, BIGINT], BIGINT, _width_bucket)

    # ---- strings --------------------------------------------------------------
    scalar("length", [VARCHAR], BIGINT, len)
    scalar("lower", [VARCHAR], VARCHAR, str.lower)
    scalar("upper", [VARCHAR], VARCHAR, str.upper)
    scalar("trim", [VARCHAR], VARCHAR, str.strip)
    scalar("ltrim", [VARCHAR], VARCHAR, str.lstrip)
    scalar("rtrim", [VARCHAR], VARCHAR, str.rstrip)
    scalar("reverse", [VARCHAR], VARCHAR, lambda s: s[::-1])
    scalar("concat", [VARCHAR, VARCHAR], VARCHAR, lambda *xs: "".join(xs), variadic=True)
    scalar("substr", [VARCHAR, BIGINT], VARCHAR, _substr)
    scalar("substr", [VARCHAR, BIGINT, BIGINT], VARCHAR, _substr)
    scalar("substring", [VARCHAR, BIGINT], VARCHAR, _substr)
    scalar("substring", [VARCHAR, BIGINT, BIGINT], VARCHAR, _substr)
    scalar("replace", [VARCHAR, VARCHAR, VARCHAR], VARCHAR, lambda s, a, b: s.replace(a, b))
    scalar("replace", [VARCHAR, VARCHAR], VARCHAR, lambda s, a: s.replace(a, ""))
    scalar("strpos", [VARCHAR, VARCHAR], BIGINT, lambda s, sub: s.find(sub) + 1)
    scalar("position", [VARCHAR, VARCHAR], BIGINT, lambda sub, s: s.find(sub) + 1)
    scalar("starts_with", [VARCHAR, VARCHAR], BOOLEAN, str.startswith)
    scalar("ends_with", [VARCHAR, VARCHAR], BOOLEAN, str.endswith)
    scalar("lpad", [VARCHAR, BIGINT, VARCHAR], VARCHAR, _lpad)
    scalar("rpad", [VARCHAR, BIGINT, VARCHAR], VARCHAR, _rpad)
    scalar("split", [VARCHAR, VARCHAR], ARRAY(VARCHAR), lambda s, sep: s.split(sep))
    scalar("split_part", [VARCHAR, VARCHAR, BIGINT], VARCHAR, _split_part)
    scalar("chr", [BIGINT], VARCHAR, chr)
    scalar("codepoint", [VARCHAR], BIGINT, lambda s: ord(s[0]) if s else 0)
    scalar("repeat", [VARCHAR, BIGINT], VARCHAR, lambda s, n: s * max(0, n))
    scalar(
        "regexp_like",
        [VARCHAR, VARCHAR],
        BOOLEAN,
        lambda s, p: re.search(p, s) is not None,
        cost_weight=20.0,  # the paper singles out regexes as quanta hogs (IV-F1)
    )
    scalar("regexp_extract", [VARCHAR, VARCHAR], VARCHAR, _regexp_extract, cost_weight=20.0)
    scalar(
        "regexp_extract",
        [VARCHAR, VARCHAR, BIGINT],
        VARCHAR,
        _regexp_extract,
        cost_weight=20.0,
    )
    scalar(
        "regexp_replace",
        [VARCHAR, VARCHAR, VARCHAR],
        VARCHAR,
        lambda s, p, r: re.sub(p, r, s),
        cost_weight=20.0,
    )
    scalar("to_hex", [BIGINT], VARCHAR, lambda x: format(x, "X"))
    scalar("from_hex", [VARCHAR], BIGINT, lambda s: int(s, 16))
    scalar("hamming_distance", [VARCHAR, VARCHAR], BIGINT, _hamming)
    scalar("levenshtein_distance", [VARCHAR, VARCHAR], BIGINT, _levenshtein, cost_weight=10.0)

    # ---- null/misc ---------------------------------------------------------------
    scalar("typeof_null_safe", [T], VARCHAR, lambda x: type(x).__name__, null_on_null=False)

    # ---- date/time (dates = days since epoch; timestamps = ms since epoch) ----
    scalar("year", [DATE], BIGINT, lambda d: _civil_from_days(d)[0])
    scalar("month", [DATE], BIGINT, lambda d: _civil_from_days(d)[1])
    scalar("day", [DATE], BIGINT, lambda d: _civil_from_days(d)[2])
    scalar("year", [TIMESTAMP], BIGINT, lambda ts: _civil_from_days(ts // _MS_PER_DAY)[0])
    scalar("month", [TIMESTAMP], BIGINT, lambda ts: _civil_from_days(ts // _MS_PER_DAY)[1])
    scalar("day", [TIMESTAMP], BIGINT, lambda ts: _civil_from_days(ts // _MS_PER_DAY)[2])
    scalar("hour", [TIMESTAMP], BIGINT, lambda ts: (ts % _MS_PER_DAY) // _MS_PER_HOUR)
    scalar(
        "minute", [TIMESTAMP], BIGINT, lambda ts: (ts % _MS_PER_HOUR) // _MS_PER_MINUTE
    )
    scalar("second", [TIMESTAMP], BIGINT, lambda ts: (ts % _MS_PER_MINUTE) // 1000)
    scalar("day_of_week", [DATE], BIGINT, lambda d: (d + 3) % 7 + 1)  # 1970-01-01 = Thu
    scalar("day_of_year", [DATE], BIGINT, _day_of_year)
    scalar("date_trunc", [VARCHAR, TIMESTAMP], TIMESTAMP, _date_trunc)
    scalar("date_add", [VARCHAR, BIGINT, DATE], DATE, _date_add_days)
    scalar("date_add", [VARCHAR, BIGINT, TIMESTAMP], TIMESTAMP, _ts_add)
    scalar("date_diff", [VARCHAR, DATE, DATE], BIGINT, _date_diff_days)
    scalar("date_diff", [VARCHAR, TIMESTAMP, TIMESTAMP], BIGINT, _ts_diff)
    scalar("from_unixtime", [BIGINT], TIMESTAMP, lambda s: s * 1000)
    scalar("to_unixtime", [TIMESTAMP], DOUBLE, lambda ts: ts / 1000.0)
    scalar("date", [VARCHAR], DATE, _parse_date)
    scalar("to_date_int", [BIGINT, BIGINT, BIGINT], DATE, _days_from_civil)

    # ---- arrays & higher-order functions (paper Sec. IV-A) -----------------------
    scalar("cardinality", [ARRAY(T)], BIGINT, len)
    scalar("cardinality", [MAP(K, V)], BIGINT, len)
    scalar("contains", [ARRAY(T), T], BOOLEAN, lambda arr, x: x in arr)
    scalar("array_distinct", [ARRAY(T)], ARRAY(T), lambda arr: list(dict.fromkeys(arr)))
    scalar("array_sort", [ARRAY(T)], ARRAY(T), _array_sort)
    scalar("array_max", [ARRAY(T)], T, lambda arr: max((x for x in arr if x is not None), default=None), null_on_null=True)
    scalar("array_min", [ARRAY(T)], T, lambda arr: min((x for x in arr if x is not None), default=None), null_on_null=True)
    scalar("array_join", [ARRAY(VARCHAR), VARCHAR], VARCHAR, lambda arr, sep: sep.join(str(x) for x in arr if x is not None))
    scalar("array_position", [ARRAY(T), T], BIGINT, lambda arr, x: arr.index(x) + 1 if x in arr else 0)
    scalar("slice", [ARRAY(T), BIGINT, BIGINT], ARRAY(T), _array_slice)
    scalar("sequence", [BIGINT, BIGINT], ARRAY(BIGINT), lambda a, b: list(range(a, b + 1)))
    scalar(
        "sequence",
        [BIGINT, BIGINT, BIGINT],
        ARRAY(BIGINT),
        lambda a, b, step: list(range(a, b + (1 if step > 0 else -1), step)),
    )
    scalar("element_at", [ARRAY(T), BIGINT], T, _element_at_array, null_on_null=True)
    scalar("element_at", [MAP(K, V), K], V, lambda m, k: m.get(k), null_on_null=True)
    scalar("flatten", [ARRAY(ARRAY(T))], ARRAY(T), lambda arrs: [x for a in arrs if a is not None for x in a])
    scalar("array_concat", [ARRAY(T), ARRAY(T)], ARRAY(T), lambda *arrs: [x for a in arrs for x in a], variadic=True)
    scalar("arrays_overlap", [ARRAY(T), ARRAY(T)], BOOLEAN, lambda a, b: bool(set(a) & set(b)))
    scalar("array_intersect", [ARRAY(T), ARRAY(T)], ARRAY(T), lambda a, b: [x for x in dict.fromkeys(a) if x in set(b)])
    scalar("array_union", [ARRAY(T), ARRAY(T)], ARRAY(T), lambda a, b: list(dict.fromkeys(list(a) + list(b))))
    scalar("array_except", [ARRAY(T), ARRAY(T)], ARRAY(T), lambda a, b: [x for x in dict.fromkeys(a) if x not in set(b)])
    scalar("shuffle_deterministic", [ARRAY(T), BIGINT], ARRAY(T), _shuffle_deterministic)

    func_t_u = FunctionType("function", (T,), U)
    func_t_bool = FunctionType("function", (T,), BOOLEAN)
    func_u_t_u = FunctionType("function", (U, T), U)
    scalar("transform", [ARRAY(T), func_t_u], ARRAY(U), _transform, cost_weight=3.0)
    scalar("filter", [ARRAY(T), func_t_bool], ARRAY(T), _filter, cost_weight=3.0)
    scalar(
        "reduce",
        [ARRAY(T), U, func_u_t_u, FunctionType("function", (U,), V)],
        V,
        _reduce,
        cost_weight=3.0,
    )
    scalar("any_match", [ARRAY(T), func_t_bool], BOOLEAN, lambda arr, f: any(bool(f(x)) for x in arr))
    scalar("all_match", [ARRAY(T), func_t_bool], BOOLEAN, lambda arr, f: all(bool(f(x)) for x in arr))
    scalar("none_match", [ARRAY(T), func_t_bool], BOOLEAN, lambda arr, f: not any(bool(f(x)) for x in arr))
    scalar(
        "zip_with",
        [ARRAY(T), ARRAY(U), FunctionType("function", (T, U), V)],
        ARRAY(V),
        lambda a, b, f: [f(x, y) for x, y in zip(_pad(a, len(b)), _pad(b, len(a)))],
    )

    # ---- maps ---------------------------------------------------------------------
    scalar("map_keys", [MAP(K, V)], ARRAY(K), lambda m: list(m.keys()))
    scalar("map_values", [MAP(K, V)], ARRAY(V), lambda m: list(m.values()))
    from repro.types import ROW

    scalar(
        "map_from_entries",
        [ARRAY(ROW((None, K), (None, V)))],
        MAP(K, V),
        lambda entries: {k: v for k, v in entries},
    )
    scalar(
        "map",
        [ARRAY(K), ARRAY(V)],
        MAP(K, V),
        lambda keys, values: dict(zip(keys, values)),
    )
    scalar("map_concat", [MAP(K, V), MAP(K, V)], MAP(K, V), lambda *ms: {k: v for m in ms for k, v in m.items()}, variadic=True)
    scalar(
        "map_filter",
        [MAP(K, V), FunctionType("function", (K, V), BOOLEAN)],
        MAP(K, V),
        lambda m, f: {k: v for k, v in m.items() if f(k, v)},
    )
    scalar(
        "transform_values",
        [MAP(K, V), FunctionType("function", (K, V), U)],
        MAP(K, U),
        lambda m, f: {k: f(k, v) for k, v in m.items()},
    )

    # ---- type conversion helpers ---------------------------------------------------
    scalar("to_varchar", [BIGINT], VARCHAR, str)
    scalar("to_varchar", [DOUBLE], VARCHAR, str)
    scalar("to_bigint", [VARCHAR], BIGINT, int)
    scalar("to_double", [VARCHAR], DOUBLE, float)
    scalar("parse_int_or_null", [VARCHAR], BIGINT, _parse_int_or_null, null_on_null=False)


# ---- implementation helpers -----------------------------------------------------


def _checked_log(x: float) -> float:
    if x <= 0:
        raise InvalidFunctionArgumentError(f"ln of non-positive value: {x}")
    return math.log(x)


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        raise DivisionByZeroError("Division by zero")
    return int(math.fmod(a, b))


def _width_bucket(x: float, low: float, high: float, buckets: int) -> int:
    if buckets <= 0:
        raise InvalidFunctionArgumentError("bucket count must be positive")
    if x < low:
        return 0
    if x >= high:
        return buckets + 1
    return int((x - low) / (high - low) * buckets) + 1


def _substr(s: str, start: int, length: int | None = None):
    # SQL is 1-based; start may be negative (from end).
    if start == 0:
        begin = 0
    elif start > 0:
        begin = start - 1
    else:
        begin = max(0, len(s) + start)
    end = len(s) if length is None else min(len(s), begin + max(0, length))
    return s[begin:end]


def _lpad(s: str, size: int, pad: str) -> str:
    if len(s) >= size:
        return s[:size]
    fill = (pad * size)[: size - len(s)]
    return fill + s


def _rpad(s: str, size: int, pad: str) -> str:
    if len(s) >= size:
        return s[:size]
    fill = (pad * size)[: size - len(s)]
    return s + fill


def _split_part(s: str, sep: str, index: int):
    parts = s.split(sep)
    if 1 <= index <= len(parts):
        return parts[index - 1]
    return None


def _regexp_extract(s: str, pattern: str, group: int = 0):
    match = re.search(pattern, s)
    if match is None:
        return None
    return match.group(group)


def _hamming(a: str, b: str) -> int:
    if len(a) != len(b):
        raise InvalidFunctionArgumentError("strings must be the same length")
    return sum(x != y for x, y in zip(a, b))


def _levenshtein(a: str, b: str) -> int:
    if not a:
        return len(b)
    if not b:
        return len(a)
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        cur = [i]
        for j, cb in enumerate(b, 1):
            cur.append(min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return prev[-1]


def _array_sort(arr: list) -> list:
    non_null = sorted(x for x in arr if x is not None)
    nulls = [None] * (len(arr) - len(non_null))
    return non_null + nulls


def _array_slice(arr: list, start: int, length: int) -> list:
    if start == 0:
        raise InvalidFunctionArgumentError("SQL array indices start at 1")
    begin = start - 1 if start > 0 else len(arr) + start
    begin = max(0, begin)
    return arr[begin : begin + max(0, length)]


def _element_at_array(arr: list, index: int):
    if index == 0:
        raise InvalidFunctionArgumentError("SQL array indices start at 1")
    pos = index - 1 if index > 0 else len(arr) + index
    if 0 <= pos < len(arr):
        return arr[pos]
    return None


def _shuffle_deterministic(arr: list, seed: int) -> list:
    # Deterministic permutation (Fisher-Yates with an LCG) so results are
    # reproducible in tests; the engine forbids real randomness in plans.
    out = list(arr)
    state = (seed * 6364136223846793005 + 1442695040888963407) % (1 << 63)
    for i in range(len(out) - 1, 0, -1):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 63)
        j = state % (i + 1)
        out[i], out[j] = out[j], out[i]
    return out


def _transform(arr: list, fn) -> list:
    return [fn(x) for x in arr]


def _filter(arr: list, fn) -> list:
    return [x for x in arr if fn(x)]


def _reduce(arr: list, initial, input_fn, output_fn):
    state = initial
    for x in arr:
        state = input_fn(state, x)
    return output_fn(state)


def _pad(arr: list, size: int) -> list:
    if len(arr) >= size:
        return arr
    return list(arr) + [None] * (size - len(arr))


def _parse_int_or_null(s):
    if s is None:
        return None
    try:
        return int(s)
    except (TypeError, ValueError):
        return None


# ---- civil-date math (days since 1970-01-01, proleptic Gregorian) ---------------


def _days_from_civil(year: int, month: int, day: int) -> int:
    year -= month <= 2
    era = (year if year >= 0 else year - 399) // 400
    yoe = year - era * 400
    doy = (153 * (month + (-3 if month > 2 else 9)) + 2) // 5 + day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def _civil_from_days(days: int) -> tuple[int, int, int]:
    days += 719468
    era = (days if days >= 0 else days - 146096) // 146097
    doe = days - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = mp + (3 if mp < 10 else -9)
    return year + (month <= 2), month, day


def _day_of_year(days: int) -> int:
    year, _, _ = _civil_from_days(days)
    return days - _days_from_civil(year, 1, 1) + 1


def _parse_date(text: str) -> int:
    parts = text.split("-")
    if len(parts) != 3:
        raise InvalidFunctionArgumentError(f"Cannot parse date: {text!r}")
    return _days_from_civil(int(parts[0]), int(parts[1]), int(parts[2]))


_TRUNC_UNITS = {
    "second": 1000,
    "minute": _MS_PER_MINUTE,
    "hour": _MS_PER_HOUR,
    "day": _MS_PER_DAY,
}


def _date_trunc(unit: str, ts: int) -> int:
    unit = unit.lower()
    if unit in _TRUNC_UNITS:
        quantum = _TRUNC_UNITS[unit]
        return (ts // quantum) * quantum
    year, month, _ = _civil_from_days(ts // _MS_PER_DAY)
    if unit == "month":
        return _days_from_civil(year, month, 1) * _MS_PER_DAY
    if unit == "year":
        return _days_from_civil(year, 1, 1) * _MS_PER_DAY
    if unit == "week":
        days = ts // _MS_PER_DAY
        return (days - (days + 3) % 7) * _MS_PER_DAY
    raise InvalidFunctionArgumentError(f"Unknown date_trunc unit: {unit}")


def _date_add_days(unit: str, amount: int, date: int) -> int:
    unit = unit.lower()
    if unit == "day":
        return date + amount
    if unit == "week":
        return date + amount * 7
    if unit in ("month", "year"):
        year, month, day = _civil_from_days(date)
        if unit == "year":
            year += amount
        else:
            total = (year * 12 + month - 1) + amount
            year, month = divmod(total, 12)
            month += 1
        day = min(day, _days_in_month(year, month))
        return _days_from_civil(year, month, day)
    raise InvalidFunctionArgumentError(f"Unknown date_add unit for date: {unit}")


def _ts_add(unit: str, amount: int, ts: int) -> int:
    unit = unit.lower()
    if unit in _TRUNC_UNITS:
        return ts + amount * _TRUNC_UNITS[unit]
    days = _date_add_days(unit, amount, ts // _MS_PER_DAY)
    return days * _MS_PER_DAY + ts % _MS_PER_DAY


def _date_diff_days(unit: str, a: int, b: int) -> int:
    unit = unit.lower()
    if unit == "day":
        return b - a
    if unit == "week":
        return (b - a) // 7
    ya, ma, _ = _civil_from_days(a)
    yb, mb, _ = _civil_from_days(b)
    if unit == "month":
        return (yb * 12 + mb) - (ya * 12 + ma)
    if unit == "year":
        return yb - ya
    raise InvalidFunctionArgumentError(f"Unknown date_diff unit for date: {unit}")


def _ts_diff(unit: str, a: int, b: int) -> int:
    unit = unit.lower()
    if unit in _TRUNC_UNITS:
        return (b - a) // _TRUNC_UNITS[unit]
    return _date_diff_days(unit, a // _MS_PER_DAY, b // _MS_PER_DAY)


def _days_in_month(year: int, month: int) -> int:
    if month == 2:
        leap = year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)
        return 29 if leap else 28
    return 31 if month in (1, 3, 5, 7, 8, 10, 12) else 30
