"""Built-in aggregate functions.

Every aggregate decomposes into partial and final steps via
``add``/``combine`` so the planner can split it across an
AggregatePartial stage (on scan nodes) and an AggregateFinal stage after
the shuffle, exactly as in the paper's Fig. 3. ``histogram`` follows the
flat-array implementation note of Sec. V-A.
"""

from __future__ import annotations

import math

from repro.functions.registry import AggregateFunction, FunctionRegistry
from repro.functions.signature import Signature, T
from repro.types import (
    ARRAY,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    MAP,
    VARCHAR,
    Type,
)


def _sig(name: str, args: list[Type], ret: Type) -> Signature:
    return Signature(name, tuple(args), ret)


def register(registry: FunctionRegistry) -> None:
    def aggregate(name, args, ret, create, add, combine, output) -> None:
        registry.add_aggregate(
            AggregateFunction(_sig(name, args, ret), create, add, combine, output)
        )

    # count(*) — zero-argument form; count(x) — non-null count.
    aggregate(
        "count", [], BIGINT,
        create=lambda: 0,
        add=lambda state: state + 1,
        combine=lambda a, b: a + b,
        output=lambda state: state,
    )
    aggregate(
        "count", [T], BIGINT,
        create=lambda: 0,
        add=lambda state, x: state + 1,
        combine=lambda a, b: a + b,
        output=lambda state: state,
    )
    aggregate(
        "count_if", [BOOLEAN], BIGINT,
        create=lambda: 0,
        add=lambda state, x: state + (1 if x else 0),
        combine=lambda a, b: a + b,
        output=lambda state: state,
    )

    for in_type, out_type in ((BIGINT, BIGINT), (DOUBLE, DOUBLE)):
        aggregate(
            "sum", [in_type], out_type,
            create=lambda: None,
            add=lambda state, x: x if state is None else state + x,
            combine=_nullable_add,
            output=lambda state: state,
        )

    aggregate(
        "avg", [DOUBLE], DOUBLE,
        create=lambda: (0.0, 0),
        add=lambda state, x: (state[0] + x, state[1] + 1),
        combine=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        output=lambda state: state[0] / state[1] if state[1] else None,
    )
    aggregate(
        "avg", [BIGINT], DOUBLE,
        create=lambda: (0.0, 0),
        add=lambda state, x: (state[0] + x, state[1] + 1),
        combine=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        output=lambda state: state[0] / state[1] if state[1] else None,
    )

    aggregate(
        "min", [T], T,
        create=lambda: None,
        add=lambda state, x: x if state is None or x < state else state,
        combine=lambda a, b: _nullable_fold(a, b, min),
        output=lambda state: state,
    )
    aggregate(
        "max", [T], T,
        create=lambda: None,
        add=lambda state, x: x if state is None or x > state else state,
        combine=lambda a, b: _nullable_fold(a, b, max),
        output=lambda state: state,
    )

    from repro.functions.signature import U

    # max_by/min_by: value of arg1 at the max/min of arg2.
    aggregate(
        "max_by", [T, U], T,
        create=lambda: None,
        add=lambda state, value, key: (
            (value, key) if state is None or (key is not None and key > state[1]) else state
        ),
        combine=lambda a, b: _by_fold(a, b, True),
        output=lambda state: state[0] if state else None,
    )
    aggregate(
        "min_by", [T, U], T,
        create=lambda: None,
        add=lambda state, value, key: (
            (value, key) if state is None or (key is not None and key < state[1]) else state
        ),
        combine=lambda a, b: _by_fold(a, b, False),
        output=lambda state: state[0] if state else None,
    )

    # Welford-style merge for variance/stddev.
    for name, final in (
        ("variance", _var_samp),
        ("var_samp", _var_samp),
        ("var_pop", _var_pop),
        ("stddev", _stddev_samp),
        ("stddev_samp", _stddev_samp),
        ("stddev_pop", _stddev_pop),
    ):
        aggregate(
            name, [DOUBLE], DOUBLE,
            create=lambda: (0, 0.0, 0.0),  # (count, mean, m2)
            add=_welford_add,
            combine=_welford_combine,
            output=final,
        )

    # Bivariate statistics: shared (n, mx, my, cxy, mx2, my2) state.
    for name, final in (
        ("corr", _corr_output),
        ("covar_samp", _covar_samp),
        ("covar_pop", _covar_pop),
        ("regr_slope", _regr_slope),
        ("regr_intercept", _regr_intercept),
    ):
        aggregate(
            name, [DOUBLE, DOUBLE], DOUBLE,
            create=lambda: (0, 0.0, 0.0, 0.0, 0.0, 0.0),
            add=_bivariate_add,
            combine=_bivariate_combine,
            output=final,
        )

    aggregate(
        "bool_and", [BOOLEAN], BOOLEAN,
        create=lambda: None,
        add=lambda state, x: x if state is None else (state and x),
        combine=lambda a, b: _nullable_fold(a, b, lambda p, q: p and q),
        output=lambda state: state,
    )
    aggregate(
        "bool_or", [BOOLEAN], BOOLEAN,
        create=lambda: None,
        add=lambda state, x: x if state is None else (state or x),
        combine=lambda a, b: _nullable_fold(a, b, lambda p, q: p or q),
        output=lambda state: state,
    )

    aggregate(
        "array_agg", [T], ARRAY(T),
        create=list,
        add=_append,
        combine=lambda a, b: a + b,
        output=lambda state: state if state else None,
    )

    aggregate(
        "arbitrary", [T], T,
        create=lambda: None,
        add=lambda state, x: state if state is not None else x,
        combine=lambda a, b: a if a is not None else b,
        output=lambda state: state,
    )

    # histogram: value -> count map, stored as a plain dict (the paper's
    # flat-array implementation note, Sec. V-A, motivates avoiding
    # per-group object graphs; a dict of counters is the python analog).
    aggregate(
        "histogram", [T], MAP(T, BIGINT),
        create=dict,
        add=_histogram_add,
        combine=_histogram_combine,
        output=lambda state: dict(state) if state else None,
    )

    # approx_distinct: HyperLogLog with 256 max-rank registers.
    aggregate(
        "approx_distinct", [T], BIGINT,
        create=lambda: [0] * 256,
        add=_approx_add,
        combine=lambda a, b: [max(x, y) for x, y in zip(a, b)],
        output=_approx_output,
    )

    aggregate(
        "checksum", [T], BIGINT,
        create=lambda: 0,
        add=lambda state, x: (state + (hash(x) & 0x7FFFFFFFFFFF)) % (1 << 62),
        combine=lambda a, b: (a + b) % (1 << 62),
        output=lambda state: state,
    )

    aggregate(
        "geometric_mean", [DOUBLE], DOUBLE,
        create=lambda: (0.0, 0),
        add=lambda state, x: (state[0] + math.log(x), state[1] + 1),
        combine=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        output=lambda state: math.exp(state[0] / state[1]) if state[1] else None,
    )

    # approx_percentile via full collection (exact; acceptable at repro scale).
    aggregate(
        "approx_percentile", [DOUBLE, DOUBLE], DOUBLE,
        create=list,
        add=lambda state, x, p: _append(state, (x, p)),
        combine=lambda a, b: a + b,
        output=_percentile_output,
    )


def _append(state: list, x) -> list:
    state.append(x)
    return state


def _nullable_add(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a + b


def _nullable_fold(a, b, fold):
    if a is None:
        return b
    if b is None:
        return a
    return fold(a, b)


def _by_fold(a, b, is_max: bool):
    if a is None:
        return b
    if b is None:
        return a
    if (b[1] > a[1]) == is_max and b[1] != a[1]:
        return b
    return a


def _welford_add(state, x):
    count, mean, m2 = state
    count += 1
    delta = x - mean
    mean += delta / count
    m2 += delta * (x - mean)
    return (count, mean, m2)


def _welford_combine(a, b):
    count_a, mean_a, m2_a = a
    count_b, mean_b, m2_b = b
    count = count_a + count_b
    if count == 0:
        return (0, 0.0, 0.0)
    delta = mean_b - mean_a
    mean = mean_a + delta * count_b / count
    m2 = m2_a + m2_b + delta * delta * count_a * count_b / count
    return (count, mean, m2)


def _var_samp(state):
    count, _, m2 = state
    return m2 / (count - 1) if count > 1 else None


def _var_pop(state):
    count, _, m2 = state
    return m2 / count if count > 0 else None


def _stddev_samp(state):
    var = _var_samp(state)
    return math.sqrt(var) if var is not None else None


def _stddev_pop(state):
    var = _var_pop(state)
    return math.sqrt(var) if var is not None else None


def _bivariate_add(state, y, x):
    # Welford-style update of co-moments; args are (y, x) per SQL corr(y, x).
    n, mean_x, mean_y, cxy, m2x, m2y = state
    n += 1
    dx = x - mean_x
    dy = y - mean_y
    mean_x += dx / n
    mean_y += dy / n
    cxy += dx * (y - mean_y)
    m2x += dx * (x - mean_x)
    m2y += dy * (y - mean_y)
    return (n, mean_x, mean_y, cxy, m2x, m2y)


def _bivariate_combine(a, b):
    n_a, mx_a, my_a, cxy_a, m2x_a, m2y_a = a
    n_b, mx_b, my_b, cxy_b, m2x_b, m2y_b = b
    n = n_a + n_b
    if n == 0:
        return a
    dx = mx_b - mx_a
    dy = my_b - my_a
    mean_x = mx_a + dx * n_b / n
    mean_y = my_a + dy * n_b / n
    cxy = cxy_a + cxy_b + dx * dy * n_a * n_b / n
    m2x = m2x_a + m2x_b + dx * dx * n_a * n_b / n
    m2y = m2y_a + m2y_b + dy * dy * n_a * n_b / n
    return (n, mean_x, mean_y, cxy, m2x, m2y)


def _corr_output(state):
    n, _, _, cxy, m2x, m2y = state
    if n < 2 or m2x == 0 or m2y == 0:
        return None
    return cxy / math.sqrt(m2x * m2y)


def _covar_samp(state):
    n, _, _, cxy, _, _ = state
    return cxy / (n - 1) if n > 1 else None


def _covar_pop(state):
    n, _, _, cxy, _, _ = state
    return cxy / n if n > 0 else None


def _regr_slope(state):
    n, _, _, cxy, m2x, _ = state
    if n < 2 or m2x == 0:
        return None
    return cxy / m2x


def _regr_intercept(state):
    n, mean_x, mean_y, cxy, m2x, _ = state
    if n < 2 or m2x == 0:
        return None
    return mean_y - (cxy / m2x) * mean_x


def _histogram_add(state: dict, x) -> dict:
    state[x] = state.get(x, 0) + 1
    return state


def _histogram_combine(a: dict, b: dict) -> dict:
    for key, count in b.items():
        a[key] = a.get(key, 0) + count
    return a


def _approx_add(state: list, x) -> list:
    # Scramble python's hash (it is identity-like for small ints).
    h = (hash(x) * 0x9E3779B97F4A7C15 + 0x165667B19E3779F9) & 0xFFFFFFFFFFFFFFFF
    bucket = h & 255
    h >>= 8
    rank = 1
    while h & 1 == 0 and rank < 56:
        rank += 1
        h >>= 1
    if rank > state[bucket]:
        state[bucket] = rank
    return state


def _approx_output(state: list):
    m = len(state)
    zeros = state.count(0)
    if zeros == m:
        return 0
    # Standard HLL estimate with linear-counting small-range correction.
    harmonic = sum(2.0 ** -rank for rank in state)
    alpha = 0.7213 / (1 + 1.079 / m)
    estimate = alpha * m * m / harmonic
    if estimate <= 2.5 * m and zeros:
        estimate = m * math.log(m / zeros)
    return max(1, int(round(estimate)))


def _percentile_output(state: list):
    if not state:
        return None
    percentile = state[0][1]
    values = sorted(v for v, _ in state)
    if not 0.0 <= percentile <= 1.0:
        return None
    index = min(len(values) - 1, int(percentile * len(values)))
    return values[index]
