"""Function resolution: overload selection over registered signatures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import FunctionNotFoundError
from repro.functions.signature import Signature, substitute, unify
from repro.types import Type, UNKNOWN


@dataclass(frozen=True)
class ScalarFunction:
    """A scalar function overload.

    ``impl`` takes python values and returns a python value. When
    ``null_on_null`` is set the engine short-circuits to NULL when any
    argument is NULL without invoking ``impl`` (Presto's default
    convention). ``numpy_impl``, when provided, is a vectorized kernel
    the expression compiler can use on primitive blocks.
    """

    signature: Signature
    impl: Callable
    null_on_null: bool = True
    deterministic: bool = True
    numpy_impl: Optional[Callable] = None
    # Relative CPU weight for the simulation cost model (1.0 = cheap).
    cost_weight: float = 1.0


@dataclass(frozen=True)
class AggregateFunction:
    """An aggregate with partial/final decomposition (paper Fig. 3).

    - ``create()`` returns a fresh accumulator state.
    - ``add(state, *args)`` folds one row in, returning the new state.
    - ``combine(a, b)`` merges partial states (AggregateFinal stage).
    - ``output(state)`` extracts the result value.
    """

    signature: Signature
    create: Callable[[], object]
    add: Callable
    combine: Callable
    output: Callable
    # Type of the intermediate state when shipped between stages.
    ignores_nulls: bool = True


@dataclass(frozen=True)
class WindowFunction:
    """A ranking/value window function.

    ``process(partition_rows, args_per_row, order_ranks)`` returns one
    output value per row of the partition. ``args_per_row`` is a list of
    argument tuples aligned with partition rows; ``order_ranks`` gives
    peer-group ids from the ORDER BY (equal ranks = ties).
    """

    signature: Signature
    process: Callable


class FunctionRegistry:
    """Named, overloaded function catalog."""

    def __init__(self):
        self._scalars: dict[str, list[ScalarFunction]] = {}
        self._aggregates: dict[str, list[AggregateFunction]] = {}
        self._windows: dict[str, list[WindowFunction]] = {}

    # -- registration --------------------------------------------------------

    def add_scalar(self, function: ScalarFunction) -> None:
        self._scalars.setdefault(function.signature.name, []).append(function)

    def add_aggregate(self, function: AggregateFunction) -> None:
        self._aggregates.setdefault(function.signature.name, []).append(function)

    def add_window(self, function: WindowFunction) -> None:
        self._windows.setdefault(function.signature.name, []).append(function)

    # -- queries ----------------------------------------------------------------

    def is_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def is_window(self, name: str) -> bool:
        return name.lower() in self._windows

    def is_scalar(self, name: str) -> bool:
        return name.lower() in self._scalars

    def scalar_names(self) -> list[str]:
        return sorted(self._scalars)

    # -- resolution ----------------------------------------------------------------

    def resolve_scalar(
        self, name: str, argument_types: Sequence[Type]
    ) -> tuple[ScalarFunction, dict[str, Type]]:
        return self._resolve(self._scalars, "function", name, argument_types)

    def resolve_aggregate(
        self, name: str, argument_types: Sequence[Type]
    ) -> tuple[AggregateFunction, dict[str, Type]]:
        return self._resolve(self._aggregates, "aggregate function", name, argument_types)

    def resolve_window(
        self, name: str, argument_types: Sequence[Type]
    ) -> tuple[WindowFunction, dict[str, Type]]:
        return self._resolve(self._windows, "window function", name, argument_types)

    def _resolve(self, table, kind, name, argument_types):
        candidates = table.get(name.lower())
        if not candidates:
            raise FunctionNotFoundError(f"Unknown {kind}: {name}")
        exact: list[tuple[object, dict[str, Type]]] = []
        coerced: list[tuple[object, dict[str, Type]]] = []
        for candidate in candidates:
            signature = candidate.signature
            if not signature.arity_matches(len(argument_types)):
                continue
            bindings: dict[str, Type] = {}
            ok = True
            exact_match = True
            for i, actual in enumerate(argument_types):
                declared = signature.expected_type(i)
                if not unify(declared, actual, bindings):
                    ok = False
                    break
                resolved = substitute(declared, bindings)
                if actual != resolved and actual != UNKNOWN:
                    exact_match = False
            if not ok:
                continue
            (exact if exact_match else coerced).append((candidate, bindings))
        if exact:
            return exact[0]
        if coerced:
            return coerced[0]
        types_text = ", ".join(str(t) for t in argument_types)
        raise FunctionNotFoundError(
            f"Unexpected arguments for {kind} {name}({types_text})"
        )

    def signature_return_type(
        self, signature: Signature, bindings: dict[str, Type]
    ) -> Type:
        return substitute(signature.return_type, bindings)


def _build_default_registry() -> FunctionRegistry:
    from repro.functions import aggregates, scalars, window

    registry = FunctionRegistry()
    scalars.register(registry)
    aggregates.register(registry)
    window.register(registry)
    return registry


#: The default function catalog shared by all sessions.
FUNCTIONS = _build_default_registry()
