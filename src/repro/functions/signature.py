"""Function signatures with generic type variables.

A signature like ``transform(array(T), function(T, U)) -> array(U)``
binds ``T``/``U`` against actual argument types during analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import (
    BIGINT,
    DOUBLE,
    INTEGER,
    UNKNOWN,
    ArrayType,
    FunctionType,
    MapType,
    RowType,
    Type,
    can_coerce,
)


@dataclass(frozen=True)
class TypeVariable(Type):
    """A generic placeholder inside a signature, e.g. T."""

    def __str__(self) -> str:
        return self.name.upper()


T = TypeVariable("T")
U = TypeVariable("U")
K = TypeVariable("K")
V = TypeVariable("V")


@dataclass(frozen=True)
class Signature:
    """One overload of a function."""

    name: str
    argument_types: tuple[Type, ...]
    return_type: Type
    variadic: bool = False  # last argument type repeats

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.argument_types)
        if self.variadic:
            args += "..."
        return f"{self.name}({args}) -> {self.return_type}"

    def arity_matches(self, count: int) -> bool:
        if self.variadic:
            return count >= len(self.argument_types) - 1
        return count == len(self.argument_types)

    def expected_type(self, index: int) -> Type:
        if self.variadic and index >= len(self.argument_types):
            return self.argument_types[-1]
        return self.argument_types[index]


def unify(declared: Type, actual: Type, bindings: dict[str, Type]) -> bool:
    """Try to bind type variables in ``declared`` against ``actual``.

    Mutates ``bindings``. Numeric widening and unknown (NULL) coercion
    are allowed at the leaves.
    """
    if isinstance(declared, TypeVariable):
        if actual == UNKNOWN:
            return True  # leave unbound; may be fixed by another argument
        bound = bindings.get(declared.name)
        if bound is None:
            bindings[declared.name] = actual
            return True
        if bound == actual or can_coerce(actual, bound):
            return True
        if can_coerce(bound, actual):
            bindings[declared.name] = actual
            return True
        return False
    if isinstance(declared, ArrayType):
        if actual == UNKNOWN:
            return True
        return isinstance(actual, ArrayType) and unify(
            declared.element, actual.element, bindings
        )
    if isinstance(declared, MapType):
        if actual == UNKNOWN:
            return True
        return (
            isinstance(actual, MapType)
            and unify(declared.key, actual.key, bindings)
            and unify(declared.value, actual.value, bindings)
        )
    if isinstance(declared, RowType):
        if not isinstance(actual, RowType) or len(declared.fields) != len(actual.fields):
            return False
        return all(
            unify(d, a, bindings)
            for (_, d), (_, a) in zip(declared.fields, actual.fields)
        )
    if isinstance(declared, FunctionType):
        # Lambdas are typed by the analyzer after other args bind; an
        # UNKNOWN placeholder is accepted during the first pass, and a
        # concrete FunctionType (the typed lambda) binds its argument and
        # return type variables (e.g. U in transform's function(T) -> U).
        if actual == UNKNOWN:
            return True
        if not isinstance(actual, FunctionType):
            return False
        if len(declared.argument_types) != len(actual.argument_types):
            return False
        return all(
            unify(d, a, bindings)
            for d, a in zip(declared.argument_types, actual.argument_types)
        ) and unify(declared.return_type, actual.return_type, bindings)
    if actual == UNKNOWN:
        return True
    if declared == actual:
        return True
    return can_coerce(actual, declared)


def substitute(declared: Type, bindings: dict[str, Type]) -> Type:
    """Replace bound type variables in ``declared``; unbound become UNKNOWN."""
    from repro.types import ARRAY, MAP, ROW

    if isinstance(declared, TypeVariable):
        return bindings.get(declared.name, UNKNOWN)
    if isinstance(declared, ArrayType):
        return ARRAY(substitute(declared.element, bindings))
    if isinstance(declared, MapType):
        return MAP(substitute(declared.key, bindings), substitute(declared.value, bindings))
    if isinstance(declared, RowType):
        return ROW(*[(n, substitute(t, bindings)) for n, t in declared.fields])
    if isinstance(declared, FunctionType):
        return FunctionType(
            "function",
            tuple(substitute(t, bindings) for t in declared.argument_types),
            substitute(declared.return_type, bindings),
        )
    return declared


def numeric_result(a: Type, b: Type) -> Type:
    """Result type of arithmetic between two numeric types."""
    if DOUBLE in (a, b):
        return DOUBLE
    if BIGINT in (a, b):
        return BIGINT
    return INTEGER if (a == INTEGER and b == INTEGER) else BIGINT
