"""Built-in window functions (rank family and value functions).

Each function receives the full partition (rows in window order), the
per-row argument tuples, and the peer-group ids derived from the window
ORDER BY, and returns one value per row. Aggregate functions used with
OVER() are handled separately by the window operator.
"""

from __future__ import annotations

from repro.functions.registry import FunctionRegistry, WindowFunction
from repro.functions.signature import Signature, T
from repro.types import BIGINT, DOUBLE, Type


def _sig(name: str, args: list[Type], ret: Type) -> Signature:
    return Signature(name, tuple(args), ret)


def register(registry: FunctionRegistry) -> None:
    def window(name, args, ret, process) -> None:
        registry.add_window(WindowFunction(_sig(name, args, ret), process))

    window("row_number", [], BIGINT, _row_number)
    window("rank", [], BIGINT, _rank)
    window("dense_rank", [], BIGINT, _dense_rank)
    window("percent_rank", [], DOUBLE, _percent_rank)
    window("cume_dist", [], DOUBLE, _cume_dist)
    window("ntile", [BIGINT], BIGINT, _ntile)
    window("lead", [T], T, lambda n, args, peers: _shift(n, args, peers, 1, None))
    window("lead", [T, BIGINT], T, lambda n, args, peers: _shift_dynamic(n, args, peers, 1))
    window("lag", [T], T, lambda n, args, peers: _shift(n, args, peers, -1, None))
    window("lag", [T, BIGINT], T, lambda n, args, peers: _shift_dynamic(n, args, peers, -1))
    window("first_value", [T], T, _first_value)
    window("last_value", [T], T, _last_value)
    window("nth_value", [T, BIGINT], T, _nth_value)


def _row_number(n: int, args: list[tuple], peers: list[int]) -> list:
    return list(range(1, n + 1))


def _rank(n: int, args: list[tuple], peers: list[int]) -> list:
    out = []
    current_rank = 1
    for i in range(n):
        if i > 0 and peers[i] != peers[i - 1]:
            current_rank = i + 1
        out.append(current_rank)
    return out


def _dense_rank(n: int, args: list[tuple], peers: list[int]) -> list:
    out = []
    rank = 0
    last = object()
    for i in range(n):
        if peers[i] != last:
            rank += 1
            last = peers[i]
        out.append(rank)
    return out


def _percent_rank(n: int, args: list[tuple], peers: list[int]) -> list:
    if n == 1:
        return [0.0]
    ranks = _rank(n, args, peers)
    return [(r - 1) / (n - 1) for r in ranks]


def _cume_dist(n: int, args: list[tuple], peers: list[int]) -> list:
    # Count of rows with peer id <= this row's peer id.
    out: list[float] = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and peers[j + 1] == peers[i]:
            j += 1
        for k in range(i, j + 1):
            out[k] = (j + 1) / n
        i = j + 1
    return out


def _ntile(n: int, args: list[tuple], peers: list[int]) -> list:
    buckets = args[0][0] if args else 1
    out = []
    base, extra = divmod(n, buckets)
    position = 0
    for bucket in range(1, buckets + 1):
        size = base + (1 if bucket <= extra else 0)
        out.extend([bucket] * size)
        position += size
        if position >= n:
            break
    return out[:n]


def _shift(n: int, args: list[tuple], peers: list[int], direction: int, default):
    out = []
    for i in range(n):
        j = i + direction
        out.append(args[j][0] if 0 <= j < n else default)
    return out


def _shift_dynamic(n: int, args: list[tuple], peers: list[int], direction: int):
    out = []
    for i in range(n):
        offset = args[i][1] if args[i][1] is not None else 1
        j = i + direction * offset
        out.append(args[j][0] if 0 <= j < n else None)
    return out


def _first_value(n: int, args: list[tuple], peers: list[int]) -> list:
    first = args[0][0] if n else None
    return [first] * n


def _last_value(n: int, args: list[tuple], peers: list[int]) -> list:
    # Default frame is RANGE UNBOUNDED PRECEDING..CURRENT ROW, so the
    # "last" value is the last row of the current peer group.
    out: list = [None] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and peers[j + 1] == peers[i]:
            j += 1
        for k in range(i, j + 1):
            out[k] = args[j][0]
        i = j + 1
    return out


def _nth_value(n: int, args: list[tuple], peers: list[int]) -> list:
    out = []
    for i in range(n):
        offset = args[i][1]
        if offset is None or offset < 1 or offset > n:
            out.append(None)
        else:
            out.append(args[offset - 1][0])
    return out
