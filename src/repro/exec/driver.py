"""The driver loop (paper Sec. IV-E1).

"The Presto driver loop is more complex than the popular Volcano (pull)
model of recursive iterators, but provides important functionality ...
Every iteration of the loop moves data between all pairs of operators
that can make progress." A driver owns one chain of operators (one
pipeline instance); ``process`` runs iterations until the quantum
expires, the pipeline blocks, or it finishes — so it can be brought to
a known state before yielding its thread (cooperative multitasking,
Sec. IV-F1).
"""

from __future__ import annotations

import enum
import time
from typing import Sequence

from repro.exec.operator import Operator


class DriverStatus(enum.Enum):
    RUNNING = "running"    # made progress, more work available
    BLOCKED = "blocked"    # waiting on an external event
    FINISHED = "finished"


class Driver:
    def __init__(self, operators: Sequence[Operator]):
        assert operators, "a driver needs at least one operator"
        self.operators = list(operators)
        self._finish_propagated = [False] * len(self.operators)
        # Thread-CPU accounting for the scheduler (Sec. IV-F1).
        self.cpu_time_ms = 0.0

    @property
    def source_operator(self) -> Operator:
        return self.operators[0]

    @property
    def sink_operator(self) -> Operator:
        return self.operators[-1]

    def is_finished(self) -> bool:
        # The driver is done when its sink is done — upstream operators
        # may finish early (e.g. a satisfied LIMIT cancels its scan).
        return self.operators[-1].is_finished()

    def close(self) -> None:
        """Release upstream operators after early termination."""
        for operator in self.operators:
            if not operator.is_finished():
                operator.finish()

    def process_once(self) -> bool:
        """One driver-loop iteration; returns True if any data moved or
        any operator state advanced."""
        operators = self.operators
        progressed = False
        for i in range(len(operators) - 1):
            upstream, downstream = operators[i], operators[i + 1]
            # Move a page downstream if both sides are willing.
            if downstream.needs_input() and not upstream.is_blocked():
                page = upstream.get_output()
                if page is not None:
                    downstream.add_input(page)
                    progressed = True
            # Propagate finish.
            if upstream.is_finished() and not self._finish_propagated[i]:
                downstream.finish()
                self._finish_propagated[i] = True
                progressed = True
        # Single-operator drivers (rare) just need finish detection.
        return progressed

    def process(self, quantum_ms: float = 1000.0, max_iterations: int = 10_000) -> DriverStatus:
        """Run until the quantum expires, progress stops, or finished.

        Mirrors the one-second maximum quanta of Sec. IV-F1: after the
        quantum the driver returns to the task queue.
        """
        start = time.perf_counter()
        iterations = 0
        while True:
            progressed = self.process_once()
            iterations += 1
            if self.is_finished():
                self.close()
                self.cpu_time_ms += (time.perf_counter() - start) * 1000
                return DriverStatus.FINISHED
            if not progressed:
                self.cpu_time_ms += (time.perf_counter() - start) * 1000
                return DriverStatus.BLOCKED
            elapsed_ms = (time.perf_counter() - start) * 1000
            if elapsed_ms >= quantum_ms or iterations >= max_iterations:
                self.cpu_time_ms += elapsed_ms
                return DriverStatus.RUNNING

    def retained_bytes(self) -> int:
        return sum(op.retained_bytes() for op in self.operators)


def run_drivers_to_completion(drivers: Sequence[Driver]) -> None:
    """Run a set of interdependent drivers until all finish.

    Used by the single-process executor; the simulated cluster schedules
    drivers through the MLFQ instead.
    """
    pending = list(drivers)
    while pending:
        progressed = False
        still_pending = []
        for driver in pending:
            status = driver.process(quantum_ms=float("inf"))
            if status is DriverStatus.FINISHED:
                progressed = True
            else:
                still_pending.append(driver)
                if status is DriverStatus.RUNNING:
                    progressed = True
        if still_pending and not progressed:
            blocked = [
                type(op).__name__
                for d in still_pending
                for op in d.operators
                if op.is_blocked()
            ]
            from repro.errors import PrestoError

            raise PrestoError(f"Driver deadlock; blocked operators: {blocked}")
        pending = still_pending
