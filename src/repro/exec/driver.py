"""The driver loop (paper Sec. IV-E1).

"The Presto driver loop is more complex than the popular Volcano (pull)
model of recursive iterators, but provides important functionality ...
Every iteration of the loop moves data between all pairs of operators
that can make progress." A driver owns one chain of operators (one
pipeline instance); ``process`` runs iterations until the quantum
expires, the pipeline blocks, or it finishes — so it can be brought to
a known state before yielding its thread (cooperative multitasking,
Sec. IV-F1).
"""

from __future__ import annotations

import enum
import time
from typing import Sequence

from repro.exec.operator import Operator


class DriverStatus(enum.Enum):
    RUNNING = "running"    # made progress, more work available
    BLOCKED = "blocked"    # waiting on an external event
    FINISHED = "finished"


class Driver:
    def __init__(self, operators: Sequence[Operator]):
        assert operators, "a driver needs at least one operator"
        self.operators = list(operators)
        self._finish_propagated = [False] * len(self.operators)
        # Thread-CPU accounting for the scheduler (Sec. IV-F1).
        self.cpu_time_ms = 0.0
        # Fused pipelines (repro.exec.pipeline) defer mid-split kernel
        # time in ``pending_kernel_ms`` and release it in one lump when
        # the split completes; ``process`` charges cpu_time_ms from the
        # pending delta so MLFQ demotion sees split-sized charges, same
        # as an unfused run finishing the split in one quantum.
        self._deferred_ops = [
            op for op in self.operators if hasattr(op, "pending_kernel_ms")
        ]

    def _pending_kernel_ms(self) -> float:
        return sum(op.pending_kernel_ms for op in self._deferred_ops)

    @property
    def source_operator(self) -> Operator:
        return self.operators[0]

    @property
    def sink_operator(self) -> Operator:
        return self.operators[-1]

    def is_finished(self) -> bool:
        # The driver is done when its sink is done — upstream operators
        # may finish early (e.g. a satisfied LIMIT cancels its scan).
        return self.operators[-1].is_finished()

    def close(self) -> None:
        """Release upstream operators after early termination."""
        for operator in self.operators:
            if not operator.is_finished():
                operator.finish()

    def process_once(self) -> bool:
        """One driver-loop iteration; returns True if any data moved or
        any operator state advanced."""
        operators = self.operators
        progressed = False
        # A fused pipeline (repro.exec.pipeline) is a self-driving
        # source: one advance() processes at most one split (quantum
        # cooperation) and may make progress without emitting a page
        # (e.g. absorbing into partial-aggregation state), so its
        # progress is tracked here, not via get_output below.
        source = operators[0]
        advance = getattr(source, "advance", None)
        if advance is not None and not source.is_finished():
            progressed = advance()
        if len(operators) == 1:
            return progressed
        for i in range(len(operators) - 1):
            upstream, downstream = operators[i], operators[i + 1]
            # Move a page downstream if both sides are willing.
            if downstream.needs_input() and not upstream.is_blocked():
                page = upstream.get_output()
                if page is not None:
                    downstream.add_input(page)
                    progressed = True
            # Propagate finish.
            if upstream.is_finished() and not self._finish_propagated[i]:
                downstream.finish()
                self._finish_propagated[i] = True
                progressed = True
        # Single-operator drivers (rare) just need finish detection.
        return progressed

    def process(self, quantum_ms: float = 1000.0, max_iterations: int = 10_000) -> DriverStatus:
        """Run until the quantum expires, progress stops, or finished.

        Mirrors the one-second maximum quanta of Sec. IV-F1: after the
        quantum the driver returns to the task queue.
        """
        start = time.perf_counter()
        pending_before = self._pending_kernel_ms()
        iterations = 0
        while True:
            progressed = self.process_once()
            iterations += 1
            if self.is_finished():
                self.close()
                self._charge_cpu(start, pending_before)
                return DriverStatus.FINISHED
            if not progressed:
                self._charge_cpu(start, pending_before)
                return DriverStatus.BLOCKED
            elapsed_ms = (time.perf_counter() - start) * 1000
            if elapsed_ms >= quantum_ms or iterations >= max_iterations:
                self._charge_cpu(start, pending_before)
                return DriverStatus.RUNNING

    def _charge_cpu(self, start: float, pending_before: float) -> None:
        """Wall time of this process() call, minus kernel time still
        pending inside an unfinished fused split (it will be charged —
        in one lump — on the call where that split completes)."""
        raw = (time.perf_counter() - start) * 1000
        self.cpu_time_ms += raw - (self._pending_kernel_ms() - pending_before)

    def retained_bytes(self) -> int:
        return sum(op.retained_bytes() for op in self.operators)


def run_drivers_to_completion(drivers: Sequence[Driver]) -> None:
    """Run a set of interdependent drivers until all finish.

    Used by the single-process executor; the simulated cluster schedules
    drivers through the MLFQ instead.
    """
    pending = list(drivers)
    while pending:
        progressed = False
        still_pending = []
        for driver in pending:
            status = driver.process(quantum_ms=float("inf"))
            if status is DriverStatus.FINISHED:
                progressed = True
            else:
                still_pending.append(driver)
                if status is DriverStatus.RUNNING:
                    progressed = True
        if still_pending and not progressed:
            blocked = [
                type(op).__name__
                for d in still_pending
                for op in d.operators
                if op.is_blocked()
            ]
            from repro.errors import PrestoError

            raise PrestoError(f"Driver deadlock; blocked operators: {blocked}")
        pending = still_pending
