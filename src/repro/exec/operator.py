"""Operator interface (paper Sec. IV-E1).

A pipeline is a chain of operators, each performing a single,
well-defined computation on pages. The driver loop moves pages between
operators that can make progress; operators therefore expose a
non-blocking push/pull interface plus explicit finish/blocked states so
the driver can bring them "to a known state before yielding the thread"
(cooperative multitasking, Sec. IV-F1).
"""

from __future__ import annotations

from typing import Optional

from repro.exec.page import Page


class Operator:
    """Base operator. Subclasses override the five state methods."""

    #: human-readable name for EXPLAIN ANALYZE / stats
    name = "Operator"

    def __init__(self):
        # Operator-level statistics (paper Sec. VII "Effortless
        # instrumentation": operator-level stats for every query).
        self.input_rows = 0
        self.input_bytes = 0
        self.output_rows = 0
        self.output_bytes = 0

    # -- data flow --------------------------------------------------------

    def needs_input(self) -> bool:
        raise NotImplementedError

    def add_input(self, page: Page) -> None:
        raise NotImplementedError

    def get_output(self) -> Optional[Page]:
        raise NotImplementedError

    def finish(self) -> None:
        """Signal that no more input will arrive."""
        raise NotImplementedError

    def is_finished(self) -> bool:
        raise NotImplementedError

    def is_blocked(self) -> bool:
        """True while waiting on an external event (hash build, shuffle)."""
        return False

    # -- memory accounting ---------------------------------------------------

    def retained_bytes(self) -> int:
        return 0

    # -- stats helpers ----------------------------------------------------------

    def record_input(self, page: Page) -> None:
        self.input_rows += page.row_count
        self.input_bytes += page.size_bytes()

    def record_output(self, page: Page) -> None:
        self.output_rows += page.row_count
        self.output_bytes += page.size_bytes()


class PassthroughState:
    """Mixin-style helper for one-in/one-out streaming operators."""

    def __init__(self):
        self._pending: Optional[Page] = None
        self._finishing = False
        self._finished = False


class StreamingOperator(Operator):
    """Base for operators that transform one input page into one output
    page (filter/project, limit, unnest...)."""

    def __init__(self):
        super().__init__()
        self._pending: Optional[Page] = None
        self._finishing = False
        self._finished = False

    def needs_input(self) -> bool:
        return not self._finishing and self._pending is None

    def add_input(self, page: Page) -> None:
        assert self._pending is None
        self.record_input(page)
        self._pending = self.process(page)

    def get_output(self) -> Optional[Page]:
        page = self._pending
        self._pending = None
        if page is None and self._finishing:
            extra = self.flush()
            if extra is not None:
                self.record_output(extra)
                return extra
            self._finished = True
            return None
        if page is not None:
            self.record_output(page)
        return page

    def finish(self) -> None:
        self._finishing = True

    def is_finished(self) -> bool:
        return self._finished and self._pending is None

    # -- hooks -----------------------------------------------------------------

    def process(self, page: Page) -> Optional[Page]:
        raise NotImplementedError

    def flush(self) -> Optional[Page]:
        """Called after finish(); return trailing output or None when done."""
        return None


class AccumulatingOperator(Operator):
    """Base for blocking operators that must see all input before
    producing any output (hash aggregation, sort, window)."""

    def __init__(self):
        super().__init__()
        self._finishing = False
        self._output: Optional[list[Page]] = None
        self._output_index = 0

    def needs_input(self) -> bool:
        return not self._finishing

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        self.accumulate(page)

    def finish(self) -> None:
        self._finishing = True

    def get_output(self) -> Optional[Page]:
        if not self._finishing:
            return None
        if self._output is None:
            self._output = self.build_output()
        if self._output_index < len(self._output):
            page = self._output[self._output_index]
            self._output_index += 1
            self.record_output(page)
            return page
        return None

    def is_finished(self) -> bool:
        return (
            self._finishing
            and self._output is not None
            and self._output_index >= len(self._output)
        )

    # -- hooks --------------------------------------------------------------------

    def accumulate(self, page: Page) -> None:
        raise NotImplementedError

    def build_output(self) -> list[Page]:
        raise NotImplementedError
