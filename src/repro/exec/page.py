"""Pages — the unit of data the driver loop moves between operators.

A page is a columnar encoding of a sequence of rows (paper Sec. IV-E1):
a fixed row count plus one block per column.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exec.blocks import Block, LazyBlock, make_block
from repro.types import Type

# Target rows per page; matches Presto's default of ~1024-8192 positions.
DEFAULT_PAGE_ROWS = 4096


class Page:
    """An immutable list of equal-length blocks."""

    __slots__ = ("blocks", "row_count")

    def __init__(self, blocks: Sequence[Block], row_count: int | None = None):
        self.blocks = list(blocks)
        if row_count is None:
            if not self.blocks:
                raise ValueError("row_count required for zero-column pages")
            row_count = len(self.blocks[0])
        self.row_count = row_count
        for channel, block in enumerate(self.blocks):
            if len(block) != row_count:
                raise ValueError(
                    f"ragged page: block {channel} has {len(block)} positions, "
                    f"expected {row_count}"
                )

    def __len__(self) -> int:
        return self.row_count

    @property
    def column_count(self) -> int:
        return len(self.blocks)

    def block(self, channel: int) -> Block:
        return self.blocks[channel]

    def size_bytes(self) -> int:
        return sum(block.size_bytes() for block in self.blocks)

    def loaded_size_bytes(self) -> int:
        """Bytes of data actually materialized (lazy blocks count 0 until read)."""
        total = 0
        for block in self.blocks:
            if isinstance(block, LazyBlock) and not block.is_loaded:
                continue
            total += block.size_bytes()
        return total

    def get_row(self, position: int) -> tuple:
        return tuple(block.get(position) for block in self.blocks)

    def rows(self) -> Iterable[tuple]:
        for i in range(self.row_count):
            yield self.get_row(i)

    def copy_positions(self, positions) -> "Page":
        return Page([b.copy_positions(positions) for b in self.blocks], len(positions))

    def region(self, start: int, length: int) -> "Page":
        return Page([b.region(start, length) for b in self.blocks], length)

    def append_column(self, block: Block) -> "Page":
        assert len(block) == self.row_count
        return Page(self.blocks + [block], self.row_count)

    def select_channels(self, channels: Sequence[int]) -> "Page":
        return Page([self.blocks[c] for c in channels], self.row_count)

    def __repr__(self) -> str:
        return f"Page(rows={self.row_count}, columns={self.column_count})"


def page_from_rows(types: Sequence[Type], rows: Sequence[Sequence]) -> Page:
    """Build a page from row-oriented data (used by tests and VALUES)."""
    columns = list(zip(*rows)) if rows else [[] for _ in types]
    if not rows:
        columns = [[] for _ in types]
    blocks = [make_block(t, col) for t, col in zip(types, columns)]
    return Page(blocks, len(rows))


def pages_to_rows(pages: Iterable[Page]) -> list[tuple]:
    """Flatten pages into a list of row tuples (client/result side)."""
    out: list[tuple] = []
    for page in pages:
        out.extend(page.rows())
    return out


def concat_pages(pages: list[Page]) -> Page | None:
    """Concatenate pages (all with the same schema) into one page.

    Encoding-preserving where it is free: primitive columns concatenate
    their numpy arrays, dictionary columns sharing one dictionary object
    concatenate indices (the stripe-wide shared dictionary of the
    columnar scan survives the join build's page consolidation), and
    equal-valued RLE columns just sum counts. Mixed encodings fall back
    to materialized values.
    """
    if not pages:
        return None
    if len(pages) == 1:
        return pages[0]
    blocks = [
        _concat_blocks([page.block(channel) for page in pages])
        for channel in range(pages[0].column_count)
    ]
    return Page(blocks, sum(p.row_count for p in pages))


def _concat_blocks(blocks: list[Block]) -> Block:
    import numpy as np

    from repro.exec.blocks import DictionaryBlock, PrimitiveBlock, RunLengthBlock

    loaded = [b.load() if isinstance(b, LazyBlock) else b for b in blocks]
    first = loaded[0]
    if isinstance(first, PrimitiveBlock) and all(
        isinstance(b, PrimitiveBlock) and b.type is first.type for b in loaded
    ):
        return PrimitiveBlock(
            first.type,
            np.concatenate([b.values for b in loaded]),
            np.concatenate([b.nulls for b in loaded]),
        )
    if isinstance(first, DictionaryBlock) and all(
        isinstance(b, DictionaryBlock) and b.dictionary is first.dictionary
        for b in loaded
    ):
        return DictionaryBlock(
            first.dictionary, np.concatenate([b.indices for b in loaded])
        )
    if isinstance(first, RunLengthBlock) and all(
        isinstance(b, RunLengthBlock) and b.value is first.value for b in loaded
    ):
        return RunLengthBlock(first.value, sum(len(b) for b in loaded))
    values: list = []
    for block in loaded:
        values.extend(block.to_values())
    return make_block_from_any(values, first)


def make_block_from_any(values: list, template: Block) -> Block:
    """Build a block for ``values`` matching the template's storage class."""
    from repro.exec.blocks import ObjectBlock, PrimitiveBlock

    base = template.unwrap() if not isinstance(template, PrimitiveBlock) else template
    if isinstance(base, PrimitiveBlock):
        return make_block(base.type, values)
    return ObjectBlock(values)
