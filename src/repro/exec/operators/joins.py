"""Join operators: hash join (build + lookup), nested-loop (cross),
semi-join, and index nested-loop join.

A hash join spans two pipelines linked by a :class:`JoinBridge`: the
build pipeline fills the hash table, the probe pipeline blocks until it
is ready (paper Sec. IV-D: "a task performing a hash-join must contain
at least two pipelines"). The lookup side emits build columns as
dictionary blocks whose dictionary references the hash table's blocks,
reproducing the compressed intermediate results of Sec. V-E.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.connectors.api import Index
from repro.exec import kernels
from repro.exec.blocks import Block, DictionaryBlock, ObjectBlock, make_block
from repro.exec.kernels import VectorMultiMap
from repro.exec.operator import Operator, StreamingOperator
from repro.exec.page import DEFAULT_PAGE_ROWS, Page, concat_pages
from repro.planner.nodes import JoinType
from repro.types import Type


class JoinBridge:
    """Hands the built lookup structure from build to probe pipeline.

    The build side publishes either a :class:`VectorMultiMap` (primitive
    keys, batch probes) or a ``dict``-of-positions hash table (object
    keys, row-at-a-time probes). When a multimap exists but a probe page
    turns out to be object-typed, :meth:`lookup_dict` lazily derives the
    equivalent dict so both paths see the same build rows.
    """

    def __init__(self):
        self.ready = False
        self.hash_table: dict[tuple, list[int]] = {}
        self.multimap: Optional[VectorMultiMap] = None
        self.pages: Optional[Page] = None  # build side, concatenated
        self.build_row_count = 0
        self.matched: Optional[np.ndarray] = None  # for RIGHT/FULL joins
        self._key_channels: list[int] = []
        self._dict_built = False

    def set(
        self,
        hash_table: dict,
        page: Optional[Page],
        row_count: int,
        multimap: Optional[VectorMultiMap] = None,
        key_channels: Sequence[int] = (),
    ) -> None:
        self.hash_table = hash_table
        self.multimap = multimap
        self.pages = page
        self.build_row_count = row_count
        # host-only: outer-join bookkeeping over host match positions
        self.matched = np.zeros(row_count, dtype=np.bool_)
        self._key_channels = list(key_channels)
        self._dict_built = multimap is None
        self.ready = True

    def lookup_dict(self) -> dict[tuple, list[int]]:
        """The dict view of the build side, derived on first use when the
        build went through the vector path."""
        if self._dict_built:
            return self.hash_table
        self._dict_built = True
        table: dict[tuple, list[int]] = {}
        if self.pages is not None:
            key_columns = [self.pages.block(c).to_values() for c in self._key_channels]
            for row in range(self.pages.row_count):  # row-path: dict view for object probes
                key = tuple(col[row] for col in key_columns)
                if any(k is None for k in key):
                    continue  # SQL equi-joins never match NULL keys
                table.setdefault(key, []).append(row)
        self.hash_table = table
        return table


class HashBuildOperator(Operator):
    """Build pipeline sink: accumulates the lookup structure."""

    name = "HashBuild"

    def __init__(
        self,
        bridge: JoinBridge,
        key_channels: Sequence[int],
        dynamic_filters: Sequence[tuple[str, int]] = (),
        on_dynamic_filter: Optional[Callable] = None,
    ):
        super().__init__()
        self.bridge = bridge
        self.key_channels = list(key_channels)
        # (filter id, key channel) pairs to summarize at finish time
        # (repro.exec.dynamic_filters); the callback publishes them.
        self.dynamic_filter_specs = list(dynamic_filters)
        self.on_dynamic_filter = on_dynamic_filter
        self._pages: list[Page] = []
        self._finished = False
        self._retained = 0
        # Spilled input runs (Sec. IV-F2): under memory revocation the
        # accumulated build pages go to disk and are read back at finish
        # time, so the built table is byte-identical either way.
        self._spilled_runs: list[tuple[list[Page], int]] = []
        self.spill_context = None

    def needs_input(self) -> bool:
        return not self._finished

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        self._pages.append(page)
        self._retained += page.size_bytes()

    def get_output(self) -> Optional[Page]:
        return None

    # -- revocation (spilling) ------------------------------------------------

    def revocable_bytes(self) -> int:
        return 0 if self._finished else self._retained

    def revoke(self) -> int:
        """Spill the build input collected so far as one run."""
        if self._finished or not self._pages:
            return 0
        released = self._retained
        self._spilled_runs.append((self._pages, released))
        if self.spill_context is not None:
            self.spill_context.write(released)
        self._pages = []
        self._retained = 0
        return released

    def _collect_input(self) -> list[Page]:
        """All build pages in arrival order: spilled runs (read back from
        disk) first, then whatever is still in memory."""
        if not self._spilled_runs:
            return self._pages
        pages: list[Page] = []
        for run, run_bytes in self._spilled_runs:
            if self.spill_context is not None:
                self.spill_context.read(run_bytes)
            pages.extend(run)
        pages.extend(self._pages)
        self._spilled_runs = []
        return pages

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        combined = concat_pages(self._collect_input())
        row_count = combined.row_count if combined is not None else 0
        if self.dynamic_filter_specs and self.on_dynamic_filter is not None:
            from repro.exec.dynamic_filters import DynamicFilter

            for filter_id, channel in self.dynamic_filter_specs:
                block = combined.block(channel) if combined is not None else None
                self.on_dynamic_filter(
                    DynamicFilter.from_block(filter_id, block, row_count)
                )
        multimap = None
        if combined is not None:
            multimap = VectorMultiMap.build(
                [combined.block(c) for c in self.key_channels], row_count
            )
        if multimap is not None:
            self.bridge.set(
                {}, combined, row_count, multimap, key_channels=self.key_channels
            )
            return
        table: dict[tuple, list[int]] = {}
        if combined is not None:
            key_columns = [combined.block(c).to_values() for c in self.key_channels]
            for row in range(row_count):  # row-path: object-typed join keys
                key = tuple(col[row] for col in key_columns)
                if any(k is None for k in key):
                    continue  # SQL equi-joins never match NULL keys
                table.setdefault(key, []).append(row)
        self.bridge.set(table, combined, row_count, key_channels=self.key_channels)

    def is_finished(self) -> bool:
        return self._finished

    def retained_bytes(self) -> int:
        return self._retained


class LookupJoinOperator(StreamingOperator):
    """Probe side of a hash join."""

    name = "LookupJoin"

    def __init__(
        self,
        bridge: JoinBridge,
        probe_key_channels: Sequence[int],
        probe_output_channels: Sequence[int],
        build_output_channels: Sequence[int],
        join_type: JoinType,
        residual_filter: Optional[Callable] = None,
        build_output_types: Sequence[Type] | None = None,
    ):
        super().__init__()
        self.bridge = bridge
        self.probe_key_channels = list(probe_key_channels)
        self.probe_output_channels = list(probe_output_channels)
        self.build_output_channels = list(build_output_channels)
        self.join_type = join_type
        self.residual_filter = residual_filter
        self.build_output_types = list(build_output_types or [])
        self._flushed_unmatched = False

    def is_blocked(self) -> bool:
        return not self.bridge.ready

    def needs_input(self) -> bool:
        return self.bridge.ready and super().needs_input()

    def process(self, page: Page) -> Optional[Page]:
        outer = self.join_type in (JoinType.LEFT, JoinType.FULL)
        pairs = None
        if self.bridge.multimap is not None:
            pairs = self.bridge.multimap.probe(
                [page.block(c) for c in self.probe_key_channels], page.row_count
            )
        if pairs is not None:
            probe_positions, build_positions = self._expand_outer(page, pairs, outer)
        else:
            probe_positions, build_positions = self._probe_rows(page, outer)
        if self.residual_filter is not None and len(probe_positions):
            probe_positions, build_positions = self._apply_residual(
                page, list(probe_positions), list(build_positions), outer
            )
        if not len(probe_positions):
            return None
        if self.join_type in (JoinType.RIGHT, JoinType.FULL):
            # host-only: match positions are host arrays (Block splicing)
            build_idx = np.asarray(build_positions, dtype=np.int64)
            self.bridge.matched[build_idx[build_idx >= 0]] = True
        if self.join_type is JoinType.RIGHT:
            # RIGHT joins emit only matched probe rows here; unmatched
            # build rows are emitted at flush time.
            pass
        return self._build_page(page, probe_positions, build_positions)

    def _expand_outer(
        self, page: Page, pairs: tuple[np.ndarray, np.ndarray], outer: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Splice NULL-extended rows for unmatched probes into the batch
        match pairs, preserving probe-row order."""
        probe_positions, build_positions = pairs
        if not outer:
            return probe_positions, build_positions
        # host-only: outer-row expansion over host match positions
        match_counts = np.bincount(probe_positions, minlength=page.row_count)
        unmatched = np.flatnonzero(match_counts == 0)  # host-only
        if not len(unmatched):
            return probe_positions, build_positions
        probe_positions = np.concatenate([probe_positions, unmatched])  # host-only
        build_positions = np.concatenate(  # host-only
            [build_positions, np.full(len(unmatched), -1, dtype=np.int64)]
        )
        order = np.argsort(probe_positions, kind="stable")  # host-only
        return probe_positions[order], build_positions[order]

    def _probe_rows(self, page: Page, outer: bool) -> tuple[list[int], list[int]]:
        table = self.bridge.lookup_dict()
        key_columns = [page.block(c).to_values() for c in self.probe_key_channels]
        probe_positions: list[int] = []
        build_positions: list[int] = []
        for row in range(page.row_count):  # row-path: object-typed probe keys
            key = tuple(col[row] for col in key_columns)
            matches = None if any(k is None for k in key) else table.get(key)
            if matches:
                for build_row in matches:
                    probe_positions.append(row)
                    build_positions.append(build_row)
            elif outer:
                probe_positions.append(row)
                build_positions.append(-1)
        return probe_positions, build_positions

    def _apply_residual(self, page, probe_positions, build_positions, outer):
        probe_rows = [page.get_row(p) for p in probe_positions]
        build_page = self.bridge.pages
        kept_probe: list[int] = []
        kept_build: list[int] = []
        unmatched_probe: set[int] = set()
        matched_probe: set[int] = set()
        for probe_row_idx, build_row in zip(probe_positions, build_positions):
            if build_row < 0:
                unmatched_probe.add(probe_row_idx)
                continue
            combined = page.get_row(probe_row_idx) + build_page.get_row(build_row)
            if self.residual_filter(combined) is True:
                kept_probe.append(probe_row_idx)
                kept_build.append(build_row)
                matched_probe.add(probe_row_idx)
            elif outer:
                unmatched_probe.add(probe_row_idx)
        if outer:
            for probe_row_idx in sorted(unmatched_probe - matched_probe):
                kept_probe.append(probe_row_idx)
                kept_build.append(-1)
        return kept_probe, kept_build

    def _build_page(self, probe_page: Page, probe_positions, build_positions) -> Page:
        blocks: list[Block] = []
        # host-only: match positions splice host Blocks
        probe_idx = np.asarray(probe_positions, dtype=np.int64)
        for channel in self.probe_output_channels:
            blocks.append(probe_page.block(channel).copy_positions(probe_idx))
        build_idx = np.asarray(build_positions, dtype=np.int64)  # host-only
        build_page = self.bridge.pages
        has_unmatched = (build_idx < 0).any()
        for i, channel in enumerate(self.build_output_channels):
            if build_page is None:
                blocks.append(ObjectBlock([None] * len(build_positions)))
            elif has_unmatched:
                values = build_page.block(channel).to_values()
                blocks.append(
                    ObjectBlock(
                        [values[j] if j >= 0 else None for j in build_positions]
                    )
                )
            else:
                # Compressed intermediate: dictionary over the hash table's
                # block with the match positions as indices (Sec. V-E).
                blocks.append(
                    DictionaryBlock(build_page.block(channel), build_idx)
                )
        return Page(blocks, len(probe_positions))

    def flush(self) -> Optional[Page]:
        if self.join_type not in (JoinType.RIGHT, JoinType.FULL):
            return None
        if self._flushed_unmatched:
            return None
        self._flushed_unmatched = True
        bridge = self.bridge
        if bridge.pages is None:
            return None
        unmatched = np.flatnonzero(~bridge.matched)  # host-only
        if len(unmatched) == 0:
            return None
        blocks: list[Block] = []
        for _ in self.probe_output_channels:
            blocks.append(ObjectBlock([None] * len(unmatched)))
        for channel in self.build_output_channels:
            blocks.append(bridge.pages.block(channel).copy_positions(unmatched))
        return Page(blocks, len(unmatched))


class NestedLoopBuildOperator(Operator):
    """Collects the build side of a cross join."""

    name = "NestedLoopBuild"

    def __init__(self, bridge: JoinBridge):
        super().__init__()
        self.bridge = bridge
        self._pages: list[Page] = []
        self._finished = False

    def needs_input(self) -> bool:
        return not self._finished

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        self._pages.append(page)

    def get_output(self) -> Optional[Page]:
        return None

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        combined = concat_pages(self._pages)
        count = combined.row_count if combined is not None else 0
        self.bridge.set({}, combined, count)

    def is_finished(self) -> bool:
        return self._finished

    def retained_bytes(self) -> int:
        return sum(p.size_bytes() for p in self._pages)


class NestedLoopJoinOperator(StreamingOperator):
    """Cross join: emits the cartesian product, page by page."""

    name = "NestedLoopJoin"

    def __init__(self, bridge: JoinBridge):
        super().__init__()
        self.bridge = bridge

    def is_blocked(self) -> bool:
        return not self.bridge.ready

    def needs_input(self) -> bool:
        return self.bridge.ready and super().needs_input()

    def process(self, page: Page) -> Optional[Page]:
        build_page = self.bridge.pages
        if build_page is None or build_page.row_count == 0:
            return None
        build_count = build_page.row_count
        # host-only: cross-product positions splice host Blocks
        probe_positions = np.repeat(np.arange(page.row_count), build_count)
        build_positions = np.tile(np.arange(build_count), page.row_count)
        blocks = [page.block(c).copy_positions(probe_positions) for c in range(page.column_count)]
        for channel in range(build_page.column_count):
            blocks.append(DictionaryBlock(build_page.block(channel), build_positions))
        return Page(blocks, len(probe_positions))


class SemiJoinBridge:
    def __init__(self):
        self.ready = False
        self.values: set = set()
        self.has_null = False

    def set(self, values: set, has_null: bool) -> None:
        self.values = values
        self.has_null = has_null
        self.ready = True


class SemiJoinBuildOperator(Operator):
    """Collects the filtering side of IN (subquery) into a set.

    Accepts one or more key channels; multi-key form backs decorrelated
    EXISTS/IN subqueries. A key tuple containing any NULL counts as a
    "null key" for the three-valued IN semantics.
    """

    name = "SemiJoinBuild"

    def __init__(
        self,
        bridge: SemiJoinBridge,
        key_channels,
        dynamic_filters: Sequence[tuple[str, int]] = (),
        on_dynamic_filter: Optional[Callable] = None,
        null_aware: bool = False,
    ):
        super().__init__()
        self.bridge = bridge
        self.key_channels = (
            list(key_channels) if isinstance(key_channels, (list, tuple)) else [key_channels]
        )
        # (filter id, key index) pairs to summarize at finish time.
        self.dynamic_filter_specs = list(dynamic_filters)
        self.on_dynamic_filter = on_dynamic_filter
        # Null-aware mode (INTERSECT/EXCEPT short-circuit): NULL is an
        # ordinary key value — stored in the lookup set so NULL = NULL
        # matches. ``_has_null`` is still tracked to keep dynamic
        # filters sound (a domain filter would prune NULL probe rows).
        self.null_aware = null_aware
        self._values: set = set()
        self._has_null = False
        self._finished = False

    def needs_input(self) -> bool:
        return not self._finished

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        key_blocks = [page.block(c) for c in self.key_channels]
        fact = kernels.factorize(key_blocks, page.row_count)
        if fact is not None:
            # One set insert per distinct key instead of one per row.
            for key in kernels.key_tuples(key_blocks, fact.first_positions):
                if any(k is None for k in key):
                    self._has_null = True
                    if self.null_aware:
                        self._values.add(key if len(key) > 1 else key[0])
                else:
                    self._values.add(key if len(key) > 1 else key[0])
            return
        columns = [block.to_values() for block in key_blocks]
        for row in range(page.row_count):  # row-path: object-typed keys
            key = tuple(col[row] for col in columns)
            if any(k is None for k in key):
                self._has_null = True
                if self.null_aware:
                    self._values.add(key if len(key) > 1 else key[0])
            else:
                self._values.add(key if len(key) > 1 else key[0])

    def get_output(self) -> Optional[Page]:
        return None

    def finish(self) -> None:
        if not self._finished:
            self._finished = True
            publish = self.dynamic_filter_specs and self.on_dynamic_filter is not None
            if publish and self.null_aware and self._has_null:
                # A NULL build key matches NULL probe rows in null-aware
                # mode, but a value-domain filter would prune them at
                # the scan. Stay unfiltered rather than lose rows.
                publish = False
            if publish:
                from repro.exec.dynamic_filters import DynamicFilter

                for filter_id, index in self.dynamic_filter_specs:
                    # _values holds only complete non-null key tuples —
                    # exactly the keys a probe row could still match.
                    if len(self.key_channels) > 1:
                        raw = [key[index] for key in self._values]
                    else:
                        raw = list(self._values)
                    self.on_dynamic_filter(DynamicFilter.from_values(filter_id, raw))
            self.bridge.set(self._values, self._has_null)

    def is_finished(self) -> bool:
        return self._finished


class SemiJoinOperator(StreamingOperator):
    """Appends the IN-match boolean column (ANSI three-valued)."""

    name = "SemiJoin"

    def __init__(self, bridge: SemiJoinBridge, key_channels, null_aware: bool = False):
        super().__init__()
        self.bridge = bridge
        self.key_channels = (
            list(key_channels) if isinstance(key_channels, (list, tuple)) else [key_channels]
        )
        # Null-aware mode: plain set membership, strictly TRUE/FALSE
        # (NULL = NULL matches) — the distinct-based comparison of
        # INTERSECT/EXCEPT, not the three-valued IN semantics.
        self.null_aware = null_aware

    def is_blocked(self) -> bool:
        return not self.bridge.ready

    def needs_input(self) -> bool:
        return self.bridge.ready and super().needs_input()

    def process(self, page: Page) -> Optional[Page]:
        lookup = self.bridge.values
        has_null = self.bridge.has_null
        multi = len(self.key_channels) > 1
        null_aware = self.null_aware
        key_blocks = [page.block(c) for c in self.key_channels]
        fact = kernels.factorize(key_blocks, page.row_count)
        if fact is not None:
            # One membership probe per distinct key; broadcast by group id.
            per_group: list[Optional[bool]] = []
            for key in kernels.key_tuples(key_blocks, fact.first_positions):
                probe = key if multi else key[0]
                if null_aware:
                    per_group.append(probe in lookup)
                    continue
                if any(k is None for k in key):
                    per_group.append(None)
                    continue
                per_group.append(
                    True if probe in lookup else (None if has_null else False)
                )
            matches = [per_group[g] for g in fact.group_ids.tolist()]
            return page.append_column(ObjectBlock(matches))
        columns = [block.to_values() for block in key_blocks]
        matches = []
        for row in range(page.row_count):  # row-path: object-typed keys
            key = tuple(col[row] for col in columns)
            probe = key if multi else key[0]
            if null_aware:
                matches.append(probe in lookup)
                continue
            if any(k is None for k in key):
                matches.append(None)
                continue
            if probe in lookup:
                matches.append(True)
            else:
                matches.append(None if has_null else False)
        return page.append_column(ObjectBlock(matches))


class IndexJoinOperator(StreamingOperator):
    """Index nested-loop join against a connector-provided index
    (paper Sec. IV-C1: joining against production data stores)."""

    name = "IndexJoin"

    def __init__(
        self,
        index: Index,
        probe_key_channels: Sequence[int],
        index_output_types: Sequence[Type],
        join_type: JoinType = JoinType.INNER,
    ):
        super().__init__()
        self.index = index
        self.probe_key_channels = list(probe_key_channels)
        self.index_output_types = list(index_output_types)
        self.join_type = join_type
        self.lookups = 0

    def process(self, page: Page) -> Optional[Page]:
        key_columns = [page.block(c).to_values() for c in self.probe_key_channels]
        keys = [  # row-path: connector Index.lookup takes python key tuples
            tuple(col[row] for col in key_columns) for row in range(page.row_count)
        ]
        results = self.index.lookup(keys)
        self.lookups += len(keys)
        probe_positions: list[int] = []
        index_rows: list[tuple] = []
        outer = self.join_type is JoinType.LEFT
        for row, matches in enumerate(results):
            if matches:
                for match in matches:
                    probe_positions.append(row)
                    index_rows.append(match)
            elif outer:
                probe_positions.append(row)
                index_rows.append(tuple([None] * len(self.index_output_types)))
        if not probe_positions:
            return None
        blocks = [
            page.block(c).copy_positions(probe_positions)
            for c in range(page.column_count)
        ]
        for i, type_ in enumerate(self.index_output_types):
            blocks.append(make_block(type_, [r[i] for r in index_rows]))
        return Page(blocks, len(probe_positions))
