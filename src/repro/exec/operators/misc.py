"""Unnest, table writer/finish, and local exchange operators."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.connectors.api import PageSink
from repro.exec.blocks import ObjectBlock, make_block
from repro.exec.operator import Operator, StreamingOperator
from repro.exec.page import Page
from repro.types import BIGINT, Type


class UnnestOperator(StreamingOperator):
    """Expands array/map columns into rows (paper Sec. IV-A data types)."""

    name = "Unnest"

    def __init__(
        self,
        replicate_channels: Sequence[int],
        unnest_channels: Sequence[tuple[int, int]],  # (channel, produced width)
        output_types: Sequence[Type],
        with_ordinality: bool = False,
    ):
        super().__init__()
        self.replicate_channels = list(replicate_channels)
        self.unnest_channels = list(unnest_channels)
        self.output_types = list(output_types)
        self.with_ordinality = with_ordinality

    def process(self, page: Page) -> Optional[Page]:
        out_rows: list[tuple] = []
        unnest_values = [
            page.block(channel).to_values() for channel, _ in self.unnest_channels
        ]
        for row in range(page.row_count):  # row-path: unnest expands ARRAY/MAP objects
            replicated = tuple(page.block(c).get(row) for c in self.replicate_channels)
            expanded: list[list] = []
            for (channel, width), values in zip(self.unnest_channels, unnest_values):
                value = values[row]
                if value is None:
                    expanded.append([])
                elif isinstance(value, dict):
                    expanded.append([(k, v) for k, v in value.items()])
                else:
                    if width == 1:
                        expanded.append([(v,) for v in value])
                    else:
                        expanded.append([tuple(v) for v in value])
            height = max((len(e) for e in expanded), default=0)
            for i in range(height):
                row_out = list(replicated)
                for (channel, width), items in zip(self.unnest_channels, expanded):
                    if i < len(items):
                        row_out.extend(items[i])
                    else:
                        row_out.extend([None] * width)
                if self.with_ordinality:
                    row_out.append(i + 1)
                out_rows.append(tuple(row_out))
        if not out_rows:
            return None
        blocks = [
            make_block(t, [r[i] for r in out_rows])
            for i, t in enumerate(self.output_types)
        ]
        return Page(blocks, len(out_rows))


class SampleOperator(StreamingOperator):
    """TABLESAMPLE execution: BERNOULLI keeps each row independently with
    probability ``fraction`` (deterministic hash stream, reproducible
    within a run); SYSTEM keeps or drops whole pages."""

    name = "Sample"

    def __init__(self, fraction: float, method: str = "BERNOULLI"):
        super().__init__()
        self.fraction = fraction
        self.method = method
        self._state = 0x853C49E6748FEA9B

    def _draw(self) -> float:
        self._state = (self._state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        return (self._state >> 11) / float(1 << 53)

    def process(self, page: Page) -> Optional[Page]:
        if self.fraction >= 1.0:
            return page
        if self.fraction <= 0.0:
            return None
        if self.method == "SYSTEM":
            return page if self._draw() < self.fraction else None
        # row-path: one RNG draw per row; draw order is part of the semantics
        positions = [i for i in range(page.row_count) if self._draw() < self.fraction]
        if not positions:
            return None
        return page.copy_positions(positions)


class TableWriterOperator(Operator):
    """Streams pages into a connector Data Sink (paper Sec. IV-E3)."""

    name = "TableWriter"

    def __init__(self, sink: PageSink):
        super().__init__()
        self.sink = sink
        self.rows_written = 0
        self.bytes_written = 0
        self._finishing = False
        self._emitted = False
        self.fragment = None

    def needs_input(self) -> bool:
        return not self._finishing

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        self.sink.append(page)
        self.rows_written += page.row_count
        self.bytes_written += page.size_bytes()

    def get_output(self) -> Optional[Page]:
        if not self._finishing or self._emitted:
            return None
        self._emitted = True
        self.fragment = self.sink.finish()
        # Output (row count, commit fragment): the fragment travels with
        # the data through the gather to the TableFinish stage.
        return Page(
            [make_block(BIGINT, [self.rows_written]), ObjectBlock([self.fragment])], 1
        )

    def finish(self) -> None:
        self._finishing = True

    def is_finished(self) -> bool:
        return self._finishing and self._emitted


class TableFinishOperator(Operator):
    """Commits the write through the Metadata API and reports row count."""

    name = "TableFinish"

    def __init__(self, commit):
        super().__init__()
        # commit: callable(fragments: list) -> None
        self.commit = commit
        self.fragments: list = []
        self.total_rows = 0
        self._finishing = False
        self._emitted = False

    def needs_input(self) -> bool:
        return not self._finishing

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        # Block-level access instead of a per-row page walk: column 0 is
        # the per-sink row count, column 1 (when present) the fragment.
        self.total_rows += sum(count or 0 for count in page.block(0).to_values())
        if page.column_count > 1:
            self.fragments.extend(
                fragment
                for fragment in page.block(1).to_values()
                if fragment is not None
            )

    def add_fragment(self, fragment) -> None:
        if fragment is not None:
            self.fragments.append(fragment)

    def get_output(self) -> Optional[Page]:
        if not self._finishing or self._emitted:
            return None
        self._emitted = True
        self.commit(self.fragments)
        return Page([make_block(BIGINT, [self.total_rows])], 1)

    def finish(self) -> None:
        self._finishing = True

    def is_finished(self) -> bool:
        return self._finishing and self._emitted


class LocalBuffer:
    """A simple page buffer linking pipelines within one task
    (the paper's local in-memory shuffle, Sec. IV-D)."""

    def __init__(self):
        self.pages: list[Page] = []
        self._producers = 0
        self._finished_producers = 0

    def register_producer(self) -> None:
        self._producers += 1

    def producer_finished(self) -> None:
        self._finished_producers += 1

    @property
    def no_more_pages(self) -> bool:
        return self._producers > 0 and self._finished_producers >= self._producers

    def add(self, page: Page) -> None:
        self.pages.append(page)

    def poll(self) -> Optional[Page]:
        if self.pages:
            return self.pages.pop(0)
        return None


class LocalExchangeSinkOperator(Operator):
    """Terminal operator of a feeding pipeline; pushes into a LocalBuffer.

    ``channel_mapping`` reorders this producer's columns into the
    exchange's output layout (used by UNION, whose inputs may produce
    columns in different orders).
    """

    name = "LocalExchangeSink"

    def __init__(self, buffer: LocalBuffer, channel_mapping: Sequence[int] | None = None):
        super().__init__()
        self.buffer = buffer
        self.channel_mapping = list(channel_mapping) if channel_mapping is not None else None
        buffer.register_producer()
        self._finished = False

    def needs_input(self) -> bool:
        return not self._finished

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        if self.channel_mapping is not None:
            page = page.select_channels(self.channel_mapping)
        self.buffer.add(page)

    def get_output(self) -> Optional[Page]:
        return None

    def finish(self) -> None:
        if not self._finished:
            self._finished = True
            self.buffer.producer_finished()

    def is_finished(self) -> bool:
        return self._finished


class LocalExchangeSourceOperator(Operator):
    """Source operator draining a LocalBuffer."""

    name = "LocalExchangeSource"

    def __init__(self, buffer: LocalBuffer):
        super().__init__()
        self.buffer = buffer

    def needs_input(self) -> bool:
        return False

    def add_input(self, page: Page) -> None:
        raise AssertionError("LocalExchangeSource takes no input")

    def get_output(self) -> Optional[Page]:
        page = self.buffer.poll()
        if page is None:
            return None
        self.record_output(page)
        return page

    def finish(self) -> None:
        pass

    def is_finished(self) -> bool:
        return self.buffer.no_more_pages and not self.buffer.pages

    def is_blocked(self) -> bool:
        return not self.buffer.pages and not self.buffer.no_more_pages
