"""Core operators: sources, filter/project, limit, output."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.connectors.api import Connector, PageSource, Split
from repro.exec.operator import Operator, StreamingOperator
from repro.exec.page import Page
from repro.exec.page_processor import PageProcessor
from repro.planner import expressions as ir
from repro.planner.symbols import Symbol


class ValuesOperator(Operator):
    """Source operator emitting a fixed list of pages."""

    name = "Values"

    def __init__(self, pages: list[Page]):
        super().__init__()
        self._pages = list(pages)
        self._index = 0

    def needs_input(self) -> bool:
        return False

    def add_input(self, page: Page) -> None:
        raise AssertionError("Values takes no input")

    def get_output(self) -> Optional[Page]:
        if self._index < len(self._pages):
            page = self._pages[self._index]
            self._index += 1
            self.record_output(page)
            return page
        return None

    def finish(self) -> None:
        self._index = len(self._pages)

    def is_finished(self) -> bool:
        return self._index >= len(self._pages)


class TableScanOperator(Operator):
    """Source operator reading splits through the Data Source API.

    Splits are delivered incrementally via :meth:`add_split` (the split
    queue of Sec. IV-D3); ``no_more_splits`` marks the end.
    """

    name = "TableScan"

    def __init__(self, connector: Connector, columns: Sequence[str]):
        super().__init__()
        self.connector = connector
        self.columns = list(columns)
        self._splits: list[Split] = []
        self._source: Optional[PageSource] = None
        self._no_more_splits = False
        self.completed_splits = 0
        self.completed_bytes = 0
        # Accumulated simulated time-to-first-byte of opened splits.
        self.opened_latency_ms = 0.0

    def io_cost_ms(self) -> float:
        """Simulated I/O time consumed so far: per-split latency plus
        bytes over the connector's read bandwidth."""
        bandwidth = getattr(self.connector, "read_bandwidth_bytes_per_ms", float("inf"))
        transfer = self.completed_bytes / bandwidth if bandwidth else 0.0
        return self.opened_latency_ms + transfer

    def add_split(self, split: Split) -> None:
        if self._no_more_splits:
            # Early-terminated scans (a satisfied LIMIT finished the
            # pipeline) drop late-arriving splits.
            return
        self._splits.append(split)

    def no_more_splits(self) -> None:
        self._no_more_splits = True

    @property
    def queued_splits(self) -> int:
        return len(self._splits)

    def needs_input(self) -> bool:
        return False

    def add_input(self, page: Page) -> None:
        raise AssertionError("TableScan takes no input")

    def get_output(self) -> Optional[Page]:
        while True:
            if self._source is None:
                if not self._splits:
                    return None
                split = self._splits.pop(0)
                self.opened_latency_ms += split.read_latency_ms
                self._source = self.connector.page_source(split, self.columns)
            page = self._source.next_page()
            if page is None:
                self.completed_bytes += self._source.completed_bytes
                self._source.close()
                self._source = None
                self.completed_splits += 1
                continue
            self.record_output(page)
            return page

    def finish(self) -> None:
        self._no_more_splits = True
        self._splits.clear()
        if self._source is not None:
            self._source.close()
            self._source = None

    def is_finished(self) -> bool:
        return self._no_more_splits and not self._splits and self._source is None

    def is_blocked(self) -> bool:
        # Source operators are "blocked" while waiting for splits.
        return not self._no_more_splits and not self._splits and self._source is None


class FilterProjectOperator(StreamingOperator):
    """Fused filter + projection over a PageProcessor (Sec. V-E)."""

    name = "FilterProject"

    def __init__(
        self,
        input_symbols: Sequence[Symbol],
        filter_expr: Optional[ir.RowExpression],
        projections: Sequence[ir.RowExpression],
        interpreted: bool = False,
    ):
        super().__init__()
        self.processor = PageProcessor(
            input_symbols, filter_expr, projections, interpreted=interpreted
        )

    def process(self, page: Page) -> Optional[Page]:
        return self.processor.process(page)


class LimitOperator(StreamingOperator):
    """Stops after N rows; upstream finishes early (paper Sec. IV-D3:
    LIMIT queries complete before all splits are enumerated)."""

    name = "Limit"

    def __init__(self, count: int):
        super().__init__()
        self.remaining = count

    def needs_input(self) -> bool:
        return self.remaining > 0 and super().needs_input()

    def process(self, page: Page) -> Optional[Page]:
        if self.remaining <= 0:
            return None
        if page.row_count <= self.remaining:
            self.remaining -= page.row_count
            return page
        page = page.region(0, self.remaining)
        self.remaining = 0
        return page

    def is_finished(self) -> bool:
        return super().is_finished() or (self.remaining <= 0 and self._pending is None)


class EnforceSingleRowOperator(StreamingOperator):
    """Scalar subqueries must produce exactly one row."""

    name = "EnforceSingleRow"

    def __init__(self, column_count: int):
        super().__init__()
        self._seen = 0
        self._page: Optional[Page] = None
        self._column_count = column_count
        self._emitted = False

    def process(self, page: Page) -> Optional[Page]:
        self._seen += page.row_count
        if self._seen > 1:
            from repro.errors import SemanticError

            raise SemanticError("Scalar sub-query has returned multiple rows")
        if page.row_count:
            self._page = page
        return None

    def flush(self) -> Optional[Page]:
        if self._emitted:
            return None
        self._emitted = True
        if self._page is not None:
            return self._page
        # Zero rows: a scalar subquery yields NULL.
        from repro.exec.blocks import ObjectBlock

        return Page([ObjectBlock([None]) for _ in range(self._column_count)], 1)


class OutputCollectorOperator(Operator):
    """Terminal sink: collects pages for the client (or a test)."""

    name = "Output"

    def __init__(self, channels: Sequence[int] | None = None, consumer: Callable[[Page], None] | None = None):
        super().__init__()
        self.pages: list[Page] = []
        self.channels = list(channels) if channels is not None else None
        self.consumer = consumer
        self._finished = False

    def needs_input(self) -> bool:
        return not self._finished

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        if self.channels is not None:
            page = page.select_channels(self.channels)
        if self.consumer is not None:
            self.consumer(page)
        else:
            self.pages.append(page)

    def get_output(self) -> Optional[Page]:
        return None

    def finish(self) -> None:
        self._finished = True

    def is_finished(self) -> bool:
        return self._finished
