"""Core operators: sources, filter/project, limit, output."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.connectors.api import Connector, PageSource, Split
from repro.exec.operator import Operator, StreamingOperator
from repro.exec.page import Page
from repro.exec.page_processor import PageProcessor
from repro.planner import expressions as ir
from repro.planner.symbols import Symbol


class ValuesOperator(Operator):
    """Source operator emitting a fixed list of pages."""

    name = "Values"

    def __init__(self, pages: list[Page]):
        super().__init__()
        self._pages = list(pages)
        self._index = 0

    def needs_input(self) -> bool:
        return False

    def add_input(self, page: Page) -> None:
        raise AssertionError("Values takes no input")

    def get_output(self) -> Optional[Page]:
        if self._index < len(self._pages):
            page = self._pages[self._index]
            self._index += 1
            self.record_output(page)
            return page
        return None

    def finish(self) -> None:
        self._index = len(self._pages)

    def is_finished(self) -> bool:
        return self._index >= len(self._pages)


class TableScanOperator(Operator):
    """Source operator reading splits through the Data Source API.

    Splits are delivered incrementally via :meth:`add_split` (the split
    queue of Sec. IV-D3); ``no_more_splits`` marks the end.
    """

    name = "TableScan"

    def __init__(self, connector: Connector, columns: Sequence[str]):
        super().__init__()
        self.connector = connector
        self.columns = list(columns)
        self._splits: list[Split] = []
        self._source: Optional[PageSource] = None
        self._no_more_splits = False
        self.completed_splits = 0
        self.completed_bytes = 0
        # Accumulated simulated time-to-first-byte of opened splits.
        self.opened_latency_ms = 0.0
        # Worker stripe cache (repro.cache.stripe_cache); set by the
        # cluster task planner, None in the local engine. Hits shorten
        # the simulated open latency — never the bytes produced.
        self.stripe_cache = None
        # Runtime dynamic filtering (repro.exec.dynamic_filters): filters
        # arrive either attached to a split by the coordinator
        # (replay-deterministic) or through a live registry shared with
        # same-plan build operators (local engine / recovery-off tasks).
        self.df_specs: list[tuple[str, int]] = []  # (filter id, channel)
        self.df_registry = None
        self.df_rows_filtered = 0
        self.df_splits_pruned = 0
        self._split_filters: list = []  # (channel, DynamicFilter) for open split
        self._split_filter_ids: frozenset = frozenset()

    def attach_dynamic_filters(self, specs, registry) -> None:
        """Filter the scan's pages through ``registry`` as the given
        (filter id, key channel) filters become ready."""
        self.df_specs = list(specs)
        self.df_registry = registry

    def _split_open_latency(self, split: Split) -> float:
        """Time-to-first-byte for one split: a stripe-cache hit pays only
        the cache's residual latency fraction."""
        cache = self.stripe_cache
        if cache is None:
            return split.read_latency_ms
        key = self.connector.split_cache_key(split)
        if key is None:
            return split.read_latency_ms
        weight = split.estimated_bytes or 1
        if cache.record_access((split.connector, key), weight):
            return split.read_latency_ms * cache.hit_latency_factor
        return split.read_latency_ms

    def io_cost_ms(self) -> float:
        """Simulated I/O time consumed so far: per-split latency plus
        bytes over the connector's read bandwidth."""
        bandwidth = getattr(self.connector, "read_bandwidth_bytes_per_ms", float("inf"))
        transfer = self.completed_bytes / bandwidth if bandwidth else 0.0
        return self.opened_latency_ms + transfer

    def add_split(self, split: Split) -> None:
        if self._no_more_splits:
            # Early-terminated scans (a satisfied LIMIT finished the
            # pipeline) drop late-arriving splits.
            return
        self._splits.append(split)

    def no_more_splits(self) -> None:
        self._no_more_splits = True

    @property
    def queued_splits(self) -> int:
        return len(self._splits)

    def needs_input(self) -> bool:
        return False

    def add_input(self, page: Page) -> None:
        raise AssertionError("TableScan takes no input")

    def get_output(self) -> Optional[Page]:
        while True:
            if self._source is None:
                if not self._splits:
                    return None
                split = self._augment_split(self._splits.pop(0))
                if split.dynamic_filters and self.connector.prune_split(
                    split, dict(split.dynamic_filters)
                ):
                    self.df_splits_pruned += 1
                    self.completed_splits += 1
                    continue
                self.opened_latency_ms += self._split_open_latency(split)
                self._source = self.connector.page_source(split, self.columns)
                self._split_filters = self._channel_filters(split)
                self._split_filter_ids = frozenset(
                    f.filter_id for _, f in self._split_filters
                )
            page = self._source.next_page()
            if page is None:
                self.completed_bytes += self._source.completed_bytes
                self._source.close()
                self._source = None
                self.completed_splits += 1
                continue
            page = self._apply_dynamic_filters(page)
            if page is None:
                continue
            self.record_output(page)
            return page

    def _augment_split(self, split: Split):
        """Attach currently-ready live-registry filters so the connector's
        reader can skip stripes. Coordinator-attached filters (task
        recovery's deterministic path) already ride on the split."""
        if self.df_registry is None or not self.df_specs:
            return split
        from dataclasses import replace

        attached = dict(split.dynamic_filters)
        for filter_id, channel in self.df_specs:
            ready = self.df_registry.get(filter_id)
            if ready is not None:
                attached.setdefault(self.columns[channel], ready)
        if len(attached) == len(split.dynamic_filters):
            return split
        return replace(split, dynamic_filters=tuple(sorted(attached.items())))

    def _channel_filters(self, split: Split) -> list:
        out = []
        for column, filter_ in split.dynamic_filters:
            try:
                out.append((self.columns.index(column), filter_))
            except ValueError:
                continue  # filter column not read by this scan
        return out

    def _apply_dynamic_filters(self, page: Page) -> Optional[Page]:
        """Vectorized page filtering; None when every row is dropped.

        Blocks the columnar scan passed through encoded stay encoded:
        :meth:`DynamicFilter.mask` decides dictionary/RLE blocks per
        distinct entry, and ``Page.copy_positions`` re-wraps surviving
        rows around the same shared dictionary."""
        if not self._split_filters and not self.df_specs:
            return page
        import numpy as np

        mask = None
        for channel, filter_ in self._split_filters:
            m = filter_.mask(page.block(channel), page.row_count)
            if m is not None:
                mask = m if mask is None else (mask & m)
        if self.df_registry is not None:
            for filter_id, channel in self.df_specs:
                if filter_id in self._split_filter_ids:
                    continue  # already applied via the split attachment
                ready = self.df_registry.get(filter_id)
                if ready is None:
                    continue
                m = ready.mask(page.block(channel), page.row_count)
                if m is not None:
                    mask = m if mask is None else (mask & m)
        if mask is None:
            return page
        kept = int(mask.sum())
        if kept == page.row_count:
            return page
        self.df_rows_filtered += page.row_count - kept
        if kept == 0:
            return None
        return page.copy_positions(np.flatnonzero(mask))

    def finish(self) -> None:
        self._no_more_splits = True
        self._splits.clear()
        if self._source is not None:
            self._source.close()
            self._source = None

    def is_finished(self) -> bool:
        return self._no_more_splits and not self._splits and self._source is None

    def is_blocked(self) -> bool:
        # Source operators are "blocked" while waiting for splits.
        return not self._no_more_splits and not self._splits and self._source is None


class FilterProjectOperator(StreamingOperator):
    """Fused filter + projection over a PageProcessor (Sec. V-E)."""

    name = "FilterProject"

    def __init__(
        self,
        input_symbols: Sequence[Symbol],
        filter_expr: Optional[ir.RowExpression],
        projections: Sequence[ir.RowExpression],
        interpreted: bool = False,
    ):
        super().__init__()
        self.processor = PageProcessor(
            input_symbols, filter_expr, projections, interpreted=interpreted
        )

    def process(self, page: Page) -> Optional[Page]:
        return self.processor.process(page)


class LimitOperator(StreamingOperator):
    """Stops after N rows; upstream finishes early (paper Sec. IV-D3:
    LIMIT queries complete before all splits are enumerated)."""

    name = "Limit"

    def __init__(self, count: int):
        super().__init__()
        self.remaining = count

    def needs_input(self) -> bool:
        return self.remaining > 0 and super().needs_input()

    def process(self, page: Page) -> Optional[Page]:
        if self.remaining <= 0:
            return None
        if page.row_count <= self.remaining:
            self.remaining -= page.row_count
            return page
        page = page.region(0, self.remaining)
        self.remaining = 0
        return page

    def is_finished(self) -> bool:
        return super().is_finished() or (self.remaining <= 0 and self._pending is None)


class EnforceSingleRowOperator(StreamingOperator):
    """Scalar subqueries must produce exactly one row."""

    name = "EnforceSingleRow"

    def __init__(self, column_count: int):
        super().__init__()
        self._seen = 0
        self._page: Optional[Page] = None
        self._column_count = column_count
        self._emitted = False

    def process(self, page: Page) -> Optional[Page]:
        self._seen += page.row_count
        if self._seen > 1:
            from repro.errors import SemanticError

            raise SemanticError("Scalar sub-query has returned multiple rows")
        if page.row_count:
            self._page = page
        return None

    def flush(self) -> Optional[Page]:
        if self._emitted:
            return None
        self._emitted = True
        if self._page is not None:
            return self._page
        # Zero rows: a scalar subquery yields NULL.
        from repro.exec.blocks import ObjectBlock

        return Page([ObjectBlock([None]) for _ in range(self._column_count)], 1)


class OutputCollectorOperator(Operator):
    """Terminal sink: collects pages for the client (or a test)."""

    name = "Output"

    def __init__(self, channels: Sequence[int] | None = None, consumer: Callable[[Page], None] | None = None):
        super().__init__()
        self.pages: list[Page] = []
        self.channels = list(channels) if channels is not None else None
        self.consumer = consumer
        self._finished = False

    def needs_input(self) -> bool:
        return not self._finished

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        if self.channels is not None:
            page = page.select_channels(self.channels)
        if self.consumer is not None:
            self.consumer(page)
        else:
            self.pages.append(page)

    def get_output(self) -> Optional[Page]:
        return None

    def finish(self) -> None:
        self._finished = True

    def is_finished(self) -> bool:
        return self._finished
