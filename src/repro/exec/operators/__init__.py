"""Physical operators: scan, filter/project, joins, aggregation, sort,
window, limit, set operations, writes, and exchanges."""
