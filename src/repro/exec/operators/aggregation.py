"""Hash aggregation operator with partial/final decomposition.

Partial aggregation runs before the shuffle and ships opaque
accumulator states; the final step combines states after repartitioning
(paper Fig. 3: AggregatePartial / AggregateFinal separated by a
partitioned shuffle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PrestoError
from repro.exec import kernels
from repro.exec.backend import current_backend
from repro.exec.blocks import make_block, ObjectBlock
from repro.exec.operator import AccumulatingOperator
from repro.exec.page import DEFAULT_PAGE_ROWS, Page
from repro.functions.registry import AggregateFunction
from repro.planner.nodes import AggregationStep
from repro.types import Type


@dataclass
class AggregatorSpec:
    """One aggregate bound to input channels."""

    function: AggregateFunction
    argument_channels: list[int]
    output_type: Type
    distinct: bool = False
    filter_channel: Optional[int] = None


#: Aggregates with a bulk numpy accumulation path (single primitive
#: argument, or zero arguments for count(*)).
_VECTORIZABLE = frozenset({"count", "count_if", "sum", "min", "max", "avg"})

# Integer sums stay bit-exact in the float64 bincount path as long as no
# per-group partial can exceed 2**53; larger inputs fall back to python
# ints (arbitrary precision, like the row path).
_EXACT_INT_SUM_BOUND = 2**53


class HashAggregationOperator(AccumulatingOperator):
    name = "HashAggregation"

    def __init__(
        self,
        group_channels: Sequence[int],
        group_types: Sequence[Type],
        aggregators: Sequence[AggregatorSpec],
        step: AggregationStep = AggregationStep.SINGLE,
    ):
        super().__init__()
        self.group_channels = list(group_channels)
        self.group_types = list(group_types)
        self.aggregators = list(aggregators)
        self.step = step
        if step is not AggregationStep.SINGLE:
            for agg in self.aggregators:
                if agg.distinct:
                    raise PrestoError("DISTINCT aggregates cannot be split across stages")
        # group key tuple -> list of states (one per aggregator)
        self._groups: dict[tuple, list] = {}
        self._retained = 0
        # Spilled runs of partial state (paper Sec. IV-F2).
        self._spilled_runs: list[dict[tuple, list]] = []
        self.spill_context = None

    # -- input ------------------------------------------------------------

    def accumulate(self, page: Page) -> None:
        key_blocks = [page.block(c) for c in self.group_channels]
        fact = kernels.factorize(key_blocks, page.row_count)
        if fact is None:
            self._accumulate_rows(page)
            return
        # Vector path: one dict probe per distinct key in the page, then
        # group-id-array-driven accumulation per aggregator.
        groups = self._groups
        states_by_gid: list[list] = []
        for key in kernels.key_tuples(key_blocks, fact.first_positions):
            states = groups.get(key)
            if states is None:
                states = [self._new_state(agg) for agg in self.aggregators]
                groups[key] = states
                self._retained += self._group_bytes(key, states)
            states_by_gid.append(states)
        for i, agg in enumerate(self.aggregators):
            self._accumulate_aggregator(page, i, agg, fact, states_by_gid)

    def _accumulate_aggregator(
        self,
        page: Page,
        index: int,
        agg: AggregatorSpec,
        fact: kernels.Factorization,
        states_by_gid: list[list],
    ) -> None:
        """Fold one page into one aggregator's per-group states, using
        bulk backend reductions when the aggregate and its argument
        allow. The group-id array stays device-resident across every
        aggregator touching it (the host copy is never materialized on
        this path); only the small per-group partials come back to host
        for the python states."""
        group_count = fact.group_count
        if (
            self.step is AggregationStep.FINAL
            or agg.distinct
            or agg.function.signature.name not in _VECTORIZABLE
            or len(agg.argument_channels) > 1
        ):
            self._accumulate_aggregator_rows(
                page, index, agg, fact.group_ids, states_by_gid
            )
            return
        backend = current_backend()
        xp = backend.xp
        mask = None
        if agg.filter_channel is not None:
            arrays = kernels.primitive_arrays(page.block(agg.filter_channel))
            if arrays is None:
                self._accumulate_aggregator_rows(
                    page, index, agg, fact.group_ids, states_by_gid
                )
                return
            filter_values, filter_nulls, _ = arrays
            mask = xp.asarray(filter_values, dtype=np.bool_) & ~backend.to_device(
                filter_nulls
            )
        name = agg.function.signature.name
        gids_dev = backend.to_device(fact.device_group_ids)
        if not agg.argument_channels:  # count(*)
            rows = gids_dev if mask is None else gids_dev[mask]
            counts = backend.to_host(xp.bincount(rows, minlength=group_count))
            self._merge_counts(index, counts, states_by_gid)
            return
        arrays = kernels.primitive_arrays(page.block(agg.argument_channels[0]))
        if arrays is None:
            self._accumulate_aggregator_rows(
                page, index, agg, fact.group_ids, states_by_gid
            )
            return
        values, nulls, kind = arrays
        values = backend.to_device(values)
        nulls = backend.to_device(nulls)
        valid = ~nulls if mask is None else (mask & ~nulls)
        if name == "count":
            counts = backend.to_host(
                xp.bincount(gids_dev[valid], minlength=group_count)
            )
            self._merge_counts(index, counts, states_by_gid)
            return
        if name == "count_if":
            valid = valid & xp.asarray(values, dtype=np.bool_)
            counts = backend.to_host(
                xp.bincount(gids_dev[valid], minlength=group_count)
            )
            self._merge_counts(index, counts, states_by_gid)
            return
        group_rows = gids_dev[valid]
        vals = values[valid]
        if name in ("sum", "avg"):
            if name == "sum" and kind != "f" and len(vals):
                bound = max(abs(int(vals.min())), abs(int(vals.max()))) * len(vals)
                if bound >= _EXACT_INT_SUM_BOUND:
                    self._accumulate_aggregator_rows(
                        page, index, agg, fact.group_ids, states_by_gid
                    )
                    return
            sums = backend.to_host(
                xp.bincount(
                    group_rows, weights=vals.astype(np.float64), minlength=group_count
                )
            )
            if name == "avg":
                counts = backend.to_host(
                    xp.bincount(group_rows, minlength=group_count)
                )
                touched = counts
            else:
                # sum only needs to know *which* groups were hit;
                # download the compact bool mask instead of the counts.
                touched = backend.to_host(
                    xp.bincount(group_rows, minlength=group_count) > 0
                )
            for g in np.flatnonzero(touched):  # host-only: python group states
                states = states_by_gid[g]
                state = states[index]
                if name == "avg":
                    states[index] = (state[0] + float(sums[g]), state[1] + int(counts[g]))
                else:
                    partial = float(sums[g]) if kind == "f" else int(sums[g])
                    states[index] = partial if state is None else state + partial
            return
        # min / max
        if kind == "f" and xp.isnan(vals).any():
            # minimum/maximum propagate NaN; the row path keeps NaN only
            # when it was the first value seen. Preserve that
            # order-dependence.
            self._accumulate_aggregator_rows(
                page, index, agg, fact.group_ids, states_by_gid
            )
            return
        if kind == "b":
            vals = vals.astype(np.int64)
        ufunc = np.minimum if name == "min" else np.maximum
        partial, touched = kernels.group_reduce(group_rows, vals, group_count, ufunc)
        for g in np.flatnonzero(touched):  # host-only: python group states
            value = partial[g]
            value = (
                bool(value) if kind == "b"
                else float(value) if kind == "f"
                else int(value)
            )
            states = states_by_gid[g]
            state = states[index]
            if state is None or (value < state if name == "min" else value > state):
                states[index] = value

    def _merge_counts(
        self, index: int, counts: np.ndarray, states_by_gid: list[list]
    ) -> None:
        for g in np.flatnonzero(counts):  # host-only: python group states
            states = states_by_gid[g]
            states[index] = states[index] + int(counts[g])

    def _accumulate_aggregator_rows(
        self,
        page: Page,
        index: int,
        agg: AggregatorSpec,
        gids: np.ndarray,
        states_by_gid: list[list],
    ) -> None:
        """Per-row fallback for one aggregator, driven by group ids (no
        per-row dict probes)."""
        mask = (
            page.block(agg.filter_channel).to_values()
            if agg.filter_channel is not None
            else None
        )
        arg_columns = [page.block(c).to_values() for c in agg.argument_channels]
        final_step = self.step is AggregationStep.FINAL
        function = agg.function
        for row, g in enumerate(gids.tolist()):
            if mask is not None and mask[row] is not True:
                continue
            states = states_by_gid[g]
            if final_step:
                partial = arg_columns[0][row]
                if partial is not None:
                    states[index] = function.combine(states[index], partial)
                continue
            args = tuple(col[row] for col in arg_columns)
            if function.ignores_nulls and any(
                a is None for a in args
            ) and agg.argument_channels:
                continue
            if agg.distinct:
                before = len(states[index])
                states[index].add(args)
                if len(states[index]) != before:
                    self._retained += 16
            else:
                states[index] = function.add(states[index], *args)

    def _accumulate_rows(self, page: Page) -> None:
        """Whole-page fallback when the group keys are object-typed."""
        key_columns = [page.block(c).to_values() for c in self.group_channels]
        agg_columns = [
            [page.block(c).to_values() for c in agg.argument_channels]
            for agg in self.aggregators
        ]
        filter_columns = [
            page.block(agg.filter_channel).to_values()
            if agg.filter_channel is not None
            else None
            for agg in self.aggregators
        ]
        final_step = self.step is AggregationStep.FINAL
        groups = self._groups
        for row in range(page.row_count):  # row-path: object-typed group keys
            key = tuple(col[row] for col in key_columns)
            states = groups.get(key)
            if states is None:
                states = [self._new_state(agg) for agg in self.aggregators]
                groups[key] = states
                self._retained += self._group_bytes(key, states)
            for i, agg in enumerate(self.aggregators):
                mask = filter_columns[i]
                if mask is not None and mask[row] is not True:
                    continue
                if final_step:
                    partial = agg_columns[i][0][row]
                    if partial is not None:
                        states[i] = agg.function.combine(states[i], partial)
                    continue
                args = tuple(col[row] for col in agg_columns[i])
                if agg.function.ignores_nulls and any(
                    a is None for a in args
                ) and agg.argument_channels:
                    continue
                if agg.distinct:
                    before = len(states[i])
                    states[i].add(args)
                    if len(states[i]) != before:
                        self._retained += 16
                else:
                    states[i] = agg.function.add(states[i], *args)

    @staticmethod
    def _group_bytes(key: tuple, states: list) -> int:
        """Retained-memory charge for a new group: hash-table slot plus
        the actual key widths (VARCHAR keys are not free)."""
        size = 64 + 16 * len(states)
        for value in key:
            if isinstance(value, str):
                size += 48 + len(value)
            elif isinstance(value, (list, tuple, dict)):
                size += 48 + 16 * len(value)
            elif value is not None:
                size += 16
        return size

    def _new_state(self, agg: AggregatorSpec):
        if self.step is AggregationStep.FINAL:
            return agg.function.create()
        if agg.distinct:
            return set()
        return agg.function.create()

    # -- output ---------------------------------------------------------------

    # -- revocation (spilling) ------------------------------------------------

    def revocable_bytes(self) -> int:
        return self._retained

    def revoke(self) -> int:
        """Spill the current hash table as a run; merged at output time."""
        if not self._groups:
            return 0
        released = self._retained
        self._spilled_runs.append(self._groups)
        if self.spill_context is not None:
            self.spill_context.write(released)
        self._groups = {}
        self._retained = 0
        return released

    def _merge_spilled(self) -> dict[tuple, list]:
        groups = self._groups
        for run in self._spilled_runs:
            if self.spill_context is not None:
                self.spill_context.read(64 * len(run))
            for key, states in run.items():
                existing = groups.get(key)
                if existing is None:
                    groups[key] = states
                    continue
                for i, agg in enumerate(self.aggregators):
                    if agg.distinct:
                        existing[i] |= states[i]
                    else:
                        existing[i] = agg.function.combine(existing[i], states[i])
        self._spilled_runs = []
        return groups

    def build_output(self) -> list[Page]:
        if self._spilled_runs:
            self._groups = self._merge_spilled()
        groups = self._groups
        if not groups and not self.group_channels:
            # Global aggregation over zero rows still yields one row.
            groups = {(): [self._new_state(agg) for agg in self.aggregators]}
        if not groups:
            return []
        pages: list[Page] = []
        keys = list(groups.keys())
        for start in range(0, len(keys), DEFAULT_PAGE_ROWS):
            chunk = keys[start : start + DEFAULT_PAGE_ROWS]
            blocks = []
            for i, type_ in enumerate(self.group_types):
                blocks.append(make_block(type_, [k[i] for k in chunk]))
            for i, agg in enumerate(self.aggregators):
                values = [self._finalize(agg, groups[key][i]) for key in chunk]
                if self.step is AggregationStep.PARTIAL:
                    blocks.append(ObjectBlock(values))
                else:
                    blocks.append(make_block(agg.output_type, values))
            pages.append(Page(blocks, len(chunk)))
        return pages

    def _finalize(self, agg: AggregatorSpec, state):
        if agg.distinct:
            final_state = agg.function.create()
            for args in state:
                final_state = agg.function.add(final_state, *args)
            state = final_state
        if self.step is AggregationStep.PARTIAL:
            return state
        return agg.function.output(state)

    def retained_bytes(self) -> int:
        return self._retained
