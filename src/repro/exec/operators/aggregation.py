"""Hash aggregation operator with partial/final decomposition.

Partial aggregation runs before the shuffle and ships opaque
accumulator states; the final step combines states after repartitioning
(paper Fig. 3: AggregatePartial / AggregateFinal separated by a
partitioned shuffle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import PrestoError
from repro.exec.blocks import make_block, ObjectBlock
from repro.exec.operator import AccumulatingOperator
from repro.exec.page import DEFAULT_PAGE_ROWS, Page
from repro.functions.registry import AggregateFunction
from repro.planner.nodes import AggregationStep
from repro.types import Type


@dataclass
class AggregatorSpec:
    """One aggregate bound to input channels."""

    function: AggregateFunction
    argument_channels: list[int]
    output_type: Type
    distinct: bool = False
    filter_channel: Optional[int] = None


class HashAggregationOperator(AccumulatingOperator):
    name = "HashAggregation"

    def __init__(
        self,
        group_channels: Sequence[int],
        group_types: Sequence[Type],
        aggregators: Sequence[AggregatorSpec],
        step: AggregationStep = AggregationStep.SINGLE,
    ):
        super().__init__()
        self.group_channels = list(group_channels)
        self.group_types = list(group_types)
        self.aggregators = list(aggregators)
        self.step = step
        if step is not AggregationStep.SINGLE:
            for agg in self.aggregators:
                if agg.distinct:
                    raise PrestoError("DISTINCT aggregates cannot be split across stages")
        # group key tuple -> list of states (one per aggregator)
        self._groups: dict[tuple, list] = {}
        self._retained = 0
        # Spilled runs of partial state (paper Sec. IV-F2).
        self._spilled_runs: list[dict[tuple, list]] = []
        self.spill_context = None

    # -- input ------------------------------------------------------------

    def accumulate(self, page: Page) -> None:
        key_columns = [page.block(c).to_values() for c in self.group_channels]
        agg_columns = [
            [page.block(c).to_values() for c in agg.argument_channels]
            for agg in self.aggregators
        ]
        filter_columns = [
            page.block(agg.filter_channel).to_values()
            if agg.filter_channel is not None
            else None
            for agg in self.aggregators
        ]
        final_step = self.step is AggregationStep.FINAL
        groups = self._groups
        for row in range(page.row_count):
            key = tuple(col[row] for col in key_columns)
            states = groups.get(key)
            if states is None:
                states = [self._new_state(agg) for agg in self.aggregators]
                groups[key] = states
                self._retained += 64 + 16 * len(states)
            for i, agg in enumerate(self.aggregators):
                mask = filter_columns[i]
                if mask is not None and mask[row] is not True:
                    continue
                if final_step:
                    partial = agg_columns[i][0][row]
                    if partial is not None:
                        states[i] = agg.function.combine(states[i], partial)
                    continue
                args = tuple(col[row] for col in agg_columns[i])
                if agg.function.ignores_nulls and any(
                    a is None for a in args
                ) and agg.argument_channels:
                    continue
                if agg.distinct:
                    states[i].add(args)
                else:
                    states[i] = agg.function.add(states[i], *args)

    def _new_state(self, agg: AggregatorSpec):
        if self.step is AggregationStep.FINAL:
            return agg.function.create()
        if agg.distinct:
            return set()
        return agg.function.create()

    # -- output ---------------------------------------------------------------

    # -- revocation (spilling) ------------------------------------------------

    def revocable_bytes(self) -> int:
        return self._retained

    def revoke(self) -> int:
        """Spill the current hash table as a run; merged at output time."""
        if not self._groups:
            return 0
        released = self._retained
        self._spilled_runs.append(self._groups)
        if self.spill_context is not None:
            self.spill_context.write(released)
        self._groups = {}
        self._retained = 0
        return released

    def _merge_spilled(self) -> dict[tuple, list]:
        groups = self._groups
        for run in self._spilled_runs:
            if self.spill_context is not None:
                self.spill_context.read(64 * len(run))
            for key, states in run.items():
                existing = groups.get(key)
                if existing is None:
                    groups[key] = states
                    continue
                for i, agg in enumerate(self.aggregators):
                    if agg.distinct:
                        existing[i] |= states[i]
                    else:
                        existing[i] = agg.function.combine(existing[i], states[i])
        self._spilled_runs = []
        return groups

    def build_output(self) -> list[Page]:
        if self._spilled_runs:
            self._groups = self._merge_spilled()
        groups = self._groups
        if not groups and not self.group_channels:
            # Global aggregation over zero rows still yields one row.
            groups = {(): [self._new_state(agg) for agg in self.aggregators]}
        if not groups:
            return []
        pages: list[Page] = []
        keys = list(groups.keys())
        for start in range(0, len(keys), DEFAULT_PAGE_ROWS):
            chunk = keys[start : start + DEFAULT_PAGE_ROWS]
            blocks = []
            for i, type_ in enumerate(self.group_types):
                blocks.append(make_block(type_, [k[i] for k in chunk]))
            for i, agg in enumerate(self.aggregators):
                values = [self._finalize(agg, groups[key][i]) for key in chunk]
                if self.step is AggregationStep.PARTIAL:
                    blocks.append(ObjectBlock(values))
                else:
                    blocks.append(make_block(agg.output_type, values))
            pages.append(Page(blocks, len(chunk)))
        return pages

    def _finalize(self, agg: AggregatorSpec, state):
        if agg.distinct:
            final_state = agg.function.create()
            for args in state:
                final_state = agg.function.add(final_state, *args)
            state = final_state
        if self.step is AggregationStep.PARTIAL:
            return state
        return agg.function.output(state)

    def retained_bytes(self) -> int:
        return self._retained
