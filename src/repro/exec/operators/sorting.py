"""Sort, TopN, Distinct, SetOperation, and Window operators."""

from __future__ import annotations

import functools
from typing import Optional, Sequence

from repro.exec import kernels
from repro.exec.blocks import ObjectBlock, make_block
from repro.exec.operator import AccumulatingOperator, Operator, StreamingOperator
from repro.exec.page import DEFAULT_PAGE_ROWS, Page, page_from_rows
from repro.planner.nodes import Ordering, WindowCall
from repro.sql import ast
from repro.types import Type


def make_row_comparator(orderings: Sequence[tuple[int, bool, bool]]):
    """Comparator over row tuples for (channel, ascending, nulls_first)."""

    def compare(a: tuple, b: tuple) -> int:
        for channel, ascending, nulls_first in orderings:
            x, y = a[channel], b[channel]
            if x is None and y is None:
                continue
            if x is None:
                return -1 if nulls_first else 1
            if y is None:
                return 1 if nulls_first else -1
            if x == y:
                continue
            less = x < y
            if ascending:
                return -1 if less else 1
            return 1 if less else -1
        return 0

    return compare


def sort_rows(
    rows: list[tuple], orderings: Sequence[tuple[int, bool, bool]]
) -> list[tuple]:
    return sorted(rows, key=functools.cmp_to_key(make_row_comparator(orderings)))


def _rows_to_pages(rows: list[tuple], types: Sequence[Type]) -> list[Page]:
    pages = []
    for start in range(0, len(rows), DEFAULT_PAGE_ROWS):
        chunk = rows[start : start + DEFAULT_PAGE_ROWS]
        pages.append(page_from_rows(types, chunk))
    return pages


class SortOperator(AccumulatingOperator):
    """Full in-memory sort (spilling handled by the memory manager)."""

    name = "Sort"

    def __init__(self, orderings: Sequence[tuple[int, bool, bool]], types: Sequence[Type]):
        super().__init__()
        self.orderings = list(orderings)
        self.types = list(types)
        self._rows: list[tuple] = []
        self._retained = 0
        self._spilled_runs: list[list[tuple]] = []
        self.spill_context = None

    def accumulate(self, page: Page) -> None:
        self._rows.extend(page.rows())
        self._retained += page.size_bytes()

    # -- revocation (spilling) ------------------------------------------------

    def revocable_bytes(self) -> int:
        return self._retained

    def revoke(self) -> int:
        """Spill a sorted run; merged with in-memory rows at output."""
        if not self._rows:
            return 0
        released = self._retained
        self._spilled_runs.append(sort_rows(self._rows, self.orderings))
        if self.spill_context is not None:
            self.spill_context.write(released)
        self._rows = []
        self._retained = 0
        return released

    def build_output(self) -> list[Page]:
        in_memory = sort_rows(self._rows, self.orderings)
        if not self._spilled_runs:
            return _rows_to_pages(in_memory, self.types)
        # K-way merge of spilled runs plus the in-memory run.
        import heapq

        comparator = make_row_comparator(self.orderings)
        runs = self._spilled_runs + [in_memory]
        if self.spill_context is not None:
            for run in self._spilled_runs:
                self.spill_context.read(64 * len(run))
        self._spilled_runs = []
        merged = list(
            heapq.merge(*runs, key=functools.cmp_to_key(comparator))
        )
        return _rows_to_pages(merged, self.types)


class TopNOperator(AccumulatingOperator):
    """Bounded sort: retains at most ~2N rows at any time."""

    name = "TopN"

    def __init__(
        self,
        count: int,
        orderings: Sequence[tuple[int, bool, bool]],
        types: Sequence[Type],
    ):
        super().__init__()
        self.count = count
        self.orderings = list(orderings)
        self.types = list(types)
        self._rows: list[tuple] = []

    def accumulate(self, page: Page) -> None:
        self._rows.extend(page.rows())
        if len(self._rows) > 2 * self.count + DEFAULT_PAGE_ROWS:
            self._rows = sort_rows(self._rows, self.orderings)[: self.count]

    def build_output(self) -> list[Page]:
        rows = sort_rows(self._rows, self.orderings)[: self.count]
        return _rows_to_pages(rows, self.types)

    def retained_bytes(self) -> int:
        return 64 * len(self._rows)


class DistinctOperator(StreamingOperator):
    """Streaming hash-based duplicate elimination."""

    name = "Distinct"

    def __init__(self):
        super().__init__()
        self._seen: set[tuple] = set()

    def process(self, page: Page) -> Optional[Page]:
        positions = []
        seen = self._seen
        fact = kernels.factorize(page.blocks, page.row_count)
        if fact is not None:
            # One set probe per distinct row in the page (page-local
            # duplicates collapse in the factorization).
            for g, key in enumerate(kernels.key_tuples(page.blocks, fact.first_positions)):
                if key not in seen:
                    seen.add(key)
                    positions.append(int(fact.first_positions[g]))
        else:
            for i, row in enumerate(page.rows()):  # row-path: object-typed rows
                if row not in seen:
                    seen.add(row)
                    positions.append(i)
        if not positions:
            return None
        if len(positions) == page.row_count:
            return page
        return page.copy_positions(positions)

    def retained_bytes(self) -> int:
        return 64 * len(self._seen)


class SetOperationBridge:
    """Accumulates the secondary input of INTERSECT/EXCEPT."""

    def __init__(self):
        self.ready = False
        self.rows: set[tuple] = set()

    def set(self, rows: set[tuple]) -> None:
        self.rows = rows
        self.ready = True


class SetOperationBuildOperator(Operator):
    name = "SetOperationBuild"

    def __init__(self, bridge: SetOperationBridge):
        super().__init__()
        self.bridge = bridge
        self._rows: set[tuple] = set()
        self._finished = False

    def needs_input(self) -> bool:
        return not self._finished

    def add_input(self, page: Page) -> None:
        self.record_input(page)
        self._rows.update(page.rows())

    def get_output(self) -> Optional[Page]:
        return None

    def finish(self) -> None:
        if not self._finished:
            self._finished = True
            self.bridge.set(self._rows)

    def is_finished(self) -> bool:
        return self._finished


class SetOperationOperator(StreamingOperator):
    """INTERSECT/EXCEPT with set semantics (left side streams through)."""

    name = "SetOperation"

    def __init__(self, kind: str, bridge: SetOperationBridge):
        super().__init__()
        assert kind in ("INTERSECT", "EXCEPT")
        self.kind = kind
        self.bridge = bridge
        self._emitted: set[tuple] = set()

    def is_blocked(self) -> bool:
        return not self.bridge.ready

    def needs_input(self) -> bool:
        return self.bridge.ready and super().needs_input()

    def process(self, page: Page) -> Optional[Page]:
        keep_in_right = self.kind == "INTERSECT"
        right = self.bridge.rows
        positions = []
        for i, row in enumerate(page.rows()):
            if row in self._emitted:
                continue
            if (row in right) == keep_in_right:
                self._emitted.add(row)
                positions.append(i)
        if not positions:
            return None
        return page.copy_positions(positions)


class WindowOperator(AccumulatingOperator):
    """Window functions over sorted partitions (paper Sec. IV-A, II-D).

    Supports the ranking/value functions plus aggregates-as-window with
    the default RANGE UNBOUNDED PRECEDING..CURRENT ROW frame, whole-
    partition frames, and ROWS frames with constant offsets.
    """

    name = "Window"

    def __init__(
        self,
        partition_channels: Sequence[int],
        order_channels: Sequence[tuple[int, bool, bool]],
        calls: Sequence[tuple[WindowCall, list[int], Type]],
        input_types: Sequence[Type],
        frame: object = None,
    ):
        super().__init__()
        self.partition_channels = list(partition_channels)
        self.order_channels = list(order_channels)
        self.calls = list(calls)
        self.input_types = list(input_types)
        self.frame = frame
        self._rows: list[tuple] = []

    def accumulate(self, page: Page) -> None:
        self._rows.extend(page.rows())

    def build_output(self) -> list[Page]:
        # Sort by partition keys then order keys for partition grouping.
        orderings = [(c, True, True) for c in self.partition_channels] + list(
            self.order_channels
        )
        rows = sort_rows(self._rows, orderings) if orderings else list(self._rows)
        outputs: list[list] = [[] for _ in self.calls]
        start = 0
        while start < len(rows):
            end = start
            while end < len(rows) and self._same_partition(rows[start], rows[end]):
                end += 1
            self._process_partition(rows[start:end], outputs)
            start = end
        out_types = self.input_types + [t for _, _, t in self.calls]
        pages: list[Page] = []
        for chunk_start in range(0, len(rows), DEFAULT_PAGE_ROWS):
            chunk_end = min(chunk_start + DEFAULT_PAGE_ROWS, len(rows))
            chunk_rows = rows[chunk_start:chunk_end]
            blocks = []
            for channel, type_ in enumerate(self.input_types):
                blocks.append(make_block(type_, [r[channel] for r in chunk_rows]))
            for i, (_, _, type_) in enumerate(self.calls):
                blocks.append(make_block(type_, outputs[i][chunk_start:chunk_end]))
            pages.append(Page(blocks, len(chunk_rows)))
        return pages

    def _same_partition(self, a: tuple, b: tuple) -> bool:
        return all(a[c] == b[c] for c in self.partition_channels)

    def _process_partition(self, partition: list[tuple], outputs: list[list]) -> None:
        n = len(partition)
        peers = self._peer_groups(partition)
        # One transpose serves every window call: argument columns are
        # re-zipped per call instead of walking all rows per call.
        columns = list(zip(*partition)) if partition else []
        for i, (call, arg_channels, _) in enumerate(self.calls):
            if arg_channels:
                args = list(zip(*(columns[c] for c in arg_channels)))
            else:
                args = [()] * n
            if call.window_function is not None:
                outputs[i].extend(call.window_function.process(n, args, peers))
            else:
                outputs[i].extend(self._aggregate_window(call, args, peers, n))

    def _peer_groups(self, partition: list[tuple]) -> list[int]:
        peers = []
        group = 0
        for i, row in enumerate(partition):
            if i > 0 and any(
                row[c] != partition[i - 1][c] for c, _, _ in self.order_channels
            ):
                group += 1
            peers.append(group)
        return peers

    def _aggregate_window(self, call, args, peers, n) -> list:
        function = call.aggregate_function
        frame = self.frame
        if frame is None and not self.order_channels:
            # No ORDER BY: the frame is the whole partition.
            state = function.create()
            for arg in args:
                if arg and any(a is None for a in arg):
                    continue
                state = function.add(state, *arg)
            value = function.output(state)
            return [value] * n
        if frame is None or (
            isinstance(frame, ast.WindowFrame)
            and frame.frame_type == "RANGE"
            and frame.start.kind is ast.FrameBoundKind.UNBOUNDED_PRECEDING
            and frame.end.kind is ast.FrameBoundKind.CURRENT_ROW
        ):
            # Running aggregate including the full peer group of each row.
            out: list = [None] * n
            state = function.create()
            i = 0
            while i < n:
                j = i
                while j + 1 < n and peers[j + 1] == peers[i]:
                    j += 1
                for k in range(i, j + 1):
                    arg = args[k]
                    if arg and any(a is None for a in arg):
                        continue
                    state = function.add(state, *arg)
                value = function.output(_copy_state(state))
                for k in range(i, j + 1):
                    out[k] = value
                i = j + 1
            return out
        # General ROWS frame with constant offsets.
        out = []
        for row in range(n):
            start, end = self._frame_bounds(frame, row, n)
            state = function.create()
            for k in range(max(0, start), min(n, end + 1)):
                arg = args[k]
                if arg and any(a is None for a in arg):
                    continue
                state = function.add(state, *arg)
            out.append(function.output(state))
        return out

    def _frame_bounds(self, frame: ast.WindowFrame, row: int, n: int) -> tuple[int, int]:
        def bound(b: ast.FrameBound, default: int) -> int:
            if b.kind is ast.FrameBoundKind.UNBOUNDED_PRECEDING:
                return 0
            if b.kind is ast.FrameBoundKind.UNBOUNDED_FOLLOWING:
                return n - 1
            if b.kind is ast.FrameBoundKind.CURRENT_ROW:
                return row
            offset = b.value.value if b.value is not None else 0  # type: ignore[union-attr]
            if b.kind is ast.FrameBoundKind.PRECEDING:
                return row - offset
            return row + offset

        return bound(frame.start, 0), bound(frame.end, row)


def _copy_state(state):
    """Aggregate states are mutated in place; snapshot value-like states."""
    if isinstance(state, (list, set)):
        return type(state)(state)
    if isinstance(state, dict):
        return dict(state)
    return state
