"""Pluggable kernel backends with device-transfer accounting.

The vectorized kernel layer (``repro.exec.kernels``), the page
processor, and the fused pipeline compiler emit their array work
through a :class:`KernelBackend` rather than importing numpy directly.
The backend exposes a numpy-compatible array namespace (``xp``) plus
the two transfer seams — ``to_device`` / ``to_host`` — so a
cupy-shaped accelerator backend retargets group-by, joins, distinct,
shuffle partitioning, and dynamic-filter masking without touching
operator code (see docs/BACKENDS.md for the seam contract).

Two backends ship:

- ``numpy`` — the host default. ``xp is numpy`` and both transfer
  hooks are identity functions, so the routed kernels compile to the
  exact same numpy calls as before the seam existed.
- ``simgpu`` — a numpy-backed, cupy-*shaped* device stub. Arrays that
  enter a kernel are wrapped in a :class:`DeviceArray` handle, every
  array op counts as a kernel launch, and host<->device movement is
  metered (bytes, transfer counts, modeled microseconds on the
  simulation's virtual clock). The performance mechanism it models is
  *residency*: a bounded identity-keyed cache remembers which host
  arrays are already "on device", so data flowing between fused
  pipeline stages or between a join build and its probes is uploaded
  once and every further kernel that touches it counts a
  ``transfers_elided`` instead of a transfer. Numpy functions outside
  the device whitelist execute on host with a charged download and a
  per-reason ``host_fallback.<name>`` counter (mirroring
  ``exec.fusion_fallback.*``).

Backend selection: ``REPRO_BACKEND=<name>`` in the environment, an
explicit :func:`get_backend` call, or :func:`forced_backend` (the fuzz
runner / benchmarks). The active backend is process-global and read by
the kernels via :func:`current_backend`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np


class KernelBackend:
    """Array-execution backend: a numpy-compatible namespace plus
    host-transfer hooks and transfer accounting."""

    #: registry / EXPLAIN name
    name = "abstract"
    #: numpy-compatible array module (numpy, cupy, simgpu namespace, ...)
    xp = None
    #: True when arrays live in a separate (possibly simulated) memory
    #: space and ``to_device``/``to_host`` are real transfers.
    device = False

    #: every backend reports this counter set (host backends report
    #: zeros) so ``backend.*`` stats keys are stable across backends.
    COUNTERS = (
        "bytes_to_device",
        "bytes_to_host",
        "bytes_elided",
        "transfers_to_device",
        "transfers_to_host",
        "transfers_elided",
        "kernel_launches",
        "device_syncs",
        "host_fallbacks",
        "device_ms",
    )

    def asarray(self, values, dtype=None):
        return self.xp.asarray(values, dtype=dtype)

    def to_device(self, array):
        """Move a host ndarray onto the backend's device (identity on
        host backends)."""
        return array

    def to_host(self, array):
        """Bring a backend array back to a host numpy ndarray. Blocks
        store host arrays, so every kernel's host boundary ends here."""
        return array

    def count_fallback(self, reason: str) -> None:
        """Record a per-kernel host fallback (no-op on host backends)."""

    def drain_pending_ms(self) -> float:
        """Return (and reset) modeled device milliseconds accumulated
        since the last drain — charged onto the virtual clock by the
        fused pipeline's split-lump accounting. Host backends do their
        work in real wall time, so there is nothing to drain."""
        return 0.0

    def reset_stats(self) -> None:
        """Reset transfer counters (and any residency state)."""

    def stats_snapshot(self) -> dict:
        """Flat counter dict, merged into ``SimCluster.stats_snapshot``
        under the ``backend.`` prefix."""
        return {key: 0 for key in self.COUNTERS}


class NumpyBackend(KernelBackend):
    """Default host backend: plain numpy, zero-copy both directions."""

    name = "numpy"
    xp = np


# --------------------------------------------------------------------------
# simgpu: a cupy-shaped device stub with transfer accounting
# --------------------------------------------------------------------------


def _nbytes(array) -> int:
    return int(getattr(array, "nbytes", 0))


class DeviceArray:
    """Handle to an array resident in (simulated) device memory.

    Shaped like a ``cupy.ndarray``: metadata is free, elementwise ops /
    ufuncs / indexing run "on device" (counted as kernel launches),
    reductions return host scalars through a counted sync, and
    ``__array__`` / ``item`` / ``tolist`` are charged downloads so
    un-routed host code stays correct — it just pays the transfer.

    ``data`` holds the backing host ndarray standing in for device
    memory. Uploads alias the host array zero-copy (``_owned`` False);
    any in-place mutation copies first so simulated device writes can
    never corrupt host Block storage.
    """

    __slots__ = ("data", "_backend", "_owned")

    def __init__(self, data: np.ndarray, backend: "SimGpuBackend", owned: bool = True):
        self.data = data
        self._backend = backend
        self._owned = owned

    # -- metadata: free, like cupy ------------------------------------
    @property
    def dtype(self):
        return self.data.dtype

    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def nbytes(self):
        return self.data.nbytes

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return f"DeviceArray({self.data!r})"

    # -- device-side methods (kernel launches) ------------------------
    def _launch_method(self, method: str, *args, **kwargs):
        backend = self._backend
        args = tuple(a.data if isinstance(a, DeviceArray) else a for a in args)
        result = getattr(self.data, method)(*args, **kwargs)
        backend._charge_launch(self.size)
        return backend._wrap_result(result)

    def astype(self, dtype, **kwargs):
        return self._launch_method("astype", dtype, **kwargs)

    def view(self, dtype=None):
        return self._launch_method("view", dtype)

    def copy(self):
        return self._launch_method("copy")

    def reshape(self, *shape):
        return self._launch_method("reshape", *shape)

    # -- reductions: launch + scalar readback -------------------------
    def any(self, **kwargs):
        return self._launch_method("any", **kwargs)

    def all(self, **kwargs):
        return self._launch_method("all", **kwargs)

    def sum(self, **kwargs):
        return self._launch_method("sum", **kwargs)

    def min(self, **kwargs):
        return self._launch_method("min", **kwargs)

    def max(self, **kwargs):
        return self._launch_method("max", **kwargs)

    # -- indexing ------------------------------------------------------
    def __getitem__(self, key):
        backend = self._backend
        if isinstance(key, DeviceArray):
            key = key.data
        result = self.data[key]
        backend._charge_launch(self.size)
        if isinstance(result, np.ndarray) and result.ndim:
            if not self._owned and (result.base is not None or result is self.data):
                # A basic-index view of an uploaded host array must not
                # alias host memory once it is "device" data.
                result = result.copy()
            return DeviceArray(result, backend)
        return backend._wrap_result(result)

    def __setitem__(self, key, value):
        if not self._owned:
            self.data = self.data.copy()
            self._owned = True
        if isinstance(key, DeviceArray):
            key = key.data
        if isinstance(value, DeviceArray):
            value = value.data
        self.data[key] = value
        self._backend._charge_launch(self.size)

    # -- host boundaries (charged downloads / syncs) -------------------
    def __array__(self, dtype=None, copy=None):
        host = self._backend.to_host(self)
        if dtype is not None:
            host = host.astype(dtype, copy=False)
        return host

    def item(self):
        self._backend._charge_sync(self.data.itemsize)
        return self.data.item()

    def tolist(self):
        host = self._backend.to_host(self)
        return host.tolist()

    def __bool__(self):
        self._backend._charge_sync(self.data.itemsize)
        return bool(self.data)

    def __int__(self):
        self._backend._charge_sync(self.data.itemsize)
        return int(self.data)

    def __float__(self):
        self._backend._charge_sync(self.data.itemsize)
        return float(self.data)

    def __index__(self):
        self._backend._charge_sync(self.data.itemsize)
        return self.data.__index__()

    # -- ufunc dispatch: every numpy ufunc (and reduce/reduceat/
    #    accumulate) on a DeviceArray runs as a device launch ----------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        backend = self._backend
        unwrapped = []
        elements = 0
        for obj in inputs:
            operand, size = backend._operand(obj)
            unwrapped.append(operand)
            elements = max(elements, size)
        out = kwargs.get("out")
        if out is not None:
            kwargs["out"] = tuple(
                o.data if isinstance(o, DeviceArray) else o for o in out
            )
        result = getattr(ufunc, method)(*unwrapped, **kwargs)
        backend._charge_launch(elements)
        return backend._wrap_result(result)


def _binary_op(ufunc, reflected: bool = False):
    if reflected:
        def op(self, other):
            return ufunc(other, self)
    else:
        def op(self, other):
            return ufunc(self, other)
    return op


def _unary_op(ufunc):
    def op(self):
        return ufunc(self)
    return op


for _name, _ufunc in (
    ("add", np.add),
    ("sub", np.subtract),
    ("mul", np.multiply),
    ("truediv", np.true_divide),
    ("floordiv", np.floor_divide),
    ("mod", np.mod),
    ("pow", np.power),
    ("and", np.bitwise_and),
    ("or", np.bitwise_or),
    ("xor", np.bitwise_xor),
    ("lshift", np.left_shift),
    ("rshift", np.right_shift),
):
    setattr(DeviceArray, f"__{_name}__", _binary_op(_ufunc))
    setattr(DeviceArray, f"__r{_name}__", _binary_op(_ufunc, reflected=True))
for _name, _ufunc in (
    ("lt", np.less),
    ("le", np.less_equal),
    ("gt", np.greater),
    ("ge", np.greater_equal),
    ("eq", np.equal),
    ("ne", np.not_equal),
):
    setattr(DeviceArray, f"__{_name}__", _binary_op(_ufunc))
setattr(DeviceArray, "__neg__", _unary_op(np.negative))
setattr(DeviceArray, "__invert__", _unary_op(np.invert))
setattr(DeviceArray, "__abs__", _unary_op(np.absolute))
del _name, _ufunc


#: numpy attributes handed through unwrapped: dtypes, scalar
#: constructors, and metadata helpers carry no array data.
_PASSTHROUGH = {
    "bool_", "int8", "int16", "int32", "int64", "intp",
    "uint8", "uint16", "uint32", "uint64",
    "float16", "float32", "float64",
    "generic", "number", "integer", "floating", "ndarray",
    "dtype", "iinfo", "finfo", "errstate", "promote_types", "result_type",
    "newaxis", "nan", "inf", "pi", "e",
}

#: the device kernel whitelist — functions the simulated device
#: executes natively. Anything callable outside this set falls back to
#: host with a charged download and a counted reason.
_DEVICE_FUNCS = {
    "asarray", "array", "ascontiguousarray",
    "zeros", "ones", "empty", "full", "arange",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "where", "unique", "argsort", "sort", "searchsorted", "lexsort",
    "bincount", "cumsum", "clip", "flatnonzero", "nonzero",
    "repeat", "tile", "concatenate", "isin",
    "isnan", "isfinite", "isinf", "trunc", "floor", "ceil",
    "abs", "absolute", "sign", "sqrt",
    "minimum", "maximum", "fmin", "fmax",
    "logical_and", "logical_or", "logical_not", "logical_xor",
    "add", "subtract", "multiply", "true_divide", "divide",
    "count_nonzero", "sum", "min", "max", "any", "all",
    "argmin", "argmax", "diff",
}


class _SimGpuNamespace:
    """numpy-compatible module facade over the simulated device.

    Whitelisted functions run as device kernels: ``DeviceArray``
    arguments are unwrapped in place (counted as elided transfers —
    a naive per-kernel implementation would have re-uploaded them),
    bare host ndarrays are charged uploads, and ndarray results come
    back wrapped. Non-whitelisted functions are executed on host with
    charged downloads and a ``host_fallback.xp.<name>`` counter.
    """

    def __init__(self, backend: "SimGpuBackend"):
        self._backend = backend

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        target = getattr(np, name)
        if name in _PASSTHROUGH or not callable(target):
            value = target
        elif name in _DEVICE_FUNCS:
            value = self._backend._device_function(target)
        else:
            value = self._backend._fallback_function(name, target)
        self.__dict__[name] = value  # cache for next lookup
        return value


class SimGpuBackend(KernelBackend):
    """numpy-backed, cupy-shaped device backend with metered transfers.

    Models an accelerator attached over a link: uploads and downloads
    cost ``*_ns_per_byte`` plus a fixed per-transfer overhead, kernels
    cost a launch overhead plus per-element time. All modeled time
    lands on the simulation's virtual clock via
    :meth:`drain_pending_ms` (real wall time stays tiny — the "device"
    is just numpy). The residency cache is what the break-even bench
    measures: arrays already on device make follow-on kernels free of
    transfer cost, counted in ``transfers_elided`` / ``bytes_elided``.
    """

    name = "simgpu"
    device = True

    #: cost model (overridable per-instance; the break-even bench
    #: sweeps the per-byte link cost analytically from the counters).
    h2d_ns_per_byte = 0.25   # ~4 GB/s effective host->device link
    d2h_ns_per_byte = 0.25
    transfer_overhead_us = 2.0
    launch_overhead_us = 3.0
    kernel_ns_per_element = 0.05

    #: residency-cache capacity (distinct host arrays remembered).
    RESIDENT_CAP = 1024

    def __init__(self):
        self.xp = _SimGpuNamespace(self)
        self._resident: OrderedDict[int, DeviceArray] = OrderedDict()
        self.reset_stats()

    # -- accounting ----------------------------------------------------
    def reset_stats(self) -> None:
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.transfers_to_device = 0
        self.transfers_to_host = 0
        # What a naive per-kernel implementation would have moved:
        # upload every kernel input, download every kernel output.
        # Elision is the difference between that and the actual traffic.
        self.naive_transfers = 0
        self.naive_bytes = 0
        self.kernel_launches = 0
        self.device_syncs = 0
        self.device_ms = 0.0
        self.host_fallbacks: dict[str, int] = {}
        self._pending_ms = 0.0
        self._resident.clear()

    @property
    def transfers_elided(self) -> int:
        actual = self.transfers_to_device + self.transfers_to_host
        return max(0, self.naive_transfers - actual)

    @property
    def bytes_elided(self) -> int:
        actual = self.bytes_to_device + self.bytes_to_host
        return max(0, self.naive_bytes - actual)

    def stats_snapshot(self) -> dict:
        snap = {
            "bytes_to_device": self.bytes_to_device,
            "bytes_to_host": self.bytes_to_host,
            "bytes_elided": self.bytes_elided,
            "transfers_to_device": self.transfers_to_device,
            "transfers_to_host": self.transfers_to_host,
            "transfers_elided": self.transfers_elided,
            "kernel_launches": self.kernel_launches,
            "device_syncs": self.device_syncs,
            "host_fallbacks": sum(self.host_fallbacks.values()),
            "device_ms": round(self.device_ms, 3),
            "naive_transfers": self.naive_transfers,
            "naive_bytes": self.naive_bytes,
        }
        for reason in sorted(self.host_fallbacks):
            snap[f"host_fallback.{reason}"] = self.host_fallbacks[reason]
        return snap

    def count_fallback(self, reason: str) -> None:
        self.host_fallbacks[reason] = self.host_fallbacks.get(reason, 0) + 1

    def drain_pending_ms(self) -> float:
        pending, self._pending_ms = self._pending_ms, 0.0
        return pending

    def _charge(self, ms: float) -> None:
        self.device_ms += ms
        self._pending_ms += ms

    def _charge_launch(self, elements: int) -> None:
        self.kernel_launches += 1
        self._charge(
            self.launch_overhead_us / 1000.0
            + elements * self.kernel_ns_per_element / 1e6
        )

    def _charge_h2d(self, nbytes: int) -> None:
        self.transfers_to_device += 1
        self.bytes_to_device += nbytes
        self._charge(
            self.transfer_overhead_us / 1000.0 + nbytes * self.h2d_ns_per_byte / 1e6
        )

    def _charge_d2h(self, nbytes: int) -> None:
        self.transfers_to_host += 1
        self.bytes_to_host += nbytes
        self._charge(
            self.transfer_overhead_us / 1000.0 + nbytes * self.d2h_ns_per_byte / 1e6
        )

    def _charge_sync(self, nbytes: int) -> None:
        self.device_syncs += 1
        # A naive implementation syncs the scalar back too.
        self._naive_d2h(nbytes)
        self._charge_d2h(nbytes)

    def _naive_h2d(self, nbytes: int) -> None:
        self.naive_transfers += 1
        self.naive_bytes += nbytes

    def _naive_d2h(self, nbytes: int) -> None:
        self.naive_transfers += 1
        self.naive_bytes += nbytes

    # -- transfers and residency --------------------------------------
    def asarray(self, values, dtype=None):
        return self.xp.asarray(values, dtype=dtype)

    def _remember(self, handle: DeviceArray) -> None:
        key = id(handle.data)
        self._resident[key] = handle
        self._resident.move_to_end(key)
        while len(self._resident) > self.RESIDENT_CAP:
            self._resident.popitem(last=False)

    def to_device(self, array):
        # A naive per-kernel implementation uploads every input.
        self._naive_h2d(_nbytes(array))
        if isinstance(array, DeviceArray):
            return array
        if not isinstance(array, np.ndarray):
            array = np.asarray(array)  # host-side staging buffer
        cached = self._resident.get(id(array))
        if cached is not None and cached.data is array:
            # Already resident: the cache holds a strong reference to
            # the host array, so the identity check cannot be fooled by
            # id() reuse.
            self._resident.move_to_end(id(array))
            return cached
        handle = DeviceArray(array, self, owned=False)
        self._remember(handle)
        self._charge_h2d(array.nbytes)
        return handle

    def to_host(self, array):
        if isinstance(array, DeviceArray):
            self._charge_d2h(array.nbytes)
            # The device copy stays valid: remember it so a later
            # kernel consuming this host array (the next fused stage, a
            # probe against a downloaded build side) elides the
            # re-upload. Mark the handle shared so device writes copy.
            array._owned = False
            self._remember(array)
            return array.data
        return array

    # -- kernel dispatch ----------------------------------------------
    def _operand(self, obj):
        """Unwrap one kernel argument: device handles are elided
        re-uploads, host ndarrays are charged uploads, scalars pass."""
        if isinstance(obj, DeviceArray):
            self._naive_h2d(obj.nbytes)
            return obj.data, obj.size
        if isinstance(obj, np.ndarray) and obj.ndim:
            return self.to_device(obj).data, obj.size
        if isinstance(obj, (list, tuple)):
            unwrapped = [self._operand(item)[0] for item in obj]
            size = max((getattr(u, "size", 0) for u in unwrapped), default=0)
            return type(obj)(unwrapped), size
        return obj, 0

    def _wrap_result(self, result):
        if isinstance(result, np.ndarray):
            if result.ndim:
                # A naive implementation downloads every kernel output;
                # residency keeps it on device until to_host.
                self._naive_d2h(result.nbytes)
                return DeviceArray(result, self)
            self._charge_sync(result.itemsize)
            return result[()]
        if isinstance(result, tuple):
            return tuple(self._wrap_result(item) for item in result)
        if isinstance(result, list):
            return [self._wrap_result(item) for item in result]
        if isinstance(result, np.generic):
            self._charge_sync(result.itemsize)
        return result

    def _device_function(self, fn):
        def device_call(*args, **kwargs):
            elements = 0
            prepared = []
            for arg in args:
                operand, size = self._operand(arg)
                prepared.append(operand)
                elements = max(elements, size)
            if kwargs:
                for key, value in list(kwargs.items()):
                    operand, size = self._operand(value)
                    kwargs[key] = operand
                    elements = max(elements, size)
            result = fn(*prepared, **kwargs)
            self._charge_launch(elements)
            return self._wrap_result(result)

        return device_call

    def _fallback_function(self, name, fn):
        def host_call(*args, **kwargs):
            args = tuple(self._download(arg) for arg in args)
            kwargs = {key: self._download(value) for key, value in kwargs.items()}
            self.count_fallback(f"xp.{name}")
            return fn(*args, **kwargs)

        return host_call

    def _download(self, obj):
        if isinstance(obj, DeviceArray):
            return self.to_host(obj)
        if isinstance(obj, (list, tuple)):
            return type(obj)(self._download(item) for item in obj)
        return obj


# --------------------------------------------------------------------------
# Registry and active-backend selection
# --------------------------------------------------------------------------

_BACKENDS: dict[str, KernelBackend] = {
    "numpy": NumpyBackend(),
    "simgpu": SimGpuBackend(),
}


def register_backend(backend: KernelBackend) -> None:
    """Register an alternative backend (e.g. a real cupy port) under
    its ``name``; selectable via ``REPRO_BACKEND`` or ``get_backend``."""
    _BACKENDS[backend.name] = backend


def available_backends() -> list[str]:
    return sorted(_BACKENDS)


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend by name, the ``REPRO_BACKEND`` environment
    variable, or the numpy default."""
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "numpy")
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"Unknown kernel backend {name!r}; available: {available_backends()}"
        ) from None


_active: KernelBackend | None = None


def current_backend() -> KernelBackend:
    """The process-global active backend the kernels route through.

    Resolved once from ``REPRO_BACKEND`` on first use; switch at
    runtime with :func:`forced_backend` (fuzz runner, benchmarks)."""
    global _active
    if _active is None:
        _active = get_backend()
    return _active


@contextmanager
def forced_backend(name: str):
    """Temporarily make ``name`` the active backend (stats reset on
    entry so counter assertions see only this scope's work)."""
    global _active
    previous = _active
    backend = get_backend(name)
    backend.reset_stats()
    _active = backend
    try:
        yield backend
    finally:
        _active = previous
