"""Pluggable kernel backend for compiled pipelines.

The fused pipeline compiler (``repro.exec.pipeline``) and the page
processor emit their array work through a :class:`KernelBackend` rather
than importing numpy directly. The backend exposes an array namespace
(``xp``) with the numpy API surface, so a cupy-shaped accelerator
backend can be registered without touching operator code — cupy
implements the same functions (``flatnonzero``, ``asarray``, ``clip``,
``where``, ``repeat``, ...) over device arrays, and ``to_host`` is the
single seam where device results would be gathered back into Blocks.

Today only the numpy backend ships; the registry plus the ``xp``
indirection is the contract an accelerator port builds against (see
docs/EXECUTION.md, "Pipeline fusion").
"""

from __future__ import annotations

import os

import numpy as np


class KernelBackend:
    """Array-execution backend: a numpy-compatible namespace plus
    host-transfer hooks."""

    #: registry / EXPLAIN name
    name = "abstract"
    #: numpy-compatible array module (numpy, cupy, ...)
    xp = None

    def asarray(self, values, dtype=None):
        return self.xp.asarray(values, dtype=dtype)

    def to_device(self, array):
        """Move a host ndarray onto the backend's device (identity on
        host backends)."""
        return array

    def to_host(self, array):
        """Bring a backend array back to a host numpy ndarray. Blocks
        store host arrays, so every fused pass ends here."""
        return array


class NumpyBackend(KernelBackend):
    """Default host backend: plain numpy, zero-copy both directions."""

    name = "numpy"
    xp = np


_BACKENDS: dict[str, KernelBackend] = {"numpy": NumpyBackend()}


def register_backend(backend: KernelBackend) -> None:
    """Register an alternative backend (e.g. a cupy port) under its
    ``name``; selectable via ``REPRO_BACKEND`` or ``get_backend(name)``."""
    _BACKENDS[backend.name] = backend


def available_backends() -> list[str]:
    return sorted(_BACKENDS)


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend by name, the ``REPRO_BACKEND`` environment
    variable, or the numpy default."""
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "numpy")
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"Unknown kernel backend {name!r}; available: {available_backends()}"
        ) from None
