"""Columnar blocks — the unit of data the engine operates on (paper Sec. V-C/E).

A page is a list of blocks; each block is one column with a flat
in-memory representation. Block kinds:

- :class:`PrimitiveBlock` — numpy-backed fixed-width values + null mask
  (bigint/integer/double/boolean/date/timestamp).
- :class:`ObjectBlock` — python-object column (varchar, arrays, maps, rows).
- :class:`RunLengthBlock` — a single value repeated N times (paper Fig. 5
  "RLEBlock").
- :class:`DictionaryBlock` — indices into a (possibly shared) dictionary
  block (paper Fig. 5 "DictionaryBlock"). Several blocks may share one
  dictionary, reproducing the memory-efficiency property of Sec. V-C.
- :class:`LazyBlock` — defers read/decompress/decode work until the cell
  is actually accessed (paper Sec. V-D).

All blocks expose the same position-oriented API, so operators are
agnostic to the encoding unless they specifically exploit it (the page
processor does — Sec. V-E).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    Type,
)

_NUMPY_DTYPES = {
    BIGINT: np.int64,
    INTEGER: np.int64,
    DATE: np.int64,
    TIMESTAMP: np.int64,
    DOUBLE: np.float64,
    BOOLEAN: np.bool_,
}


def is_primitive_type(type_: Type) -> bool:
    """True when values of ``type_`` are stored in numpy-backed blocks."""
    return type_ in _NUMPY_DTYPES


class Block:
    """Abstract base for all block encodings."""

    __slots__ = ()

    # -- core API ---------------------------------------------------------

    def __len__(self) -> int:
        raise NotImplementedError

    def get(self, position: int):
        """Return the python value at ``position`` (None when null)."""
        raise NotImplementedError

    def is_null(self, position: int) -> bool:
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Approximate retained memory, used for memory accounting."""
        raise NotImplementedError

    # -- bulk access --------------------------------------------------------

    def to_values(self) -> list:
        """Materialize the whole column as python values (None for nulls)."""
        return [self.get(i) for i in range(len(self))]

    def to_numpy(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (values, null_mask) as numpy arrays.

        ``null_mask`` is True at null positions; values there are
        unspecified but valid for the dtype. Object columns return an
        object-dtype array.
        """
        values = self.to_values()
        mask = np.array([v is None for v in values], dtype=np.bool_)
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out, mask

    def copy_positions(self, positions: Sequence[int] | np.ndarray) -> "Block":
        """Return a new block containing the given positions, in order."""
        return ObjectBlock([self.get(int(p)) for p in positions])

    def region(self, start: int, length: int) -> "Block":
        """A contiguous sub-block (zero-copy where possible)."""
        return self.copy_positions(range(start, start + length))

    # -- encoding hooks -------------------------------------------------------

    @property
    def encoding(self) -> str:
        return type(self).__name__

    def unwrap(self) -> "Block":
        """Decode any lazy/dictionary/RLE wrapping into a flat block."""
        return self


class PrimitiveBlock(Block):
    """Fixed-width column over a numpy array plus a null mask."""

    __slots__ = ("type", "values", "nulls")

    def __init__(self, type_: Type, values: np.ndarray, nulls: np.ndarray | None = None):
        assert type_ in _NUMPY_DTYPES, f"not a primitive type: {type_}"
        self.type = type_
        self.values = np.asarray(values, dtype=_NUMPY_DTYPES[type_])
        if nulls is None:
            nulls = np.zeros(len(self.values), dtype=np.bool_)
        self.nulls = np.asarray(nulls, dtype=np.bool_)
        assert len(self.values) == len(self.nulls)

    def __len__(self) -> int:
        return len(self.values)

    def get(self, position: int):
        if self.nulls[position]:
            return None
        value = self.values[position]
        if self.type is BOOLEAN:
            return bool(value)
        if self.type is DOUBLE:
            return float(value)
        return int(value)

    def is_null(self, position: int) -> bool:
        return bool(self.nulls[position])

    def size_bytes(self) -> int:
        return int(self.values.nbytes + self.nulls.nbytes)

    def to_values(self) -> list:
        out = self.values.tolist()
        if self.nulls.any():
            for i in np.flatnonzero(self.nulls):
                out[i] = None
        return out

    def to_numpy(self) -> tuple[np.ndarray, np.ndarray]:
        return self.values, self.nulls

    def copy_positions(self, positions) -> "PrimitiveBlock":
        idx = np.asarray(positions, dtype=np.int64)
        return PrimitiveBlock(self.type, self.values[idx], self.nulls[idx])

    def region(self, start: int, length: int) -> "PrimitiveBlock":
        return PrimitiveBlock(
            self.type,
            self.values[start : start + length],
            self.nulls[start : start + length],
        )


class ObjectBlock(Block):
    """Variable-width column stored as a python list (None = null)."""

    __slots__ = ("items",)

    def __init__(self, items: list):
        self.items = items

    def __len__(self) -> int:
        return len(self.items)

    def get(self, position: int):
        return self.items[position]

    def is_null(self, position: int) -> bool:
        return self.items[position] is None

    def size_bytes(self) -> int:
        # Cheap estimate: strings cost their length, everything else a word.
        total = 8 * len(self.items)
        for item in self.items:
            if isinstance(item, str):
                total += len(item)
            elif isinstance(item, (list, tuple, dict)):
                total += 16 * len(item)
        return total

    def to_values(self) -> list:
        return list(self.items)

    def to_numpy(self) -> tuple[np.ndarray, np.ndarray]:
        out = np.empty(len(self.items), dtype=object)
        out[:] = self.items
        mask = np.fromiter(
            (item is None for item in self.items), dtype=np.bool_, count=len(self.items)
        )
        return out, mask

    def copy_positions(self, positions) -> "ObjectBlock":
        return ObjectBlock([self.items[int(p)] for p in positions])

    def region(self, start: int, length: int) -> "ObjectBlock":
        return ObjectBlock(self.items[start : start + length])


class RunLengthBlock(Block):
    """One value repeated ``count`` times (paper Fig. 5 RLEBlock)."""

    __slots__ = ("value", "count")

    def __init__(self, value, count: int):
        self.value = value
        self.count = count

    def __len__(self) -> int:
        return self.count

    def get(self, position: int):
        if not 0 <= position < self.count:
            raise IndexError(position)
        return self.value

    def is_null(self, position: int) -> bool:
        return self.value is None

    def size_bytes(self) -> int:
        return 16 + (len(self.value) if isinstance(self.value, str) else 8)

    def to_values(self) -> list:
        return [self.value] * self.count

    def copy_positions(self, positions) -> "RunLengthBlock":
        return RunLengthBlock(self.value, len(positions))

    def region(self, start: int, length: int) -> "RunLengthBlock":
        return RunLengthBlock(self.value, length)

    def unwrap(self) -> Block:
        return ObjectBlock([self.value] * self.count)


class DictionaryBlock(Block):
    """Indices into a dictionary block (paper Fig. 5 DictionaryBlock).

    The dictionary may be shared between many blocks/pages; ``indices``
    select the row values. ``-1`` in indices denotes null.
    """

    __slots__ = ("dictionary", "indices")

    def __init__(self, dictionary: Block, indices: np.ndarray):
        self.dictionary = dictionary
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def get(self, position: int):
        idx = self.indices[position]
        if idx < 0:
            return None
        return self.dictionary.get(int(idx))

    def is_null(self, position: int) -> bool:
        idx = self.indices[position]
        return idx < 0 or self.dictionary.is_null(int(idx))

    def size_bytes(self) -> int:
        # The dictionary is shared; charge indices plus amortized dictionary.
        return int(self.indices.nbytes) + self.dictionary.size_bytes()

    def to_values(self) -> list:
        if isinstance(self.dictionary, PrimitiveBlock):
            return self.unwrap().to_values()
        dict_values = self.dictionary.to_values()
        return [dict_values[i] if i >= 0 else None for i in self.indices]

    def copy_positions(self, positions) -> "DictionaryBlock":
        idx = np.asarray(positions, dtype=np.int64)
        return DictionaryBlock(self.dictionary, self.indices[idx])

    def region(self, start: int, length: int) -> "DictionaryBlock":
        return DictionaryBlock(self.dictionary, self.indices[start : start + length])

    def unwrap(self) -> Block:
        if isinstance(self.dictionary, PrimitiveBlock):
            if len(self.dictionary) == 0:
                # All indices must be -1 (null) against an empty dictionary.
                dtype = self.dictionary.values.dtype
                return PrimitiveBlock(
                    self.dictionary.type,
                    np.zeros(len(self.indices), dtype=dtype),
                    np.ones(len(self.indices), dtype=np.bool_),
                )
            # One batch gather; -1 (null) indices clip to entry 0 and are
            # masked null.
            clipped = np.clip(self.indices, 0, None)
            return PrimitiveBlock(
                self.dictionary.type,
                self.dictionary.values[clipped],
                self.dictionary.nulls[clipped] | (self.indices < 0),
            )
        return ObjectBlock(self.to_values())


class LazyBlock(Block):
    """Defers loading until first access (paper Sec. V-D).

    ``loader`` produces the real block; accounting callbacks let the
    benchmark harness measure cells/bytes actually loaded.
    """

    __slots__ = ("_loader", "_loaded", "row_count", "on_load")

    def __init__(
        self,
        row_count: int,
        loader: Callable[[], Block],
        on_load: Callable[[Block], None] | None = None,
    ):
        self._loader = loader
        self._loaded: Block | None = None
        self.row_count = row_count
        self.on_load = on_load

    @property
    def is_loaded(self) -> bool:
        return self._loaded is not None

    def load(self) -> Block:
        if self._loaded is None:
            self._loaded = self._loader()
            assert len(self._loaded) == self.row_count
            if self.on_load is not None:
                self.on_load(self._loaded)
        return self._loaded

    def __len__(self) -> int:
        return self.row_count

    def get(self, position: int):
        return self.load().get(position)

    def is_null(self, position: int) -> bool:
        return self.load().is_null(position)

    def size_bytes(self) -> int:
        return self._loaded.size_bytes() if self._loaded is not None else 0

    def to_values(self) -> list:
        return self.load().to_values()

    def to_numpy(self):
        return self.load().to_numpy()

    def copy_positions(self, positions) -> Block:
        return self.load().copy_positions(positions)

    def region(self, start: int, length: int) -> Block:
        return self.load().region(start, length)

    def unwrap(self) -> Block:
        return self.load().unwrap()


def make_block(type_: Type, values: Iterable) -> Block:
    """Build the natural block for ``type_`` from python values.

    >>> len(make_block(BIGINT, [1, 2, None]))
    3
    """
    items = list(values)
    if type_ in _NUMPY_DTYPES:
        nulls = np.fromiter((v is None for v in items), dtype=np.bool_, count=len(items))
        fill = False if type_ is BOOLEAN else 0
        data = np.array([fill if v is None else v for v in items], dtype=_NUMPY_DTYPES[type_])
        return PrimitiveBlock(type_, data, nulls)
    return ObjectBlock(items)


def append_null_entry(block: Block) -> Block:
    """Copy ``block`` with one extra NULL entry appended.

    The page processor evaluates expressions over a dictionary plus a
    NULL-input sentinel in one batch; the sentinel models the
    projection/filter applied to a null row (index ``-1``).
    """
    if isinstance(block, PrimitiveBlock):
        fill = False if block.type is BOOLEAN else 0
        return PrimitiveBlock(
            block.type,
            np.append(block.values, np.asarray([fill], dtype=block.values.dtype)),
            np.append(block.nulls, True),
        )
    return ObjectBlock(block.to_values() + [None])


def dictionary_encode(type_: Type, values: Iterable) -> Block:
    """Build a DictionaryBlock from raw values (used by file readers).

    Falls back to a plain block when every value is distinct.
    """
    items = list(values)
    seen: dict = {}
    indices = np.empty(len(items), dtype=np.int64)
    dictionary: list = []
    for i, value in enumerate(items):
        if value is None:
            indices[i] = -1
            continue
        idx = seen.get(value)
        if idx is None:
            idx = len(dictionary)
            seen[value] = idx
            dictionary.append(value)
        indices[i] = idx
    if len(dictionary) >= len(items):
        return make_block(type_, items)
    return DictionaryBlock(make_block(type_, dictionary), indices)
