"""Filter/project page processor with compressed-block awareness.

Implements the paper's Sec. V-E: when a projection depends on a single
column whose block is dictionary- or run-length-encoded, the processor
evaluates the expression over the *dictionary* (or the single RLE value)
and re-wraps the result with the original indices, processing the
entire dictionary in one go instead of every row. A speculation
heuristic tracks rows-processed vs dictionary sizes to decide whether
dictionary processing keeps paying off, exactly as described in the
paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exec.blocks import (
    Block,
    DictionaryBlock,
    LazyBlock,
    ObjectBlock,
    RunLengthBlock,
)
from repro.errors import PrestoError
from repro.exec import kernels
from repro.exec.backend import KernelBackend, current_backend
from repro.exec.compiler import (
    CompiledExpression,
    EvalContext,
    col_to_block,
    compile_expression,
    entries_context,
)
from repro.exec.page import Page
from repro.planner import expressions as ir
from repro.planner.symbols import Symbol


class _DictionaryHeuristic:
    """Tracks whether dictionary-mode processing is profitable.

    The paper: "The page processor keeps track of the number of real
    rows produced and the size of the dictionary, which helps measure
    the effectiveness of processing the dictionary as compared to
    processing all the indices."
    """

    def __init__(self):
        self.rows_processed = 0
        self.dictionary_entries_processed = 0

    def should_process_dictionary(self, dictionary_size: int, rows: int) -> bool:
        if rows > dictionary_size:
            return True
        # Speculate that un-referenced dictionary values will be used by
        # subsequent blocks sharing the dictionary, unless history says
        # dictionary work has been outpacing real rows.
        history = self.dictionary_entries_processed <= max(1, self.rows_processed)
        return history

    def record(self, dictionary_entries: int, rows: int) -> None:
        self.dictionary_entries_processed += dictionary_entries
        self.rows_processed += rows


class PageProcessor:
    """Evaluates an optional filter plus a list of projections.

    With ``interpreted=True`` the processor bypasses the expression
    compiler entirely and evaluates every row one at a time through
    :mod:`repro.exec.interpreter` — the deliberately naive evaluation
    mode the fuzzing harness differentially tests against the
    compiled/vectorized path (paper Sec. V-B vs a reference
    interpreter).
    """

    def __init__(
        self,
        input_symbols: Sequence[Symbol],
        filter_expr: Optional[ir.RowExpression],
        projections: Sequence[ir.RowExpression],
        interpreted: bool = False,
        backend: Optional[KernelBackend] = None,
    ):
        self.input_symbols = list(input_symbols)
        self.interpreted = interpreted
        # Array work routes through the pluggable kernel backend
        # (repro.exec.backend): numpy, or the simgpu device stub with
        # metered transfers. ``xp`` mirrors the numpy API surface.
        self.backend = backend or current_backend()
        self._xp = self.backend.xp
        if interpreted:
            self._raw_filter = filter_expr
            self._raw_projections = list(projections)
            self._output_types = [p.type for p in projections]
            self.filter = None
            self.projections = []
            self._heuristic = _DictionaryHeuristic()
            self._dictionary_cache = {}
            return
        self.filter = (
            compile_expression(filter_expr, self.input_symbols)
            if filter_expr is not None
            else None
        )
        self.projections = [
            compile_expression(p, self.input_symbols) for p in projections
        ]
        # Channel each projection exclusively depends on (or None).
        self._single_channels: list[Optional[int]] = []
        layout = {s.name: i for i, s in enumerate(self.input_symbols)}
        # Channel the filter exclusively depends on: single-channel
        # filters over dictionary/RLE blocks evaluate per distinct entry
        # and gather the verdict through the indices.
        self._filter_channel: Optional[int] = None
        if filter_expr is not None:
            filter_variables = ir.referenced_variables(filter_expr)
            if len(filter_variables) == 1:
                self._filter_channel = layout[next(iter(filter_variables))]
        self._filter_cache: Optional[tuple[Block, Optional[np.ndarray]]] = None
        # Identity projections (a bare variable reference) pass the
        # source block through unchanged — encoded or lazy blocks are
        # not materialized just to be renamed.
        self._identity: list[bool] = []
        for expr in projections:
            variables = ir.referenced_variables(expr)
            if len(variables) == 1:
                self._single_channels.append(layout[next(iter(variables))])
            elif isinstance(expr, ir.Constant):
                self._single_channels.append(-1)  # constant: RLE output
            else:
                self._single_channels.append(None)
            self._identity.append(isinstance(expr, ir.Variable))
        self._heuristic = _DictionaryHeuristic()
        # Dictionary result cache: projection index -> (dictionary,
        # processed block) — "when successive blocks share the same
        # dictionary, the page processor retains the array". The source
        # dictionary is kept alive and compared by identity; a bare
        # id() key could collide with a recycled address after the
        # previous dictionary is freed.
        self._dictionary_cache: dict[int, tuple[Block, Block]] = {}

    def process(self, page: Page) -> Optional[Page]:
        if self.interpreted:
            return self._process_interpreted(page)
        xp = self._xp
        ctx = EvalContext(page)
        selected: np.ndarray | None = None
        if self.filter is not None:
            mask = self._filter_mask(page)
            if mask is None:
                values, nulls = self.filter.evaluate_context(ctx)
                mask = xp.asarray(values, dtype=np.bool_) & ~nulls
            # One compact bool download covers emptiness, all-pass, and
            # the selected positions; mask.any()/mask.all() would each
            # cost a device sync and flatnonzero a wider int64 download.
            mask_host = self.backend.to_host(mask)
            # Selected positions splice host Blocks (copy_positions /
            # context subsetting), so this is the mask's host boundary.
            selected = np.flatnonzero(mask_host)  # host-only: mask downloaded above
            if not len(selected):
                return None
            if len(selected) == page.row_count:
                selected = None
        row_count = page.row_count if selected is None else len(selected)
        blocks: list[Block] = []
        for index, compiled in enumerate(self.projections):
            blocks.append(self._project(index, compiled, page, ctx, selected, row_count))
        return Page(blocks, row_count)

    def _process_interpreted(self, page: Page) -> Optional[Page]:
        from repro.exec import interpreter
        from repro.exec.page import page_from_rows

        names = [s.name for s in self.input_symbols]
        out_rows: list[tuple] = []
        for row in page.rows():  # row-path: interpreted reference mode
            bindings = dict(zip(names, row))
            if self._raw_filter is not None:
                if interpreter.evaluate(self._raw_filter, bindings) is not True:
                    continue
            out_rows.append(
                tuple(
                    interpreter.evaluate(p, bindings)
                    for p in self._raw_projections
                )
            )
        if not out_rows:
            return None
        if not self._raw_projections:
            return Page([], len(out_rows))
        return page_from_rows(self._output_types, out_rows)

    # -- filter fast path ----------------------------------------------------

    def _filter_mask(self, page: Page) -> Optional[np.ndarray]:
        """Compressed-block filtering (Sec. V-E, extended to filters):
        a single-channel filter over a dictionary block is evaluated
        once per distinct entry (plus the NULL sentinel) and the verdict
        gathered through the indices; over an RLE block it is evaluated
        once. Returns None to use the general row-space evaluation —
        object dictionaries, heuristic off, ``REPRO_KERNELS=row``, or an
        entry raising (only real rows may decide an error is real)."""
        channel = self._filter_channel
        if channel is None or page.row_count == 0 or not kernels.enabled():
            return None
        block = page.block(channel)
        if isinstance(block, LazyBlock):
            # The filter references this channel, so the general path
            # would load it anyway; loading it here exposes the chunk's
            # encoding (LazyBlock accounting is identical either way).
            block = block.load()
        xp = self._xp
        if isinstance(block, RunLengthBlock):
            try:
                verdict = self.filter.evaluate_row(
                    _single_row(page.column_count, channel, block.value)
                )
            except PrestoError:
                return None
            return xp.full(page.row_count, verdict is True, dtype=np.bool_)
        if isinstance(block, DictionaryBlock):
            dictionary = block.dictionary
            if not self._heuristic.should_process_dictionary(
                len(dictionary), page.row_count
            ):
                return None
            keep = self._filter_entries(dictionary, page.column_count, channel)
            if keep is None:
                return None
            self._heuristic.record(len(dictionary), page.row_count)
            indices = block.indices
            if len(dictionary) == 0:
                return xp.full(page.row_count, bool(keep[-1]), dtype=np.bool_)
            clipped = xp.clip(indices, 0, None)
            return xp.where(indices < 0, keep[-1], keep[clipped])
        return None

    def _filter_entries(
        self, dictionary: Block, width: int, channel: int
    ) -> Optional[np.ndarray]:
        """Per-entry keep verdicts (last entry = NULL sentinel), cached
        by dictionary identity like the projection cache. A raising
        entry caches None: the page may reference only safe entries, but
        the row-space evaluation must be the one to find out."""
        cached = self._filter_cache
        if cached is not None and cached[0] is dictionary:
            return cached[1]
        try:
            values, nulls = self.filter.evaluate_context(
                entries_context(width, channel, dictionary)
            )
            keep = self._xp.asarray(values, dtype=np.bool_) & ~nulls
        except PrestoError:
            keep = None
        self._filter_cache = (dictionary, keep)
        return keep

    # -- projection paths ---------------------------------------------------

    def _project(
        self,
        index: int,
        compiled: CompiledExpression,
        page: Page,
        ctx: EvalContext,
        selected: np.ndarray | None,
        row_count: int,
    ) -> Block:
        channel = self._single_channels[index]
        if channel == -1:
            # Constant projection: produce a run-length block (the engine
            # "also produces intermediate compressed results", Sec. V-E).
            value = compiled.evaluate_row(())
            return RunLengthBlock(value, row_count)
        if channel is not None:
            block = page.block(channel)
            if self._identity[index] and kernels.enabled():
                # Pass the source block through as-is: dictionary/RLE
                # blocks stay encoded, and an unfiltered lazy column is
                # forwarded without being loaded at all (Sec. V-D).
                if selected is None:
                    return block
                return block.copy_positions(selected)
            if isinstance(block, LazyBlock):
                # The projection provably touches only this channel, so
                # loading it here costs nothing extra and exposes the
                # chunk's encoding to the fast paths below.
                block = block.load()
            if isinstance(block, RunLengthBlock):
                value = compiled.evaluate_row(_single_row(page.column_count, channel, block.value))
                return RunLengthBlock(value, row_count)
            if isinstance(block, DictionaryBlock):
                dictionary = block.dictionary
                if self._heuristic.should_process_dictionary(
                    len(dictionary), row_count
                ):
                    processed = self._process_dictionary(index, compiled, channel, dictionary)
                    indices = block.indices if selected is None else block.indices[selected]
                    self._heuristic.record(len(dictionary), row_count)
                    # Null rows carry index -1, which bypasses the
                    # dictionary: if the projection maps NULL to a
                    # value (coalesce, IS NULL, CASE ...), retarget
                    # them at the sentinel entry _process_dictionary
                    # appended for a NULL input.
                    nulls = indices < 0
                    if nulls.any() and not processed.is_null(len(dictionary)):
                        indices = indices.copy()
                        indices[nulls] = len(dictionary)
                    return DictionaryBlock(processed, indices)
        # General path: vectorized evaluation over (selected) rows.
        sub = ctx if selected is None else ctx.subset(selected)
        col = compiled.evaluate_context(sub)
        return col_to_block(col, compiled.type)

    def _process_dictionary(
        self, index: int, compiled: CompiledExpression, channel: int, dictionary: Block
    ) -> Block:
        cached = self._dictionary_cache.get(index)
        if cached is not None and cached[0] is dictionary:
            return cached[1]
        width = len(self.input_symbols)
        out_values = []
        for position in range(len(dictionary)):
            row = _single_row(width, channel, dictionary.get(position))
            out_values.append(compiled.evaluate_row(row))
        # Sentinel entry: the projection applied to a NULL input, used
        # by _project to retarget -1 (null) indices when the result is
        # itself non-null.
        out_values.append(compiled.evaluate_row(_single_row(width, channel, None)))
        processed: Block = ObjectBlock(out_values)
        from repro.exec.blocks import is_primitive_type, make_block

        if is_primitive_type(compiled.type):
            processed = make_block(compiled.type, out_values)
        # Retain only the most recent dictionary per projection.
        self._dictionary_cache = {index: (dictionary, processed)}
        return processed


def _single_row(width: int, channel: int, value) -> tuple:
    row = [None] * width
    row[channel] = value
    return tuple(row)
