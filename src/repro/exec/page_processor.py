"""Filter/project page processor with compressed-block awareness.

Implements the paper's Sec. V-E: when a projection depends on a single
column whose block is dictionary- or run-length-encoded, the processor
evaluates the expression over the *dictionary* (or the single RLE value)
and re-wraps the result with the original indices, processing the
entire dictionary in one go instead of every row. A speculation
heuristic tracks rows-processed vs dictionary sizes to decide whether
dictionary processing keeps paying off, exactly as described in the
paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exec.blocks import (
    Block,
    DictionaryBlock,
    LazyBlock,
    ObjectBlock,
    RunLengthBlock,
)
from repro.exec.compiler import (
    CompiledExpression,
    EvalContext,
    col_to_block,
    compile_expression,
)
from repro.exec.page import Page
from repro.planner import expressions as ir
from repro.planner.symbols import Symbol


class _DictionaryHeuristic:
    """Tracks whether dictionary-mode processing is profitable.

    The paper: "The page processor keeps track of the number of real
    rows produced and the size of the dictionary, which helps measure
    the effectiveness of processing the dictionary as compared to
    processing all the indices."
    """

    def __init__(self):
        self.rows_processed = 0
        self.dictionary_entries_processed = 0

    def should_process_dictionary(self, dictionary_size: int, rows: int) -> bool:
        if rows > dictionary_size:
            return True
        # Speculate that un-referenced dictionary values will be used by
        # subsequent blocks sharing the dictionary, unless history says
        # dictionary work has been outpacing real rows.
        history = self.dictionary_entries_processed <= max(1, self.rows_processed)
        return history

    def record(self, dictionary_entries: int, rows: int) -> None:
        self.dictionary_entries_processed += dictionary_entries
        self.rows_processed += rows


class PageProcessor:
    """Evaluates an optional filter plus a list of projections.

    With ``interpreted=True`` the processor bypasses the expression
    compiler entirely and evaluates every row one at a time through
    :mod:`repro.exec.interpreter` — the deliberately naive evaluation
    mode the fuzzing harness differentially tests against the
    compiled/vectorized path (paper Sec. V-B vs a reference
    interpreter).
    """

    def __init__(
        self,
        input_symbols: Sequence[Symbol],
        filter_expr: Optional[ir.RowExpression],
        projections: Sequence[ir.RowExpression],
        interpreted: bool = False,
    ):
        self.input_symbols = list(input_symbols)
        self.interpreted = interpreted
        if interpreted:
            self._raw_filter = filter_expr
            self._raw_projections = list(projections)
            self._output_types = [p.type for p in projections]
            self.filter = None
            self.projections = []
            self._heuristic = _DictionaryHeuristic()
            self._dictionary_cache = {}
            return
        self.filter = (
            compile_expression(filter_expr, self.input_symbols)
            if filter_expr is not None
            else None
        )
        self.projections = [
            compile_expression(p, self.input_symbols) for p in projections
        ]
        # Channel each projection exclusively depends on (or None).
        self._single_channels: list[Optional[int]] = []
        layout = {s.name: i for i, s in enumerate(self.input_symbols)}
        for expr in projections:
            variables = ir.referenced_variables(expr)
            if len(variables) == 1:
                self._single_channels.append(layout[next(iter(variables))])
            elif isinstance(expr, ir.Constant):
                self._single_channels.append(-1)  # constant: RLE output
            else:
                self._single_channels.append(None)
        self._heuristic = _DictionaryHeuristic()
        # Dictionary result cache: projection index -> (dictionary,
        # processed block) — "when successive blocks share the same
        # dictionary, the page processor retains the array". The source
        # dictionary is kept alive and compared by identity; a bare
        # id() key could collide with a recycled address after the
        # previous dictionary is freed.
        self._dictionary_cache: dict[int, tuple[Block, Block]] = {}

    def process(self, page: Page) -> Optional[Page]:
        if self.interpreted:
            return self._process_interpreted(page)
        ctx = EvalContext(page)
        selected: np.ndarray | None = None
        if self.filter is not None:
            values, nulls = self.filter.evaluate_context(ctx)
            mask = np.asarray(values, dtype=np.bool_) & ~nulls
            if not mask.any():
                return None
            if mask.all():
                selected = None
            else:
                selected = np.flatnonzero(mask)
        row_count = page.row_count if selected is None else len(selected)
        blocks: list[Block] = []
        for index, compiled in enumerate(self.projections):
            blocks.append(self._project(index, compiled, page, ctx, selected, row_count))
        return Page(blocks, row_count)

    def _process_interpreted(self, page: Page) -> Optional[Page]:
        from repro.exec import interpreter
        from repro.exec.page import page_from_rows

        names = [s.name for s in self.input_symbols]
        out_rows: list[tuple] = []
        for row in page.rows():
            bindings = dict(zip(names, row))
            if self._raw_filter is not None:
                if interpreter.evaluate(self._raw_filter, bindings) is not True:
                    continue
            out_rows.append(
                tuple(
                    interpreter.evaluate(p, bindings)
                    for p in self._raw_projections
                )
            )
        if not out_rows:
            return None
        if not self._raw_projections:
            return Page([], len(out_rows))
        return page_from_rows(self._output_types, out_rows)

    # -- projection paths ---------------------------------------------------

    def _project(
        self,
        index: int,
        compiled: CompiledExpression,
        page: Page,
        ctx: EvalContext,
        selected: np.ndarray | None,
        row_count: int,
    ) -> Block:
        channel = self._single_channels[index]
        if channel == -1:
            # Constant projection: produce a run-length block (the engine
            # "also produces intermediate compressed results", Sec. V-E).
            value = compiled.evaluate_row(())
            return RunLengthBlock(value, row_count)
        if channel is not None:
            block = page.block(channel)
            if isinstance(block, LazyBlock) and block.is_loaded:
                block = block.load()
            if isinstance(block, RunLengthBlock):
                value = compiled.evaluate_row(_single_row(page.column_count, channel, block.value))
                return RunLengthBlock(value, row_count)
            if isinstance(block, DictionaryBlock):
                dictionary = block.dictionary
                if self._heuristic.should_process_dictionary(
                    len(dictionary), row_count
                ):
                    processed = self._process_dictionary(index, compiled, channel, dictionary)
                    indices = block.indices if selected is None else block.indices[selected]
                    self._heuristic.record(len(dictionary), row_count)
                    # Null rows carry index -1, which bypasses the
                    # dictionary: if the projection maps NULL to a
                    # value (coalesce, IS NULL, CASE ...), retarget
                    # them at the sentinel entry _process_dictionary
                    # appended for a NULL input.
                    nulls = indices < 0
                    if nulls.any() and not processed.is_null(len(dictionary)):
                        indices = indices.copy()
                        indices[nulls] = len(dictionary)
                    return DictionaryBlock(processed, indices)
        # General path: vectorized evaluation over (selected) rows.
        sub = ctx if selected is None else ctx.subset(selected)
        col = compiled.evaluate_context(sub)
        return col_to_block(col, compiled.type)

    def _process_dictionary(
        self, index: int, compiled: CompiledExpression, channel: int, dictionary: Block
    ) -> Block:
        cached = self._dictionary_cache.get(index)
        if cached is not None and cached[0] is dictionary:
            return cached[1]
        width = len(self.input_symbols)
        out_values = []
        for position in range(len(dictionary)):
            row = _single_row(width, channel, dictionary.get(position))
            out_values.append(compiled.evaluate_row(row))
        # Sentinel entry: the projection applied to a NULL input, used
        # by _project to retarget -1 (null) indices when the result is
        # itself non-null.
        out_values.append(compiled.evaluate_row(_single_row(width, channel, None)))
        processed: Block = ObjectBlock(out_values)
        from repro.exec.blocks import is_primitive_type, make_block

        if is_primitive_type(compiled.type):
            processed = make_block(compiled.type, out_values)
        # Retain only the most recent dictionary per projection.
        self._dictionary_cache = {index: (dictionary, processed)}
        return processed


def _single_row(width: int, channel: int, value) -> tuple:
    row = [None] * width
    row[channel] = value
    return tuple(row)
